//! `ocelotl render <trace>` — draw the aggregated overview (SVG/ASCII) or
//! the microscopic Gantt chart. The overview renders from the shared
//! `AnalysisSession`'s artifacts (a warm cached partition draws without
//! re-running the optimizer); only `--gantt` reads raw events.

use crate::args::Args;
use crate::helpers::{is_micro_cache, load_trace, open_session, SESSION_OPTS};
use crate::CliError;
use ocelotl::viz::{clutter_metrics, overview_with_partition, render_gantt_svg, OverviewOptions};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl render <trace|model.omm> [options]

Render the aggregated spatiotemporal overview as SVG (default) or ASCII,
or the microscopic Gantt chart (--gantt) to see why it does not scale.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --p F            trade-off parameter in [0, 1] (default 0.5)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --coarse         prefer the coarsest partition among pIC ties
    --out FILE       write SVG here (default: overview.svg next to input)
    --ascii          print an ASCII overview to stdout instead of SVG
    --width N        canvas width (pixels, or columns with --ascii)
    --height N       canvas height (pixels, or rows with --ascii)
    --gantt          render the microscopic Gantt chart + clutter metrics
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec![
        "help", "p", "coarse", "out", "ascii", "width", "height", "gantt",
    ];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);

    if args.has("gantt") {
        if is_micro_cache(path) {
            return Err(CliError::Usage(
                "--gantt needs the raw trace (a .omm cache has no events)".into(),
            ));
        }
        let trace = load_trace(path)?;
        let width: f64 = args.get_or("width", 1920.0)?;
        let height: f64 = args.get_or("height", 1080.0)?;
        let report = clutter_metrics(&trace, width as usize, height as usize);
        writeln!(out, "gantt clutter at {width}x{height}:")?;
        writeln!(out, "  drawable objects:   {}", report.n_objects)?;
        writeln!(
            out,
            "  sub-pixel fraction: {:.2} %",
            100.0 * report.sub_pixel_fraction
        )?;
        writeln!(out, "  mean overdraw:      {:.2}", report.mean_overdraw)?;
        writeln!(
            out,
            "  entity budget:      {}",
            if report.satisfies_entity_budget() {
                "satisfied"
            } else {
                "violated (this is the paper's Fig. 2 point)"
            }
        )?;
        let svg_path = output_path(&args, path, "gantt.svg")?;
        match render_gantt_svg(&trace, width, height, 2_000_000) {
            Ok(svg) => {
                std::fs::write(&svg_path, svg)?;
                writeln!(out, "wrote {}", svg_path.display())?;
            }
            Err(e) => writeln!(out, "gantt SVG skipped: {e}")?,
        }
        return Ok(());
    }

    let p: f64 = args.get_or("p", 0.5)?;
    let mut session = open_session(&args, path)?;
    let partition = session.partition_at(p, args.has("coarse"))?;
    let grid = session.grid()?;
    let time_range = Some((grid.start(), grid.end()));
    let cube = session.cube()?;

    if args.has("ascii") {
        let width: usize = args.get_or("width", 96)?;
        let height: usize = args.get_or("height", 24)?;
        let ov = overview_with_partition(
            cube,
            partition,
            OverviewOptions {
                p,
                time_range,
                ..OverviewOptions::default()
            },
        );
        out.write_all(ov.to_ascii(cube, width, height).as_bytes())?;
        return Ok(());
    }

    let width: f64 = args.get_or("width", 960.0)?;
    let height: f64 = args.get_or("height", 480.0)?;
    let ov = overview_with_partition(
        cube,
        partition,
        OverviewOptions {
            p,
            width,
            height,
            time_range,
            ..OverviewOptions::default()
        },
    );
    let svg = ov.to_svg(cube);
    let svg_path = output_path(&args, path, "overview.svg")?;
    std::fs::write(&svg_path, svg)?;
    writeln!(out, "wrote {}", svg_path.display())?;
    Ok(())
}

/// `--out` or `<input stem>.<suffix>` next to the input.
fn output_path(args: &Args, input: &Path, suffix: &str) -> Result<std::path::PathBuf, CliError> {
    Ok(match args.get("out")? {
        Some(o) => std::path::PathBuf::from(o),
        None => input.with_extension(suffix),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn ascii_renders_to_stdout() {
        let p = fixture_trace("render-ascii");
        let text = run_ok(format!(
            "{} --slices 10 --ascii --width 40 --height 4",
            p.display()
        ));
        assert!(text.contains("legend:"));
        assert!(text.contains('|'));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn svg_written_to_out() {
        let p = fixture_trace("render-svg");
        let svg = p.with_extension("svg");
        let text = run_ok(format!(
            "{} --slices 10 --p 0.4 --out {}",
            p.display(),
            svg.display()
        ));
        assert!(text.contains("wrote"));
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.starts_with("<svg") || content.contains("<svg"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn gantt_reports_clutter() {
        let p = fixture_trace("render-gantt");
        let text = run_ok(format!("{} --gantt --width 200 --height 100", p.display()));
        assert!(text.contains("drawable objects"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(p.with_extension("gantt.svg")).ok();
    }

    #[test]
    fn default_svg_path_derives_from_input() {
        let p = fixture_trace("render-default");
        let text = run_ok(format!("{} --slices 10", p.display()));
        let expected = p.with_extension("overview.svg");
        assert!(text.contains(&expected.display().to_string()));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&expected).ok();
    }

    #[test]
    fn warm_svg_is_byte_identical_to_cold() {
        let p = fixture_trace("render-warm");
        let svg = p.with_extension("svg");
        let cache =
            std::env::temp_dir().join(format!("ocelotl-render-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!(
            "{} --slices 10 --p 0.4 --out {} --cache {}",
            p.display(),
            svg.display(),
            cache.display()
        );
        run_ok(line.clone());
        let cold = std::fs::read_to_string(&svg).unwrap();
        run_ok(line);
        let warm = std::fs::read_to_string(&svg).unwrap();
        assert_eq!(cold, warm, "cached partition must render identically");
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&svg).ok();
    }
}
