//! `ocelotl pvalues <trace>` — the significant trade-off levels (the stops
//! of Ocelotl's aggregation-strength slider).

use crate::args::Args;
use crate::helpers::{build_cube, describe_cube, obtain_model, Metric};
use crate::CliError;
use ocelotl::core::{quality, significant_partitions, DpConfig, MemoryMode};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl pvalues <trace|model.omm> [options]

Enumerate the significant values of the gain/loss trade-off p: the points
where the optimal partition changes. Between two consecutive values the
overview is constant, so these are exactly the slider stops an analyst can
step through.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --resolution F   dichotomy resolution on p (default 1e-3)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "slices", "metric", "memory", "resolution"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    let n_slices: usize = args.get_or("slices", 30)?;
    let metric: Metric = args.get_or("metric", Metric::States)?;
    let resolution: f64 = args.get_or("resolution", 1e-3)?;
    if !(resolution > 0.0 && resolution < 1.0) {
        return Err(CliError::Usage(format!(
            "--resolution must lie in (0, 1), got {resolution}"
        )));
    }

    let memory: MemoryMode = args.get_or("memory", MemoryMode::Auto)?;
    let model = obtain_model(path, n_slices, metric)?;
    let input = build_cube(&model, memory);
    let entries = significant_partitions(&input, &DpConfig::default(), resolution);

    writeln!(out, "memory: {}", describe_cube(&input))?;
    writeln!(
        out,
        "{} significant levels (resolution {resolution}):",
        entries.len()
    )?;
    writeln!(
        out,
        "{:>12} {:>12} {:>10} {:>12} {:>12}",
        "p_low", "p_high", "areas", "loss_ratio", "reduction"
    )?;
    for e in &entries {
        let q = quality(&input, &e.partition);
        writeln!(
            out,
            "{:>12.4} {:>12.4} {:>10} {:>12.4} {:>11.2}%",
            e.p_low,
            e.p_high,
            e.partition.len(),
            q.loss_ratio,
            100.0 * q.complexity_reduction
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn lists_levels_with_monotone_area_counts() {
        let p = fixture_trace("pvalues");
        let text = run_ok(format!("{} --slices 10", p.display()));
        assert!(text.contains("significant levels"));
        let counts: Vec<usize> = text
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().nth(2))
            .filter_map(|c| c.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        assert!(
            counts.windows(2).all(|w| w[1] <= w[0]),
            "area counts must not increase with p: {counts:?}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_resolution_rejected() {
        let p = fixture_trace("pvalues-res");
        let tokens: Vec<String> = format!("{} --resolution 0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }
}
