//! `ocelotl pvalues <trace>` — the significant trade-off levels (the stops
//! of Ocelotl's aggregation-strength slider), served from the shared
//! `AnalysisSession` (a warm `.opart` answers with zero DP runs).

use crate::args::Args;
use crate::helpers::{describe_cube, open_session, SESSION_OPTS};
use crate::CliError;
use ocelotl::core::quality;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl pvalues <trace|model.omm> [options]

Enumerate the significant values of the gain/loss trade-off p: the points
where the optimal partition changes. Between two consecutive values the
overview is constant, so these are exactly the slider stops an analyst can
step through.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --resolution F   dichotomy resolution on p (default 1e-3)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "resolution"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let resolution: f64 = args.get_or("resolution", 1e-3)?;

    let mut session = open_session(&args, path)?;
    let entries = session.significant(resolution)?;
    // Force the cube (the quality columns need it) before reading its
    // provenance — a fully warm table may not have touched it yet.
    session.cube()?;
    let source = session.cube_source();
    let cube = session.cube()?;

    writeln!(out, "memory: {}", describe_cube(cube, source))?;
    writeln!(
        out,
        "{} significant levels (resolution {resolution}):",
        entries.len()
    )?;
    writeln!(
        out,
        "{:>12} {:>12} {:>10} {:>12} {:>12}",
        "p_low", "p_high", "areas", "loss_ratio", "reduction"
    )?;
    for e in &entries {
        let q = quality(cube, &e.partition);
        writeln!(
            out,
            "{:>12.4} {:>12.4} {:>10} {:>12.4} {:>11.2}%",
            e.p_low,
            e.p_high,
            e.partition.len(),
            q.loss_ratio,
            100.0 * q.complexity_reduction
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn lists_levels_with_monotone_area_counts() {
        let p = fixture_trace("pvalues");
        let text = run_ok(format!("{} --slices 10", p.display()));
        assert!(text.contains("significant levels"));
        let counts: Vec<usize> = text
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().nth(2))
            .filter_map(|c| c.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        assert!(
            counts.windows(2).all(|w| w[1] <= w[0]),
            "area counts must not increase with p: {counts:?}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_resolution_rejected() {
        let p = fixture_trace("pvalues-res");
        let tokens: Vec<String> = format!("{} --resolution 0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_run_lists_identical_levels() {
        let p = fixture_trace("pvalues-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-pv-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!("{} --slices 10 --cache {}", p.display(), cache.display());
        let cold = run_ok(line.clone());
        let warm = run_ok(line);
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("memory:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }
}
