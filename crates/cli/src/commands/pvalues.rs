//! `ocelotl pvalues <trace>` — the significant trade-off levels (the stops
//! of Ocelotl's aggregation-strength slider). A thin client of the query
//! protocol: one `Significant` request (or `PValues` with `--bare`), one
//! printed reply; a warm `.opart` answers with zero DP runs.

use crate::args::Args;
use crate::helpers::{open_engine, SESSION_OPTS};
use crate::proto::{print_reply, request_from_args};
use crate::CliError;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl pvalues <trace|model.omm> [options]

Enumerate the significant values of the gain/loss trade-off p: the points
where the optimal partition changes. Between two consecutive values the
overview is constant, so these are exactly the slider stops an analyst can
step through.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC (default 4)
    --resolution F   dichotomy resolution on p (default 1e-3)
    --bare           print only the significant p boundary values
    --json           print the reply as protocol JSON instead of text
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "resolution", "bare"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let kind = if args.has("bare") {
        "pvalues"
    } else {
        "significant"
    };
    let request = request_from_args(kind, &args)?;

    let mut engine = open_engine(&args, path)?;
    let reply = engine.execute(&request)?;
    if args.has("json") {
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }
    print_reply(&reply, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn lists_levels_with_monotone_area_counts() {
        let p = fixture_trace("pvalues");
        let text = run_ok(format!("{} --slices 10", p.display()));
        assert!(text.contains("significant levels"));
        let counts: Vec<usize> = text
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().nth(2))
            .filter_map(|c| c.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        assert!(
            counts.windows(2).all(|w| w[1] <= w[0]),
            "area counts must not increase with p: {counts:?}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bare_lists_boundary_values() {
        let p = fixture_trace("pvalues-bare");
        let text = run_ok(format!("{} --slices 10 --bare", p.display()));
        assert!(text.contains("significant p values"), "{text}");
        let values: Vec<f64> = text
            .lines()
            .skip(1)
            .filter_map(|l| l.trim().parse().ok())
            .collect();
        assert!(!values.is_empty());
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "ascending");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_resolution_rejected() {
        let p = fixture_trace("pvalues-res");
        let tokens: Vec<String> = format!("{} --resolution 0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_run_is_byte_identical() {
        let p = fixture_trace("pvalues-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-pv-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!("{} --slices 10 --cache {}", p.display(), cache.display());
        let cold = run_ok(line.clone());
        let warm = run_ok(line);
        assert_eq!(cold, warm);
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }
}
