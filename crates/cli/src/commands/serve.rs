//! `ocelotl serve` — a long-lived analysis server speaking the query
//! protocol over line-delimited JSON.
//!
//! The server holds one warm [`QueryEngine`] per `(trace, session
//! parameters)` pair in an LRU-bounded pool: the first query against a
//! trace pays the read/slice/cube cost, every later query — from any
//! connection — is answered from memory (and from `.ocube`/`.opart`
//! artifacts when a cache directory is configured). Because replies are
//! deterministic and the printers/serializers are shared with the direct
//! CLI path, a server answer is byte-identical to a local run.
//!
//! ## Concurrency model
//!
//! Three mechanisms keep N clients from serializing on one lock:
//!
//! * **Read-mostly warm sessions.** Pooled engines live in
//!   `Arc<RwLock<_>>` slots; the pool mutex is held only for
//!   lookup/admission, never during execution. A warm request takes the
//!   slot's *read* lock and answers through the engine's `&self` path
//!   ([`QueryEngine::execute_shared`]), so any number of clients query
//!   one warm session in parallel — even point DPs at new `p` values,
//!   which append to the session's lock-guarded memo table. Only
//!   requests that must mutate the pipeline (a `--slices` change, a
//!   `Reslice`, a cold stage) take the write lock.
//! * **Bounded builds with admission control.** Cold session builds
//!   (ingest + cube + table) run outside every pool lock under a build
//!   budget of `--workers` permits. Concurrent requests for the *same*
//!   cold trace coalesce onto one in-flight build; requests for other
//!   cold traces beyond the budget are refused with a typed `busy` error
//!   instead of queueing unboundedly — warm reads are never affected.
//! * **Connection pipelining.** [`serve_lines`] reads ahead (up to
//!   [`PIPELINE_DEPTH`] requests), executes independent requests
//!   concurrently, and emits replies strictly in request order, so the
//!   wire contract (i-th reply answers i-th request) is preserved.
//!
//! Eviction is drain-based: dropping a pool entry only drops the pool's
//! `Arc` handle — connections still executing on the evicted session
//! finish normally, and the memory is freed when the last reader lets go.
//!
//! Wire format (one request, one reply, per line — see
//! `ocelotl-format::json`):
//!
//! ```text
//! → {"v":1,"trace":"/data/run.btf","config":{"slices":30,"metric":"states","memory":"auto"},"request":{"kind":"aggregate",...}}
//! ← {"v":1,"reply":{...}}            (or {"v":1,"error":{...}})
//! ```

use crate::args::Args;
use crate::helpers::{build_session_with_workers, cache_dir, session_config};
use crate::CliError;
use ocelotl::core::query::{QueryEngine, QueryError};
use ocelotl::core::SessionConfig;
use std::collections::{BTreeMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

const HELP: &str = "\
ocelotl serve (--listen ADDR | --socket PATH) [options]

Run a long-lived analysis server answering query-protocol requests over
line-delimited JSON. Sessions stay warm across requests and connections,
so every query after a trace's first is instantaneous; warm sessions are
read-shared, so concurrent clients never queue behind each other.

OPTIONS:
    --listen ADDR    TCP address to bind, e.g. 127.0.0.1:7733
    --socket PATH    Unix domain socket to bind instead of TCP
    --sessions N     warm sessions kept (LRU-evicted beyond, default 8)
    --workers N      cold session builds allowed in flight (default
                     min(cores, sessions)); beyond the budget requests
                     get a typed `busy' error instead of queueing
    --cache DIR      persist session artifacts (.ocube/.opart) under DIR
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC
                     (default 4; OCELOTL_CACHE_KEEP)

Query it with `ocelotl query ADDR TRACE KIND [options]`.
";

/// Lock a bookkeeping mutex, recovering from poisoning. The mutexes this
/// is used on (pool entry list, build set, pipeline counters, reply
/// ordering) guard plain data that a panicking peer leaves structurally
/// intact — a poisoned guard is safe to keep using, and panicking the
/// server thread over it would turn one lost request into a dead server.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_clean`].
fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Default cold-build budget: one worker per core, capped by the pool
/// size (more concurrent cold builds than pooled sessions is pure churn).
pub fn default_workers(max_sessions: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(max_sessions)
        .max(1)
}

/// Server policy (everything except the per-request session parameters,
/// which each wire request carries).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Warm sessions kept before LRU eviction.
    pub max_sessions: usize,
    /// Cold session builds allowed in flight before `busy` refusals.
    pub workers: usize,
    /// Artifact cache directory, if any.
    pub cache: Option<PathBuf>,
    /// Artifact GC retention per trace and kind.
    pub cache_keep: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_sessions: 8,
            workers: default_workers(8),
            cache: None,
            cache_keep: ocelotl::core::DEFAULT_CACHE_KEEP,
        }
    }
}

/// Pool identity of one warm engine: trace identity and session
/// parameters. `n_slices` is deliberately **not** part of the key: a
/// `--slices` change re-slices the pooled session's resident hi-res model
/// in memory instead of admitting (and cold-ingesting) a separate
/// session.
type PoolKey = (PathBuf, &'static str, &'static str);

/// One pooled warm engine behind its own lock. The pool hands out `Arc`s
/// of this — execution happens entirely outside the pool mutex, and an
/// evicted slot survives (drains) until its last in-flight user is done.
struct SessionSlot {
    engine: RwLock<QueryEngine>,
}

struct PoolEntry {
    key: PoolKey,
    /// `(mtime, len)` of the trace when the session was admitted: a
    /// cheap per-request staleness probe. An overwritten trace must not
    /// keep being served from the old in-memory model — that would break
    /// the CLI == server byte-parity guarantee.
    stamp: FileStamp,
    slot: Arc<SessionSlot>,
    last_used: u64,
}

/// Modification time and size of a file (best-effort; `None` components
/// compare equal only to themselves, so an unreadable stat degrades to
/// "rebuild on next request" never to "serve stale").
type FileStamp = (Option<std::time::SystemTime>, Option<u64>);

fn file_stamp(path: &Path) -> FileStamp {
    if path.is_dir() {
        // A directory trace: fold the newest mtime and the total size of
        // its trace files, so adding, removing or touching any member
        // invalidates the pooled session.
        let Ok(files) = ocelotl::format::trace_files(path) else {
            return (None, None);
        };
        let mut newest: Option<std::time::SystemTime> = None;
        let mut total = 0u64;
        for f in files {
            if let Ok(m) = std::fs::metadata(&f) {
                if let Ok(t) = m.modified() {
                    newest = Some(newest.map_or(t, |n| n.max(t)));
                }
                total += m.len();
            }
        }
        return (newest, Some(total));
    }
    match std::fs::metadata(path) {
        Ok(m) => (m.modified().ok(), Some(m.len())),
        Err(_) => (None, None),
    }
}

/// The LRU-bounded session pool. The mutex guards only the entry list
/// (lookup, admission, eviction bookkeeping) — queries execute on the
/// `Arc`'d slots after the lock is released.
struct Pool {
    entries: Vec<PoolEntry>,
    clock: u64,
}

/// Shared state of one running server.
pub struct ServerState {
    pool: Mutex<Pool>,
    /// Keys with a cold build in flight (the admission budget). Guarded
    /// separately from the pool so warm lookups never wait on builders.
    builds: Mutex<HashSet<PoolKey>>,
    /// Signaled whenever a build finishes (coalesced waiters re-check).
    builds_done: Condvar,
    builds_started: AtomicUsize,
    busy_rejections: AtomicUsize,
    opts: ServeOptions,
}

/// Releases a key's build permit on every exit path (success or error)
/// and wakes coalesced waiters.
struct BuildPermit<'a> {
    state: &'a ServerState,
    key: PoolKey,
}

impl Drop for BuildPermit<'_> {
    fn drop(&mut self) {
        lock_clean(&self.state.builds).remove(&self.key);
        self.state.builds_done.notify_all();
    }
}

impl ServerState {
    /// Fresh state under the given policy.
    pub fn new(opts: ServeOptions) -> Self {
        Self {
            pool: Mutex::new(Pool {
                entries: Vec::new(),
                clock: 0,
            }),
            builds: Mutex::new(HashSet::new()),
            builds_done: Condvar::new(),
            builds_started: AtomicUsize::new(0),
            busy_rejections: AtomicUsize::new(0),
            opts,
        }
    }

    /// Execute one wire-request line, producing exactly one reply line
    /// (errors included — this function never fails).
    pub fn handle_line(&self, line: &str) -> String {
        let result = self.try_handle(line);
        ocelotl::format::encode_reply(&result)
    }

    fn try_handle(&self, line: &str) -> Result<ocelotl::core::query::AnalysisReply, QueryError> {
        let (trace, mut config, request) = ocelotl::format::decode_wire_request(line)?;
        let path = PathBuf::from(&trace);
        if !path.exists() {
            return Err(QueryError::Source(format!("no such file: {trace}")));
        }
        // Canonical identity: the same trace reached through different
        // spellings shares one warm session.
        let canonical = std::fs::canonicalize(&path).unwrap_or(path);
        config.cache_keep = self.opts.cache_keep;
        let key = (canonical, config.metric.tag(), config.memory.tag());
        let stamp = file_stamp(&key.0);
        let slot = self.admit(&key, stamp, config)?;

        // Fast path: the pooled session already sits at this request's
        // (full-grid) resolution — answer under the slot's *read* lock,
        // concurrently with every other warm reader.
        {
            let Ok(engine) = slot.engine.read() else {
                return Err(self.evict_poisoned(&key));
            };
            let session = engine.session();
            if session.config().n_slices == config.n_slices && session.window().is_none() {
                if let Some(result) = engine.execute_shared(&request) {
                    return result;
                }
            }
        }

        // Write path: pin the pooled session to this request's resolution
        // (a `--slices` change re-slices from the resident hi-res model /
        // warm artifacts instead of re-ingesting, and any zoom window a
        // previous `Reslice` request left behind is reset so wire
        // requests stay self-contained), then execute exclusively.
        let Ok(mut engine) = slot.engine.write() else {
            return Err(self.evict_poisoned(&key));
        };
        engine.session_mut().reslice(config.n_slices, None)?;
        engine.execute(&request)
    }

    /// A panic inside a pooled engine poisons its `RwLock`. Evict the
    /// slot (the next request for this trace rebuilds cold) and refuse
    /// this request typed instead of spreading the panic.
    fn evict_poisoned(&self, key: &PoolKey) -> QueryError {
        let mut pool = lock_clean(&self.pool);
        if let Some(i) = pool.entries.iter().position(|e| e.key == *key) {
            pool.entries.swap_remove(i);
        }
        QueryError::Source(
            "warm session was poisoned by an earlier panic; evicted, retry to rebuild".to_string(),
        )
    }

    /// Find the warm slot for `key`, or cold-build one under the
    /// admission budget. Requests racing on the same cold key coalesce
    /// onto the one in-flight build; distinct cold keys beyond the
    /// `--workers` budget are refused with [`QueryError::Busy`].
    fn admit(
        &self,
        key: &PoolKey,
        stamp: FileStamp,
        config: SessionConfig,
    ) -> Result<Arc<SessionSlot>, QueryError> {
        loop {
            {
                let mut pool = lock_clean(&self.pool);
                pool.clock += 1;
                let now = pool.clock;
                if let Some(i) = pool.entries.iter().position(|e| e.key == *key) {
                    if let Some(e) = pool.entries.get_mut(i) {
                        if e.stamp == stamp && stamp != (None, None) {
                            e.last_used = now;
                            return Ok(e.slot.clone());
                        }
                    }
                    // A pooled session whose trace file changed on disk
                    // (stamp mismatch, or unreadable stat) is replaced;
                    // in-flight readers drain on their own Arc.
                    pool.entries.swap_remove(i);
                }
            }
            let mut builds = lock_clean(&self.builds);
            if builds.contains(key) {
                // Same key already building: wait for it and re-check the
                // pool instead of racing a duplicate ingest.
                drop(wait_clean(&self.builds_done, builds));
                continue;
            }
            if builds.len() >= self.opts.workers.max(1) {
                self.busy_rejections.fetch_add(1, Ordering::SeqCst);
                return Err(QueryError::Busy(format!(
                    "cold-build budget exhausted ({} of {} workers busy); retry shortly",
                    builds.len(),
                    self.opts.workers.max(1)
                )));
            }
            builds.insert(key.clone());
            break;
        }
        // Build outside every lock. The permit is released (and waiters
        // woken) on success *and* on error, via Drop.
        let _permit = BuildPermit {
            state: self,
            key: key.clone(),
        };
        self.builds_started.fetch_add(1, Ordering::SeqCst);
        let mut engine = QueryEngine::new(self.open(&key.0, config));
        // The expensive part — ingest, cube, table — happens here, under
        // the build permit, so the published slot is warm for readers.
        engine.warm_up()?;
        let slot = Arc::new(SessionSlot {
            engine: RwLock::new(engine),
        });
        let mut pool = lock_clean(&self.pool);
        pool.clock += 1;
        let now = pool.clock;
        while pool.entries.len() >= self.opts.max_sessions.max(1) {
            // Evict the least recently used entry beyond the cap; its
            // slot drains via the Arc if anyone is mid-query on it.
            let Some(lru) = pool
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            pool.entries.swap_remove(lru);
        }
        pool.entries.push(PoolEntry {
            key: key.clone(),
            stamp,
            slot: slot.clone(),
            last_used: now,
        });
        Ok(slot)
    }

    fn open(&self, path: &Path, config: SessionConfig) -> ocelotl::core::AnalysisSession {
        // Divide the global thread budget across the build permits: with
        // W concurrent cold builds allowed, each ingest gets its share of
        // the executor instead of `--workers` builds each spawning a full
        // complement of shard threads. The cap redistributes work only —
        // shard plans are content-derived, so output bits never change.
        let shard_workers = (rayon::max_threads() / self.opts.workers.max(1)).max(1);
        build_session_with_workers(path, config, self.opts.cache.as_deref(), shard_workers)
    }

    /// Number of warm sessions currently pooled.
    pub fn pooled_sessions(&self) -> usize {
        lock_clean(&self.pool).entries.len()
    }

    /// Cold session builds started since the server came up (coalesced
    /// requests share one build, so racing M identical cold requests
    /// bumps this once).
    pub fn builds_started(&self) -> usize {
        self.builds_started.load(Ordering::SeqCst)
    }

    /// Cold builds currently in flight.
    pub fn builds_in_flight(&self) -> usize {
        lock_clean(&self.builds).len()
    }

    /// Requests refused with `busy` because the build budget was
    /// exhausted.
    pub fn busy_rejections(&self) -> usize {
        self.busy_rejections.load(Ordering::SeqCst)
    }
}

/// Where a running server listens.
enum Endpoint {
    Tcp(std::net::SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running server (background accept thread), for tests, benches and
/// the `serve` command itself.
pub struct ServerHandle {
    endpoint: Endpoint,
    /// Shared state (pool introspection for tests).
    pub state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The client-facing address: `host:port` for TCP, `unix:PATH` for a
    /// Unix socket — exactly what `ocelotl query` accepts.
    pub fn address(&self) -> String {
        match &self.endpoint {
            Endpoint::Tcp(addr) => addr.to_string(),
            #[cfg(unix)]
            Endpoint::Unix(path) => format!("unix:{}", path.display()),
        }
    }

    /// Signal the accept loop to exit and wait for it. Connects over the
    /// handle's own transport (TCP or the Unix socket path) to unblock
    /// the blocking accept call, so `--socket` servers shut down as
    /// cleanly as TCP ones.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve in a background thread.
pub fn spawn_tcp(addr: &str, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let state = Arc::new(ServerState::new(opts));
    let stop = Arc::new(AtomicBool::new(false));
    let (state2, stop2) = (state.clone(), stop.clone());
    let join = std::thread::spawn(move || accept_loop(listener, state2, stop2));
    Ok(ServerHandle {
        endpoint: Endpoint::Tcp(local),
        state,
        stop,
        join: Some(join),
    })
}

/// Bind a Unix domain socket and serve in a background thread.
#[cfg(unix)]
pub fn spawn_unix(path: impl Into<PathBuf>, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    use std::os::unix::net::UnixListener;
    let path = path.into();
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    let state = Arc::new(ServerState::new(opts));
    let stop = Arc::new(AtomicBool::new(false));
    let (state2, stop2) = (state.clone(), stop.clone());
    let join = std::thread::spawn(move || accept_loop_unix(listener, state2, stop2));
    Ok(ServerHandle {
        endpoint: Endpoint::Unix(path),
        state,
        stop,
        join: Some(join),
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Replies are single small writes; Nagle + delayed ACK would add
        // tens of ms of artificial latency to every one of them.
        let _ = stream.set_nodelay(true);
        let state = state.clone();
        std::thread::spawn(move || {
            let Ok(mut writer) = stream.try_clone() else {
                return;
            };
            let _ = serve_lines(&state, BufReader::new(stream), &mut writer);
        });
    }
}

#[cfg(unix)]
fn accept_loop_unix(
    listener: std::os::unix::net::UnixListener,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        std::thread::spawn(move || {
            let Ok(mut writer) = stream.try_clone() else {
                return;
            };
            let _ = serve_lines(&state, BufReader::new(stream), &mut writer);
        });
    }
}

/// Per-connection read-ahead window: how many requests may execute
/// concurrently before the reader stops pulling new lines.
pub const PIPELINE_DEPTH: usize = 8;

/// Reply sequencer: workers complete out of order, the wire emits in
/// request order (the protocol's i-th reply answers the i-th request).
struct OrderedWriter<'a> {
    next: usize,
    pending: BTreeMap<usize, String>,
    out: &'a mut (dyn Write + Send),
    err: Option<std::io::Error>,
}

impl OrderedWriter<'_> {
    fn complete(&mut self, seq: usize, reply: String) {
        self.pending.insert(seq, reply);
        while let Some(line) = self.pending.remove(&self.next) {
            if self.err.is_none() {
                let r = self
                    .out
                    .write_all(line.as_bytes())
                    .and_then(|()| self.out.write_all(b"\n"))
                    .and_then(|()| self.out.flush());
                if let Err(e) = r {
                    self.err = Some(e);
                }
            }
            self.next += 1;
        }
    }
}

/// The transport-agnostic request loop (TCP, Unix sockets and tests all
/// funnel through here), pipelined: up to [`PIPELINE_DEPTH`] request
/// lines execute concurrently, replies are written strictly in request
/// order. Blank lines are skipped, as before.
///
/// Request *effects* are not ordered within the window: two pipelined
/// requests may execute in either order (each wire request is
/// self-contained — it carries its own trace and config — so this is
/// observable only through server-side session state such as which
/// request pays a cold build).
pub fn serve_lines(
    state: &ServerState,
    reader: impl BufRead,
    writer: &mut (dyn Write + Send),
) -> std::io::Result<()> {
    let ordered = Mutex::new(OrderedWriter {
        next: 0,
        pending: BTreeMap::new(),
        out: writer,
        err: None,
    });
    let in_flight = Mutex::new(0usize);
    let drained = Condvar::new();
    let mut read_err = None;
    std::thread::scope(|scope| {
        let (ordered, in_flight, drained) = (&ordered, &in_flight, &drained);
        let mut seq = 0usize;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // Backpressure: bound the read-ahead window.
            {
                let mut n = lock_clean(in_flight);
                while *n >= PIPELINE_DEPTH {
                    n = wait_clean(drained, n);
                }
                *n += 1;
            }
            if lock_clean(ordered).err.is_some() {
                break; // the connection is gone; stop reading
            }
            let my_seq = seq;
            seq += 1;
            scope.spawn(move || {
                let reply = state.handle_line(&line);
                lock_clean(ordered).complete(my_seq, reply);
                *lock_clean(in_flight) -= 1;
                drained.notify_all();
            });
        }
        // Scope exit joins every in-flight worker, flushing all replies.
    });
    if let Some(e) = ordered
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .err
    {
        return Err(e);
    }
    if let Some(e) = read_err {
        return Err(e);
    }
    Ok(())
}

fn serve_options(args: &Args) -> Result<ServeOptions, CliError> {
    let config = session_config(args)?;
    let max_sessions = args.get_or("sessions", 8usize)?.max(1);
    Ok(ServeOptions {
        max_sessions,
        workers: args
            .get_or("workers", default_workers(max_sessions))?
            .max(1),
        cache: cache_dir(args)?,
        cache_keep: config.cache_keep,
    })
}

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help",
        "listen",
        "socket",
        "sessions",
        "workers",
        "cache",
        "no-cache",
        "cache-keep",
    ])?;
    let opts = serve_options(&args)?;

    if let Some(path) = args.get("socket")? {
        return serve_unix(path, opts, out);
    }
    let addr = args
        .get("listen")?
        .ok_or_else(|| CliError::Usage("serve needs --listen ADDR or --socket PATH".into()))?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::Invalid(format!("cannot bind {addr}: {e}")))?;
    let local = listener.local_addr()?;
    writeln!(
        out,
        "listening on {local} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    accept_loop(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

/// Serve on a Unix domain socket (Unix only).
#[cfg(unix)]
fn serve_unix(path: &str, opts: ServeOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| CliError::Invalid(format!("cannot bind {path}: {e}")))?;
    writeln!(
        out,
        "listening on {path} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    accept_loop_unix(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

#[cfg(not(unix))]
fn serve_unix(_path: &str, _opts: ServeOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; use --listen ADDR".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;
    use ocelotl::core::query::AnalysisRequest;
    use ocelotl::core::{MemoryMode, SessionConfig};

    fn wire(trace: &std::path::Path, slices: usize, req: &AnalysisRequest) -> String {
        ocelotl::format::encode_wire_request(
            &trace.display().to_string(),
            &SessionConfig {
                n_slices: slices,
                ..SessionConfig::default()
            },
            req,
        )
    }

    #[test]
    fn handle_line_answers_and_pools() {
        let p = fixture_trace("serve-pool");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let first = state.handle_line(&wire(&p, 10, &req));
        let second = state.handle_line(&wire(&p, 10, &req));
        assert_eq!(first, second, "warm answer must be byte-identical");
        assert!(first.contains("\"reply\""), "{first}");
        assert_eq!(state.pooled_sessions(), 1, "same key shares one session");
        // Different slicing re-slices the SAME warm session in memory —
        // no second session, no re-ingest.
        let resliced = state.handle_line(&wire(&p, 20, &req));
        assert!(resliced.contains("\"n_slices\":20"), "{resliced}");
        assert_eq!(
            state.pooled_sessions(),
            1,
            "a --slices change must reuse the pooled session"
        );
        // …and switching back serves the parked pipeline byte-identically.
        assert_eq!(state.handle_line(&wire(&p, 10, &req)), first);
        assert_eq!(state.builds_started(), 1, "one cold build for all of it");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pool_is_lru_bounded() {
        let p = fixture_trace("serve-lru");
        let state = ServerState::new(ServeOptions {
            max_sessions: 2,
            ..ServeOptions::default()
        });
        let req = AnalysisRequest::Describe;
        // Slicing no longer keys the pool; metric × memory combinations do.
        for (metric, memory) in [
            (ocelotl::core::Metric::States, MemoryMode::Dense),
            (ocelotl::core::Metric::States, MemoryMode::Lazy),
            (ocelotl::core::Metric::Density, MemoryMode::Dense),
            (ocelotl::core::Metric::Density, MemoryMode::Lazy),
        ] {
            let config = SessionConfig {
                n_slices: 10,
                metric,
                memory,
                ..SessionConfig::default()
            };
            let line =
                ocelotl::format::encode_wire_request(&p.display().to_string(), &config, &req);
            state.handle_line(&line);
        }
        assert_eq!(state.pooled_sessions(), 2, "evicted down to the cap");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn evicted_session_drains_instead_of_dying_under_a_reader() {
        let p = fixture_trace("serve-drain");
        let state = ServerState::new(ServeOptions {
            max_sessions: 1,
            ..ServeOptions::default()
        });
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let config = SessionConfig {
            n_slices: 10,
            ..SessionConfig::default()
        };
        let line = ocelotl::format::encode_wire_request(&p.display().to_string(), &config, &req);
        let before = state.handle_line(&line);

        // Hold the slot the way an in-flight request would…
        let key = (
            std::fs::canonicalize(&p).unwrap(),
            config.metric.tag(),
            config.memory.tag(),
        );
        let slot = state.admit(&key, file_stamp(&key.0), config).unwrap();
        let guard = slot.engine.read().unwrap();

        // …then force an eviction (capacity 1, different memory mode).
        let other = SessionConfig {
            n_slices: 10,
            memory: MemoryMode::Lazy,
            ..SessionConfig::default()
        };
        state.handle_line(&ocelotl::format::encode_wire_request(
            &p.display().to_string(),
            &other,
            &req,
        ));
        assert_eq!(state.pooled_sessions(), 1, "old entry evicted");

        // The evicted slot still answers for its holder — and
        // byte-identically.
        let reply = guard
            .execute_shared(&AnalysisRequest::Aggregate {
                p: 0.4,
                coarse: false,
                compare: false,
                diff_p: None,
            })
            .expect("warm slot answers on the read path")
            .unwrap();
        let drained = ocelotl::format::encode_reply(&Ok(reply));
        assert_eq!(drained, before);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn racing_identical_cold_requests_coalesce_into_one_build() {
        let p = fixture_trace("serve-coalesce");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let line = wire(&p, 12, &req);
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| state.handle_line(&line)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &replies {
            assert_eq!(r, &replies[0], "coalesced replies are byte-identical");
            assert!(r.contains("\"reply\""), "{r}");
        }
        assert_eq!(state.builds_started(), 1, "M racing requests, one ingest");
        assert_eq!(state.pooled_sessions(), 1);
        assert_eq!(state.busy_rejections(), 0, "same-key races never go busy");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn over_budget_cold_requests_get_busy() {
        let p1 = fixture_trace("serve-busy-1");
        let p2 = fixture_trace("serve-busy-2");
        let state = ServerState::new(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        });
        // Occupy the single build permit directly (deterministic: no
        // timing dependence on how long a real build takes).
        let key1 = (
            std::fs::canonicalize(&p1).unwrap(),
            ocelotl::core::Metric::States.tag(),
            MemoryMode::Auto.tag(),
        );
        state.builds.lock().unwrap().insert(key1.clone());
        assert_eq!(state.builds_in_flight(), 1);

        // A *different* cold key beyond the budget is refused, typed.
        let reply = state.handle_line(&wire(&p2, 10, &AnalysisRequest::Describe));
        assert!(reply.contains("\"error\""), "{reply}");
        assert!(reply.contains("\"busy\""), "{reply}");
        assert_eq!(state.busy_rejections(), 1);
        assert_eq!(state.pooled_sessions(), 0, "busy requests build nothing");

        // Releasing the permit lets the same request through.
        state.builds.lock().unwrap().remove(&key1);
        state.builds_done.notify_all();
        let reply = state.handle_line(&wire(&p2, 10, &AnalysisRequest::Describe));
        assert!(reply.contains("\"reply\""), "{reply}");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn overwritten_trace_is_not_served_stale() {
        let p = fixture_trace("serve-stale");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Describe;
        let before = state.handle_line(&wire(&p, 10, &req));
        assert!(before.contains("\"n_leaves\":4"), "{before}");

        // Overwrite the trace with a different (larger) hierarchy; the
        // pooled session must be dropped, not answer from the old model.
        use ocelotl::prelude::*;
        let mut b = TraceBuilder::new(Hierarchy::balanced(&[2, 2, 2]));
        let run = b.state("Run");
        for leaf in 0..8u32 {
            b.push_state(LeafId(leaf), run, 0.0, 4.0);
        }
        ocelotl::format::write_trace(&b.build(), &p).unwrap();

        let after = state.handle_line(&wire(&p, 10, &req));
        assert!(after.contains("\"n_leaves\":8"), "stale reply: {after}");
        assert_eq!(state.pooled_sessions(), 1, "old session replaced");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_lines_produce_error_replies_not_crashes() {
        let state = ServerState::new(ServeOptions::default());
        for line in ["", "not json", "{\"v\":1}", "{\"v\":7,\"trace\":\"x\"}"] {
            let reply = state.handle_line(line);
            assert!(reply.contains("\"error\""), "{line:?} -> {reply}");
        }
        // Missing trace file is a source error.
        let req = AnalysisRequest::Describe;
        let reply = state.handle_line(&wire(std::path::Path::new("/no/such.btf"), 10, &req));
        assert!(reply.contains("\"source\""), "{reply}");
    }

    #[test]
    fn serve_lines_speaks_the_wire_protocol() {
        let p = fixture_trace("serve-lines");
        let state = ServerState::new(ServeOptions::default());
        let input = format!(
            "{}\n\n{}\n",
            wire(&p, 10, &AnalysisRequest::Describe),
            wire(&p, 10, &AnalysisRequest::PValues { resolution: 1e-2 }),
        );
        let mut out = Vec::new();
        serve_lines(&state, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped: {text}");
        for line in lines {
            assert!(ocelotl::format::decode_reply(line).unwrap().is_ok());
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pipelined_replies_come_back_in_request_order() {
        let p = fixture_trace("serve-pipeline");
        let state = ServerState::new(ServeOptions::default());
        // More requests than PIPELINE_DEPTH, with distinguishable
        // replies: p cycles through distinct values.
        let ps = [0.1, 0.3, 0.5, 0.7, 0.9];
        let mut input = String::new();
        for k in 0..20 {
            let req = AnalysisRequest::Aggregate {
                p: ps[k % ps.len()],
                coarse: false,
                compare: false,
                diff_p: None,
            };
            input.push_str(&wire(&p, 10, &req));
            input.push('\n');
        }
        let mut out = Vec::new();
        serve_lines(&state, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 20);
        for (k, line) in lines.iter().enumerate() {
            let expect = format!("\"p\":{}", ps[k % ps.len()]);
            assert!(
                line.contains(&expect),
                "reply {k} out of order: wanted {expect} in {line}"
            );
        }
        std::fs::remove_file(&p).ok();
    }
}
