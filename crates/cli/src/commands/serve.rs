//! `ocelotl serve` — a long-lived analysis server speaking the query
//! protocol over line-delimited JSON.
//!
//! The server holds one warm [`QueryEngine`] per `(trace, session
//! parameters)` pair in an LRU-bounded pool: the first query against a
//! trace pays the read/slice/cube cost, every later query — from any
//! connection — is answered from memory (and from `.ocube`/`.opart`
//! artifacts when a cache directory is configured). Because replies are
//! deterministic and the printers/serializers are shared with the direct
//! CLI path, a server answer is byte-identical to a local run.
//!
//! Wire format (one request, one reply, per line — see
//! `ocelotl-format::json`):
//!
//! ```text
//! → {"v":1,"trace":"/data/run.btf","config":{"slices":30,"metric":"states","memory":"auto"},"request":{"kind":"aggregate",...}}
//! ← {"v":1,"reply":{...}}            (or {"v":1,"error":{...}})
//! ```

use crate::args::Args;
use crate::helpers::{build_session, cache_dir, session_config};
use crate::CliError;
use ocelotl::core::query::{QueryEngine, QueryError};
use ocelotl::core::SessionConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const HELP: &str = "\
ocelotl serve (--listen ADDR | --socket PATH) [options]

Run a long-lived analysis server answering query-protocol requests over
line-delimited JSON. Sessions stay warm across requests and connections,
so every query after a trace's first is instantaneous.

OPTIONS:
    --listen ADDR    TCP address to bind, e.g. 127.0.0.1:7733
    --socket PATH    Unix domain socket to bind instead of TCP
    --sessions N     warm sessions kept (LRU-evicted beyond, default 8)
    --cache DIR      persist session artifacts (.ocube/.opart) under DIR
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC
                     (default 4; OCELOTL_CACHE_KEEP)

Query it with `ocelotl query ADDR TRACE KIND [options]`.
";

/// Server policy (everything except the per-request session parameters,
/// which each wire request carries).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Warm sessions kept before LRU eviction.
    pub max_sessions: usize,
    /// Artifact cache directory, if any.
    pub cache: Option<PathBuf>,
    /// Artifact GC retention per trace and kind.
    pub cache_keep: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_sessions: 8,
            cache: None,
            cache_keep: ocelotl::core::DEFAULT_CACHE_KEEP,
        }
    }
}

/// One warm engine keyed by trace identity and session parameters.
/// `n_slices` is deliberately **not** part of the key: a `--slices`
/// change re-slices the pooled session's resident hi-res model in memory
/// instead of admitting (and cold-ingesting) a separate session.
struct PoolEntry {
    key: (PathBuf, &'static str, &'static str),
    /// `(mtime, len)` of the trace when the session was admitted: a
    /// cheap per-request staleness probe. An overwritten trace must not
    /// keep being served from the old in-memory model — that would break
    /// the CLI == server byte-parity guarantee.
    stamp: FileStamp,
    engine: QueryEngine,
    last_used: u64,
}

/// Modification time and size of a file (best-effort; `None` components
/// compare equal only to themselves, so an unreadable stat degrades to
/// "rebuild on next request" never to "serve stale").
type FileStamp = (Option<std::time::SystemTime>, Option<u64>);

fn file_stamp(path: &Path) -> FileStamp {
    match std::fs::metadata(path) {
        Ok(m) => (m.modified().ok(), Some(m.len())),
        Err(_) => (None, None),
    }
}

/// The LRU-bounded session pool. Engines execute under the pool lock —
/// queries are serialized, which keeps every session's memoization
/// single-writer (the DP itself still uses the parallel executor).
struct Pool {
    entries: Vec<PoolEntry>,
    clock: u64,
}

/// Shared state of one running server.
pub struct ServerState {
    pool: Mutex<Pool>,
    opts: ServeOptions,
}

impl ServerState {
    /// Fresh state under the given policy.
    pub fn new(opts: ServeOptions) -> Self {
        Self {
            pool: Mutex::new(Pool {
                entries: Vec::new(),
                clock: 0,
            }),
            opts,
        }
    }

    /// Execute one wire-request line, producing exactly one reply line
    /// (errors included — this function never fails).
    pub fn handle_line(&self, line: &str) -> String {
        let result = self.try_handle(line);
        ocelotl::format::encode_reply(&result)
    }

    fn try_handle(&self, line: &str) -> Result<ocelotl::core::query::AnalysisReply, QueryError> {
        let (trace, mut config, request) = ocelotl::format::decode_wire_request(line)?;
        let path = PathBuf::from(&trace);
        if !path.exists() {
            return Err(QueryError::Source(format!("no such file: {trace}")));
        }
        // Canonical identity: the same trace reached through different
        // spellings shares one warm session.
        let canonical = std::fs::canonicalize(&path).unwrap_or(path);
        config.cache_keep = self.opts.cache_keep;
        let key = (canonical, config.metric.tag(), config.memory.tag());

        let stamp = file_stamp(&key.0);
        let mut pool = self.pool.lock().unwrap();
        pool.clock += 1;
        let now = pool.clock;
        // A pooled session whose trace file changed on disk (stamp
        // mismatch, or unreadable stat) is dropped and rebuilt cold.
        if let Some(i) = pool.entries.iter().position(|e| e.key == key) {
            if pool.entries[i].stamp != stamp || stamp == (None, None) {
                pool.entries.swap_remove(i);
            }
        }
        let idx = match pool.entries.iter().position(|e| e.key == key) {
            Some(i) => i,
            None => {
                // Admit a fresh engine, evicting the least recently used
                // entry beyond the cap.
                if pool.entries.len() >= self.opts.max_sessions.max(1) {
                    let lru = pool
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .unwrap();
                    pool.entries.swap_remove(lru);
                }
                let session = self.open(&key.0, config);
                pool.entries.push(PoolEntry {
                    key,
                    stamp,
                    engine: QueryEngine::new(session),
                    last_used: now,
                });
                pool.entries.len() - 1
            }
        };
        pool.entries[idx].last_used = now;
        // Pin the pooled session to this request's resolution (full grid):
        // a `--slices` change re-slices from the resident hi-res model /
        // warm artifacts instead of re-ingesting, and any zoom window a
        // previous `Reslice` request left behind is reset so wire requests
        // stay self-contained.
        pool.entries[idx]
            .engine
            .session_mut()
            .reslice(config.n_slices, None)?;
        pool.entries[idx].engine.execute(&request)
    }

    fn open(&self, path: &Path, config: SessionConfig) -> ocelotl::core::AnalysisSession {
        build_session(path, config, self.opts.cache.as_deref())
    }

    /// Number of warm sessions currently pooled.
    pub fn pooled_sessions(&self) -> usize {
        self.pool.lock().unwrap().entries.len()
    }
}

/// A running TCP server (background accept thread), for tests, benches
/// and the `serve` command itself.
pub struct ServerHandle {
    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub addr: std::net::SocketAddr,
    /// Shared state (pool introspection for tests).
    pub state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal the accept loop to exit and wait for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve in a background thread.
pub fn spawn_tcp(addr: &str, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let state = Arc::new(ServerState::new(opts));
    let stop = Arc::new(AtomicBool::new(false));
    let (state2, stop2) = (state.clone(), stop.clone());
    let join = std::thread::spawn(move || accept_loop(listener, state2, stop2));
    Ok(ServerHandle {
        addr: local,
        state,
        stop,
        join: Some(join),
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(&state, stream);
        });
    }
}

/// Serve one TCP connection: one reply line per request line, until EOF.
fn serve_connection(state: &ServerState, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    serve_lines(state, reader, &mut writer)
}

/// The transport-agnostic request loop (TCP, Unix sockets and tests all
/// funnel through here).
pub fn serve_lines(
    state: &ServerState,
    reader: impl BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(state.handle_line(&line).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

fn serve_options(args: &Args) -> Result<ServeOptions, CliError> {
    let config = session_config(args)?;
    Ok(ServeOptions {
        max_sessions: args.get_or("sessions", 8usize)?.max(1),
        cache: cache_dir(args)?,
        cache_keep: config.cache_keep,
    })
}

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help",
        "listen",
        "socket",
        "sessions",
        "cache",
        "no-cache",
        "cache-keep",
    ])?;
    let opts = serve_options(&args)?;

    if let Some(path) = args.get("socket")? {
        return serve_unix(path, opts, out);
    }
    let addr = args
        .get("listen")?
        .ok_or_else(|| CliError::Usage("serve needs --listen ADDR or --socket PATH".into()))?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::Invalid(format!("cannot bind {addr}: {e}")))?;
    let local = listener.local_addr()?;
    writeln!(
        out,
        "listening on {local} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    accept_loop(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

/// Serve on a Unix domain socket (Unix only).
#[cfg(unix)]
fn serve_unix(path: &str, opts: ServeOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| CliError::Invalid(format!("cannot bind {path}: {e}")))?;
    writeln!(
        out,
        "listening on {path} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        std::thread::spawn(move || {
            let Ok(mut writer) = stream.try_clone() else {
                return;
            };
            let _ = serve_lines(&state, BufReader::new(stream), &mut writer);
        });
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_unix(_path: &str, _opts: ServeOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; use --listen ADDR".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;
    use ocelotl::core::query::AnalysisRequest;
    use ocelotl::core::{MemoryMode, SessionConfig};

    fn wire(trace: &std::path::Path, slices: usize, req: &AnalysisRequest) -> String {
        ocelotl::format::encode_wire_request(
            &trace.display().to_string(),
            &SessionConfig {
                n_slices: slices,
                ..SessionConfig::default()
            },
            req,
        )
    }

    #[test]
    fn handle_line_answers_and_pools() {
        let p = fixture_trace("serve-pool");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let first = state.handle_line(&wire(&p, 10, &req));
        let second = state.handle_line(&wire(&p, 10, &req));
        assert_eq!(first, second, "warm answer must be byte-identical");
        assert!(first.contains("\"reply\""), "{first}");
        assert_eq!(state.pooled_sessions(), 1, "same key shares one session");
        // Different slicing re-slices the SAME warm session in memory —
        // no second session, no re-ingest.
        let resliced = state.handle_line(&wire(&p, 20, &req));
        assert!(resliced.contains("\"n_slices\":20"), "{resliced}");
        assert_eq!(
            state.pooled_sessions(),
            1,
            "a --slices change must reuse the pooled session"
        );
        // …and switching back serves the parked pipeline byte-identically.
        assert_eq!(state.handle_line(&wire(&p, 10, &req)), first);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pool_is_lru_bounded() {
        let p = fixture_trace("serve-lru");
        let state = ServerState::new(ServeOptions {
            max_sessions: 2,
            ..ServeOptions::default()
        });
        let req = AnalysisRequest::Describe;
        // Slicing no longer keys the pool; metric × memory combinations do.
        for (metric, memory) in [
            (ocelotl::core::Metric::States, MemoryMode::Dense),
            (ocelotl::core::Metric::States, MemoryMode::Lazy),
            (ocelotl::core::Metric::Density, MemoryMode::Dense),
            (ocelotl::core::Metric::Density, MemoryMode::Lazy),
        ] {
            let config = SessionConfig {
                n_slices: 10,
                metric,
                memory,
                ..SessionConfig::default()
            };
            let line =
                ocelotl::format::encode_wire_request(&p.display().to_string(), &config, &req);
            state.handle_line(&line);
        }
        assert_eq!(state.pooled_sessions(), 2, "evicted down to the cap");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn overwritten_trace_is_not_served_stale() {
        let p = fixture_trace("serve-stale");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Describe;
        let before = state.handle_line(&wire(&p, 10, &req));
        assert!(before.contains("\"n_leaves\":4"), "{before}");

        // Overwrite the trace with a different (larger) hierarchy; the
        // pooled session must be dropped, not answer from the old model.
        use ocelotl::prelude::*;
        let mut b = TraceBuilder::new(Hierarchy::balanced(&[2, 2, 2]));
        let run = b.state("Run");
        for leaf in 0..8u32 {
            b.push_state(LeafId(leaf), run, 0.0, 4.0);
        }
        ocelotl::format::write_trace(&b.build(), &p).unwrap();

        let after = state.handle_line(&wire(&p, 10, &req));
        assert!(after.contains("\"n_leaves\":8"), "stale reply: {after}");
        assert_eq!(state.pooled_sessions(), 1, "old session replaced");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_lines_produce_error_replies_not_crashes() {
        let state = ServerState::new(ServeOptions::default());
        for line in ["", "not json", "{\"v\":1}", "{\"v\":7,\"trace\":\"x\"}"] {
            let reply = state.handle_line(line);
            assert!(reply.contains("\"error\""), "{line:?} -> {reply}");
        }
        // Missing trace file is a source error.
        let req = AnalysisRequest::Describe;
        let reply = state.handle_line(&wire(std::path::Path::new("/no/such.btf"), 10, &req));
        assert!(reply.contains("\"source\""), "{reply}");
    }

    #[test]
    fn serve_lines_speaks_the_wire_protocol() {
        let p = fixture_trace("serve-lines");
        let state = ServerState::new(ServeOptions::default());
        let input = format!(
            "{}\n\n{}\n",
            wire(&p, 10, &AnalysisRequest::Describe),
            wire(&p, 10, &AnalysisRequest::PValues { resolution: 1e-2 }),
        );
        let mut out = Vec::new();
        serve_lines(&state, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped: {text}");
        for line in lines {
            assert!(ocelotl::format::decode_reply(line).unwrap().is_ok());
        }
        std::fs::remove_file(&p).ok();
    }
}
