//! `ocelotl serve` — a long-lived analysis server speaking the query
//! protocol over line-delimited JSON.
//!
//! The server holds one warm [`QueryEngine`] per `(trace, session
//! parameters)` pair in an LRU-bounded pool: the first query against a
//! trace pays the read/slice/cube cost, every later query — from any
//! connection — is answered from memory (and from `.ocube`/`.opart`
//! artifacts when a cache directory is configured). Because replies are
//! deterministic and the printers/serializers are shared with the direct
//! CLI path, a server answer is byte-identical to a local run.
//!
//! ## Concurrency model
//!
//! Three mechanisms keep N clients from serializing on one lock:
//!
//! * **Read-mostly warm sessions.** Pooled engines live in
//!   `Arc<RwLock<_>>` slots; the pool mutex is held only for
//!   lookup/admission, never during execution. A warm request takes the
//!   slot's *read* lock and answers through the engine's `&self` path
//!   ([`QueryEngine::execute_shared`]), so any number of clients query
//!   one warm session in parallel — even point DPs at new `p` values,
//!   which append to the session's lock-guarded memo table. Only
//!   requests that must mutate the pipeline (a `--slices` change, a
//!   `Reslice`, a cold stage) take the write lock.
//! * **Bounded builds with admission control.** Cold session builds
//!   (ingest + cube + table) run outside every pool lock under a build
//!   budget of `--workers` permits. Concurrent requests for the *same*
//!   cold trace coalesce onto one in-flight build; requests for other
//!   cold traces beyond the budget are refused with a typed `busy` error
//!   instead of queueing unboundedly — warm reads are never affected.
//! * **Connection pipelining.** [`serve_lines`] reads ahead (up to
//!   [`PIPELINE_DEPTH`] requests), executes independent requests
//!   concurrently, and emits replies strictly in request order, so the
//!   wire contract (i-th reply answers i-th request) is preserved.
//!
//! Eviction is drain-based: dropping a pool entry only drops the pool's
//! `Arc` handle — connections still executing on the evicted session
//! finish normally, and the memory is freed when the last reader lets go.
//!
//! Wire format (one request, one reply, per line — see
//! `ocelotl-format::json`):
//!
//! ```text
//! → {"v":1,"trace":"/data/run.btf","config":{"slices":30,"metric":"states","memory":"auto"},"request":{"kind":"aggregate",...}}
//! ← {"v":1,"reply":{...}}            (or {"v":1,"error":{...}})
//! ```

use crate::args::Args;
use crate::helpers::{build_session_with_workers, cache_dir, session_config};
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest, QueryEngine, QueryError, WatchReply};
use ocelotl::core::{LiveEvent, SessionConfig};
use std::collections::{BTreeMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

const HELP: &str = "\
ocelotl serve (--listen ADDR | --socket PATH) [options]

Run a long-lived analysis server answering query-protocol requests over
line-delimited JSON. Sessions stay warm across requests and connections,
so every query after a trace's first is instantaneous; warm sessions are
read-shared, so concurrent clients never queue behind each other.

OPTIONS:
    --listen ADDR    TCP address to bind, e.g. 127.0.0.1:7733
    --socket PATH    Unix domain socket to bind instead of TCP
    --sessions N     warm sessions kept (LRU-evicted beyond, default 8)
    --workers N      cold session builds allowed in flight (default
                     min(cores, sessions)); beyond the budget requests
                     get a typed `busy' error instead of queueing
    --cache DIR      persist session artifacts (.ocube/.opart) under DIR
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC
                     (default 4; OCELOTL_CACHE_KEEP)

Query it with `ocelotl query ADDR TRACE KIND [options]`.
";

/// Lock a bookkeeping mutex, recovering from poisoning. The mutexes this
/// is used on (pool entry list, build set, pipeline counters, reply
/// ordering) guard plain data that a panicking peer leaves structurally
/// intact — a poisoned guard is safe to keep using, and panicking the
/// server thread over it would turn one lost request into a dead server.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_clean`].
fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Default cold-build budget: one worker per core, capped by the pool
/// size (more concurrent cold builds than pooled sessions is pure churn).
pub fn default_workers(max_sessions: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(max_sessions)
        .max(1)
}

/// Server policy (everything except the per-request session parameters,
/// which each wire request carries).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Warm sessions kept before LRU eviction.
    pub max_sessions: usize,
    /// Cold session builds allowed in flight before `busy` refusals.
    pub workers: usize,
    /// Artifact cache directory, if any.
    pub cache: Option<PathBuf>,
    /// Artifact GC retention per trace and kind.
    pub cache_keep: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_sessions: 8,
            workers: default_workers(8),
            cache: None,
            cache_keep: ocelotl::core::DEFAULT_CACHE_KEEP,
        }
    }
}

/// Pool identity of one warm engine: trace identity and session
/// parameters. `n_slices` is deliberately **not** part of the key: a
/// `--slices` change re-slices the pooled session's resident hi-res model
/// in memory instead of admitting (and cold-ingesting) a separate
/// session.
type PoolKey = (PathBuf, &'static str, &'static str);

/// One pooled warm engine behind its own lock. The pool hands out `Arc`s
/// of this — execution happens entirely outside the pool mutex, and an
/// evicted slot survives (drains) until its last in-flight user is done.
struct SessionSlot {
    engine: RwLock<QueryEngine>,
}

struct PoolEntry {
    key: PoolKey,
    /// `(mtime, len)` of the trace when the session was admitted: a
    /// cheap per-request staleness probe. An overwritten trace must not
    /// keep being served from the old in-memory model — that would break
    /// the CLI == server byte-parity guarantee.
    stamp: FileStamp,
    slot: Arc<SessionSlot>,
    last_used: u64,
}

/// Modification time and size of a file (best-effort; `None` components
/// compare equal only to themselves, so an unreadable stat degrades to
/// "rebuild on next request" never to "serve stale").
type FileStamp = (Option<std::time::SystemTime>, Option<u64>);

fn file_stamp(path: &Path) -> FileStamp {
    if path.is_dir() {
        // A directory trace: fold the newest mtime and the total size of
        // its trace files, so adding, removing or touching any member
        // invalidates the pooled session.
        let Ok(files) = ocelotl::format::trace_files(path) else {
            return (None, None);
        };
        let mut newest: Option<std::time::SystemTime> = None;
        let mut total = 0u64;
        for f in files {
            if let Ok(m) = std::fs::metadata(&f) {
                if let Ok(t) = m.modified() {
                    newest = Some(newest.map_or(t, |n| n.max(t)));
                }
                total += m.len();
            }
        }
        return (newest, Some(total));
    }
    match std::fs::metadata(path) {
        Ok(m) => (m.modified().ok(), Some(m.len())),
        Err(_) => (None, None),
    }
}

/// The LRU-bounded session pool. The mutex guards only the entry list
/// (lookup, admission, eviction bookkeeping) — queries execute on the
/// `Arc`'d slots after the lock is released.
struct Pool {
    entries: Vec<PoolEntry>,
    clock: u64,
}

/// Shared state of one running server.
pub struct ServerState {
    pool: Mutex<Pool>,
    /// Keys with a cold build in flight (the admission budget). Guarded
    /// separately from the pool so warm lookups never wait on builders.
    builds: Mutex<HashSet<PoolKey>>,
    /// Signaled whenever a build finishes (coalesced waiters re-check).
    builds_done: Condvar,
    builds_started: AtomicUsize,
    busy_rejections: AtomicUsize,
    /// Published live sessions, addressable by the advertised name in a
    /// wire request's `trace` field. Held only for lookup/registration —
    /// never across model work.
    live: Mutex<Vec<LiveEntry>>,
    opts: ServeOptions,
}

/// Releases a key's build permit on every exit path (success or error)
/// and wakes coalesced waiters.
struct BuildPermit<'a> {
    state: &'a ServerState,
    key: PoolKey,
}

impl Drop for BuildPermit<'_> {
    fn drop(&mut self) {
        lock_clean(&self.state.builds).remove(&self.key);
        self.state.builds_done.notify_all();
    }
}

impl ServerState {
    /// Fresh state under the given policy.
    pub fn new(opts: ServeOptions) -> Self {
        Self {
            pool: Mutex::new(Pool {
                entries: Vec::new(),
                clock: 0,
            }),
            builds: Mutex::new(HashSet::new()),
            builds_done: Condvar::new(),
            builds_started: AtomicUsize::new(0),
            busy_rejections: AtomicUsize::new(0),
            live: Mutex::new(Vec::new()),
            opts,
        }
    }

    /// Execute one wire-request line, producing exactly one reply line
    /// (errors included — this function never fails).
    pub fn handle_line(&self, line: &str) -> String {
        let result = self.try_handle(line);
        ocelotl::format::encode_reply(&result)
    }

    fn try_handle(&self, line: &str) -> Result<ocelotl::core::query::AnalysisReply, QueryError> {
        let (trace, mut config, request) = ocelotl::format::decode_wire_request(line)?;
        // Published live sessions shadow the filesystem: their advertised
        // names are served from the in-memory feed, never from disk.
        if let Some((slot, _live)) = self.live_lookup(&trace) {
            return Self::handle_live(&slot, &config, &request);
        }
        let path = PathBuf::from(&trace);
        if !path.exists() {
            return Err(QueryError::Source(format!("no such file: {trace}")));
        }
        // Canonical identity: the same trace reached through different
        // spellings shares one warm session.
        let canonical = std::fs::canonicalize(&path).unwrap_or(path);
        config.cache_keep = self.opts.cache_keep;
        let key = (canonical, config.metric.tag(), config.memory.tag());
        let stamp = file_stamp(&key.0);
        let slot = self.admit(&key, stamp, config)?;

        // Fast path: the pooled session already sits at this request's
        // (full-grid) resolution — answer under the slot's *read* lock,
        // concurrently with every other warm reader.
        {
            let Ok(engine) = slot.engine.read() else {
                return Err(self.evict_poisoned(&key));
            };
            let session = engine.session();
            if session.config().n_slices == config.n_slices && session.window().is_none() {
                if let Some(result) = engine.execute_shared(&request) {
                    return result;
                }
            }
        }

        // Write path: pin the pooled session to this request's resolution
        // (a `--slices` change re-slices from the resident hi-res model /
        // warm artifacts instead of re-ingesting, and any zoom window a
        // previous `Reslice` request left behind is reset so wire
        // requests stay self-contained), then execute exclusively.
        let Ok(mut engine) = slot.engine.write() else {
            return Err(self.evict_poisoned(&key));
        };
        engine.session_mut().reslice(config.n_slices, None)?;
        engine.execute(&request)
    }

    /// A panic inside a pooled engine poisons its `RwLock`. Evict the
    /// slot (the next request for this trace rebuilds cold) and refuse
    /// this request typed instead of spreading the panic.
    fn evict_poisoned(&self, key: &PoolKey) -> QueryError {
        let mut pool = lock_clean(&self.pool);
        if let Some(i) = pool.entries.iter().position(|e| e.key == *key) {
            pool.entries.swap_remove(i);
        }
        QueryError::Source(
            "warm session was poisoned by an earlier panic; evicted, retry to rebuild".to_string(),
        )
    }

    /// Find the warm slot for `key`, or cold-build one under the
    /// admission budget. Requests racing on the same cold key coalesce
    /// onto the one in-flight build; distinct cold keys beyond the
    /// `--workers` budget are refused with [`QueryError::Busy`].
    fn admit(
        &self,
        key: &PoolKey,
        stamp: FileStamp,
        config: SessionConfig,
    ) -> Result<Arc<SessionSlot>, QueryError> {
        loop {
            {
                let mut pool = lock_clean(&self.pool);
                pool.clock += 1;
                let now = pool.clock;
                if let Some(i) = pool.entries.iter().position(|e| e.key == *key) {
                    if let Some(e) = pool.entries.get_mut(i) {
                        if e.stamp == stamp && stamp != (None, None) {
                            e.last_used = now;
                            return Ok(e.slot.clone());
                        }
                    }
                    // A pooled session whose trace file changed on disk
                    // (stamp mismatch, or unreadable stat) is replaced;
                    // in-flight readers drain on their own Arc.
                    pool.entries.swap_remove(i);
                }
            }
            let mut builds = lock_clean(&self.builds);
            if builds.contains(key) {
                // Same key already building: wait for it and re-check the
                // pool instead of racing a duplicate ingest.
                drop(wait_clean(&self.builds_done, builds));
                continue;
            }
            if builds.len() >= self.opts.workers.max(1) {
                self.busy_rejections.fetch_add(1, Ordering::SeqCst);
                return Err(QueryError::Busy(format!(
                    "cold-build budget exhausted ({} of {} workers busy); retry shortly",
                    builds.len(),
                    self.opts.workers.max(1)
                )));
            }
            builds.insert(key.clone());
            break;
        }
        // Build outside every lock. The permit is released (and waiters
        // woken) on success *and* on error, via Drop.
        let _permit = BuildPermit {
            state: self,
            key: key.clone(),
        };
        self.builds_started.fetch_add(1, Ordering::SeqCst);
        let mut engine = QueryEngine::new(self.open(&key.0, config));
        // The expensive part — ingest, cube, table — happens here, under
        // the build permit, so the published slot is warm for readers.
        engine.warm_up()?;
        let slot = Arc::new(SessionSlot {
            engine: RwLock::new(engine),
        });
        let mut pool = lock_clean(&self.pool);
        pool.clock += 1;
        let now = pool.clock;
        while pool.entries.len() >= self.opts.max_sessions.max(1) {
            // Evict the least recently used entry beyond the cap; its
            // slot drains via the Arc if anyone is mid-query on it.
            let Some(lru) = pool
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            pool.entries.swap_remove(lru);
        }
        pool.entries.push(PoolEntry {
            key: key.clone(),
            stamp,
            slot: slot.clone(),
            last_used: now,
        });
        Ok(slot)
    }

    fn open(&self, path: &Path, config: SessionConfig) -> ocelotl::core::AnalysisSession {
        // Divide the global thread budget across the build permits: with
        // W concurrent cold builds allowed, each ingest gets its share of
        // the executor instead of `--workers` builds each spawning a full
        // complement of shard threads. The cap redistributes work only —
        // shard plans are content-derived, so output bits never change.
        let shard_workers = (rayon::max_threads() / self.opts.workers.max(1)).max(1);
        build_session_with_workers(path, config, self.opts.cache.as_deref(), shard_workers)
    }

    /// Number of warm sessions currently pooled.
    pub fn pooled_sessions(&self) -> usize {
        lock_clean(&self.pool).entries.len()
    }

    /// Cold session builds started since the server came up (coalesced
    /// requests share one build, so racing M identical cold requests
    /// bumps this once).
    pub fn builds_started(&self) -> usize {
        self.builds_started.load(Ordering::SeqCst)
    }

    /// Cold builds currently in flight.
    pub fn builds_in_flight(&self) -> usize {
        lock_clean(&self.builds).len()
    }

    /// Requests refused with `busy` because the build budget was
    /// exhausted.
    pub fn busy_rejections(&self) -> usize {
        self.busy_rejections.load(Ordering::SeqCst)
    }

    /// Publish a live session under `name`: wire requests whose `trace`
    /// field equals `name` are served from this engine (never from disk),
    /// and `subscribe` requests stream its refreshes. Returns the feeder
    /// half, which pushes event batches and announces refreshes.
    pub fn publish_live(&self, name: &str, engine: QueryEngine) -> LiveFeeder {
        let slot = Arc::new(SessionSlot {
            engine: RwLock::new(engine),
        });
        let live = Arc::new(LiveState {
            gen: Mutex::new(LiveGen::default()),
            refreshed: Condvar::new(),
            subscribers: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
        });
        lock_clean(&self.live).push(LiveEntry {
            name: name.to_string(),
            slot: slot.clone(),
            live: live.clone(),
        });
        LiveFeeder { slot, live }
    }

    fn live_lookup(&self, name: &str) -> Option<(Arc<SessionSlot>, Arc<LiveState>)> {
        lock_clean(&self.live)
            .iter()
            .find(|e| e.name == name)
            .map(|e| (e.slot.clone(), e.live.clone()))
    }

    /// Number of published live sessions.
    pub fn live_sessions(&self) -> usize {
        lock_clean(&self.live).len()
    }

    /// Answer one non-subscribe request against a published live session:
    /// the same read-fast/write-slow split as pooled sessions, minus the
    /// disk-backed admission (a live model exists only in memory).
    fn handle_live(
        slot: &SessionSlot,
        config: &SessionConfig,
        request: &AnalysisRequest,
    ) -> Result<AnalysisReply, QueryError> {
        if matches!(request, AnalysisRequest::Subscribe { .. }) {
            return Err(QueryError::Protocol(
                "subscribe takes over its connection and must be the last request on it; \
                 pipelined subscribe is not supported"
                    .into(),
            ));
        }
        {
            let Ok(engine) = slot.engine.read() else {
                return Err(QueryError::Source(
                    "live session lock poisoned by an earlier panic".into(),
                ));
            };
            let session = engine.session();
            if session.config().metric.tag() != config.metric.tag() {
                return Err(QueryError::InvalidRequest(format!(
                    "live session serves the `{}' metric; request asked for `{}'",
                    session.config().metric.tag(),
                    config.metric.tag(),
                )));
            }
            if session.config().n_slices == config.n_slices && session.window().is_none() {
                if let Some(result) = engine.execute_shared(request) {
                    return result;
                }
            }
        }
        let Ok(mut engine) = slot.engine.write() else {
            return Err(QueryError::Source(
                "live session lock poisoned by an earlier panic".into(),
            ));
        };
        engine.session_mut().reslice(config.n_slices, None)?;
        engine.execute(request)
    }

    /// Serve one `subscribe` wire line: stream a [`WatchReply`]-wrapped
    /// refresh per feeder generation over `out` until the feeder finishes
    /// or the client goes away. Protocol-level failures are written as a
    /// single typed error line and end the stream; only transport
    /// failures surface as `Err` (the connection is gone either way).
    pub fn serve_subscription(&self, line: &str, out: &mut dyn Write) -> std::io::Result<()> {
        fn emit(
            out: &mut dyn Write,
            result: &Result<AnalysisReply, QueryError>,
        ) -> std::io::Result<()> {
            out.write_all(ocelotl::format::encode_reply(result).as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()
        }
        let parsed =
            ocelotl::format::decode_wire_request(line).and_then(|(trace, config, request)| {
                let AnalysisRequest::Subscribe { inner } = request else {
                    return Err(QueryError::Protocol(
                        "serve_subscription called on a non-subscribe request".into(),
                    ));
                };
                AnalysisRequest::validate_subscribe_inner(&inner)?;
                Ok((trace, config, *inner))
            });
        let (trace, config, inner) = match parsed {
            Ok(t) => t,
            Err(e) => return emit(out, &Err(e)),
        };
        let Some((slot, live)) = self.live_lookup(&trace) else {
            return emit(
                out,
                &Err(QueryError::Unsupported(format!(
                    "no live session named {trace:?} on this server; subscribe needs a \
                     server with a live feed (e.g. `ocelotl simulate --live`)"
                ))),
            );
        };
        // A live session is pinned to its publisher's resolution and
        // metric: refusing mismatched subscriptions up front keeps the
        // refresh loop on the lock-free-ish read path (no reslice churn).
        {
            let Ok(engine) = slot.engine.read() else {
                return emit(
                    out,
                    &Err(QueryError::Source(
                        "live session lock poisoned by an earlier panic".into(),
                    )),
                );
            };
            let session = engine.session();
            if session.config().n_slices != config.n_slices
                || session.config().metric.tag() != config.metric.tag()
            {
                return emit(
                    out,
                    &Err(QueryError::InvalidRequest(format!(
                        "live session {trace:?} is pinned to --slices {} --metric {}; \
                         subscribe with matching session parameters",
                        session.config().n_slices,
                        session.config().metric.tag(),
                    ))),
                );
            }
        }
        let _guard = SubscriberGuard::new(&live);
        let mut last_seq = 0u64;
        loop {
            let (seq, events, done) = {
                let mut gen = lock_clean(&live.gen);
                while gen.seq <= last_seq && !gen.done {
                    gen = wait_clean(&live.refreshed, gen);
                }
                (gen.seq, gen.events, gen.done)
            };
            // Answer on the shared read path, and release the engine lock
            // *before* the socket write: a slow subscriber must never
            // block the feeder or warm readers on the engine lock.
            let result = {
                let Ok(engine) = slot.engine.read() else {
                    return emit(
                        out,
                        &Err(QueryError::Source(
                            "live session lock poisoned by an earlier panic".into(),
                        )),
                    );
                };
                engine.execute_shared(&inner).unwrap_or_else(|| {
                    Err(QueryError::Source(
                        "live pipeline stage not resident after refresh".into(),
                    ))
                })
            };
            let failed = result.is_err();
            let wrapped = result.map(|reply| {
                AnalysisReply::Watch(WatchReply {
                    seq,
                    done,
                    events,
                    reply: Box::new(reply),
                })
            });
            emit(out, &wrapped)?;
            last_seq = seq;
            if done || failed {
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live sessions: feeder and subscriber bookkeeping
// ---------------------------------------------------------------------------

/// Progress marker of one live session, shared by the feeder and every
/// subscriber. The mutex guards three words; the engine's own `RwLock`
/// serializes the actual model work.
#[derive(Default)]
struct LiveGen {
    /// Refresh generation, bumped on every `feed` and once on `finish`
    /// (so even a subscriber that arrives after the stream ended gets one
    /// final reply at a generation it has not seen). Starts at 0 = "no
    /// data yet"; subscribers never answer at generation 0.
    seq: u64,
    /// Events folded so far.
    events: u64,
    /// The feeder is done; the next refresh each subscriber emits is its
    /// last.
    done: bool,
}

/// Shared state of one published live session.
struct LiveState {
    gen: Mutex<LiveGen>,
    /// Signaled on every refresh and on `finish`.
    refreshed: Condvar,
    /// Subscribers currently streaming (observable for tests and
    /// publisher shutdown pacing).
    subscribers: AtomicUsize,
    /// Subscriptions ever started (monotonic — lets a publisher detect
    /// "someone came and drained" without sampling races).
    served: AtomicUsize,
}

/// One published live session, addressable by its advertised name in the
/// wire request's `trace` field.
struct LiveEntry {
    name: String,
    slot: Arc<SessionSlot>,
    live: Arc<LiveState>,
}

/// Decrements the subscriber count on every exit path — clean end of
/// stream *and* client disconnect — so a dropped connection can never
/// leak its broadcast entry.
struct SubscriberGuard<'a>(&'a LiveState);

impl<'a> SubscriberGuard<'a> {
    fn new(live: &'a LiveState) -> Self {
        live.subscribers.fetch_add(1, Ordering::SeqCst);
        live.served.fetch_add(1, Ordering::SeqCst);
        Self(live)
    }
}

impl Drop for SubscriberGuard<'_> {
    fn drop(&mut self) {
        self.0.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The producer half of a published live session: push event batches
/// into the model, then announce each refresh to every subscriber.
pub struct LiveFeeder {
    slot: Arc<SessionSlot>,
    live: Arc<LiveState>,
}

impl LiveFeeder {
    /// Fold one event batch into the live model and re-derive the warm
    /// pipeline, then wake every subscriber. The engine's write lock is
    /// held only for the model work — the generation bump and broadcast
    /// happen after it is released, so subscribers re-reading the engine
    /// never deadlock with the feeder.
    pub fn feed(&self, events: &[LiveEvent]) -> Result<(), QueryError> {
        {
            let Ok(mut engine) = self.slot.engine.write() else {
                return Err(QueryError::Source(
                    "live session lock poisoned by an earlier panic".into(),
                ));
            };
            engine.session_mut().advance(events)?;
            engine.warm_up()?;
        }
        let mut gen = lock_clean(&self.live.gen);
        gen.seq += 1;
        gen.events += events.len() as u64;
        drop(gen);
        self.live.refreshed.notify_all();
        Ok(())
    }

    /// Mark the stream complete: every subscriber gets one final refresh
    /// (`done: true`) and disconnects cleanly. Idempotent.
    pub fn finish(&self) {
        let mut gen = lock_clean(&self.live.gen);
        if !gen.done {
            gen.done = true;
            gen.seq += 1;
        }
        drop(gen);
        self.live.refreshed.notify_all();
    }

    /// Subscribers currently streaming.
    pub fn subscribers(&self) -> usize {
        self.live.subscribers.load(Ordering::SeqCst)
    }

    /// Subscriptions ever started (monotonic).
    pub fn served(&self) -> usize {
        self.live.served.load(Ordering::SeqCst)
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        lock_clean(&self.live.gen).events
    }

    /// Run `f` against the published engine under its read lock — the
    /// same shared path subscribers answer from. `None` if the lock was
    /// poisoned.
    pub fn with_engine<T>(&self, f: impl FnOnce(&QueryEngine) -> T) -> Option<T> {
        let Ok(engine) = self.slot.engine.read() else {
            return None;
        };
        Some(f(&engine))
    }
}

/// Where a running server listens.
enum Endpoint {
    Tcp(std::net::SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running server (background accept thread), for tests, benches and
/// the `serve` command itself.
pub struct ServerHandle {
    endpoint: Endpoint,
    /// Shared state (pool introspection for tests).
    pub state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The client-facing address: `host:port` for TCP, `unix:PATH` for a
    /// Unix socket — exactly what `ocelotl query` accepts.
    pub fn address(&self) -> String {
        match &self.endpoint {
            Endpoint::Tcp(addr) => addr.to_string(),
            #[cfg(unix)]
            Endpoint::Unix(path) => format!("unix:{}", path.display()),
        }
    }

    /// Signal the accept loop to exit and wait for it. Connects over the
    /// handle's own transport (TCP or the Unix socket path) to unblock
    /// the blocking accept call, so `--socket` servers shut down as
    /// cleanly as TCP ones.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve in a background thread.
pub fn spawn_tcp(addr: &str, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    spawn_tcp_with_state(addr, Arc::new(ServerState::new(opts)))
}

/// Bind `addr` and serve an existing state — live servers publish their
/// session into the state before opening the listener.
pub fn spawn_tcp_with_state(addr: &str, state: Arc<ServerState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (state2, stop2) = (state.clone(), stop.clone());
    let join = std::thread::spawn(move || accept_loop(listener, state2, stop2));
    Ok(ServerHandle {
        endpoint: Endpoint::Tcp(local),
        state,
        stop,
        join: Some(join),
    })
}

/// Bind a Unix domain socket and serve in a background thread.
#[cfg(unix)]
pub fn spawn_unix(path: impl Into<PathBuf>, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    spawn_unix_with_state(path, Arc::new(ServerState::new(opts)))
}

/// Unix-socket variant of [`spawn_tcp_with_state`].
#[cfg(unix)]
pub fn spawn_unix_with_state(
    path: impl Into<PathBuf>,
    state: Arc<ServerState>,
) -> std::io::Result<ServerHandle> {
    use std::os::unix::net::UnixListener;
    let path = path.into();
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (state2, stop2) = (state.clone(), stop.clone());
    let join = std::thread::spawn(move || accept_loop_unix(listener, state2, stop2));
    Ok(ServerHandle {
        endpoint: Endpoint::Unix(path),
        state,
        stop,
        join: Some(join),
    })
}

/// Bind `addr` and serve a freshly published live session: returns the
/// handle and the feeder half. The session is visible under `name` from
/// the first accepted connection on.
pub fn spawn_live_tcp(
    addr: &str,
    opts: ServeOptions,
    name: &str,
    engine: QueryEngine,
) -> std::io::Result<(ServerHandle, LiveFeeder)> {
    let state = Arc::new(ServerState::new(opts));
    let feeder = state.publish_live(name, engine);
    let handle = spawn_tcp_with_state(addr, state)?;
    Ok((handle, feeder))
}

/// Unix-socket variant of [`spawn_live_tcp`].
#[cfg(unix)]
pub fn spawn_live_unix(
    path: impl Into<PathBuf>,
    opts: ServeOptions,
    name: &str,
    engine: QueryEngine,
) -> std::io::Result<(ServerHandle, LiveFeeder)> {
    let state = Arc::new(ServerState::new(opts));
    let feeder = state.publish_live(name, engine);
    let handle = spawn_unix_with_state(path, state)?;
    Ok((handle, feeder))
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Replies are single small writes; Nagle + delayed ACK would add
        // tens of ms of artificial latency to every one of them.
        let _ = stream.set_nodelay(true);
        let state = state.clone();
        std::thread::spawn(move || {
            let Ok(mut writer) = stream.try_clone() else {
                return;
            };
            let _ = serve_lines(&state, BufReader::new(stream), &mut writer);
        });
    }
}

#[cfg(unix)]
fn accept_loop_unix(
    listener: std::os::unix::net::UnixListener,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        std::thread::spawn(move || {
            let Ok(mut writer) = stream.try_clone() else {
                return;
            };
            let _ = serve_lines(&state, BufReader::new(stream), &mut writer);
        });
    }
}

/// Per-connection read-ahead window: how many requests may execute
/// concurrently before the reader stops pulling new lines.
pub const PIPELINE_DEPTH: usize = 8;

/// `true` when a wire line carries a `subscribe` request — `serve_lines`
/// must hand it to [`ServerState::serve_subscription`] (stream takeover)
/// instead of the one-line-one-reply path. Undecodable lines stay on the
/// normal path, which answers them with a typed error reply.
fn is_subscribe(line: &str) -> bool {
    matches!(
        ocelotl::format::decode_wire_request(line),
        Ok((_, _, AnalysisRequest::Subscribe { .. }))
    )
}

/// Reply sequencer: workers complete out of order, the wire emits in
/// request order (the protocol's i-th reply answers the i-th request).
struct OrderedWriter<'a> {
    next: usize,
    pending: BTreeMap<usize, String>,
    out: &'a mut (dyn Write + Send),
    err: Option<std::io::Error>,
}

impl OrderedWriter<'_> {
    fn complete(&mut self, seq: usize, reply: String) {
        self.pending.insert(seq, reply);
        while let Some(line) = self.pending.remove(&self.next) {
            if self.err.is_none() {
                let r = self
                    .out
                    .write_all(line.as_bytes())
                    .and_then(|()| self.out.write_all(b"\n"))
                    .and_then(|()| self.out.flush());
                if let Err(e) = r {
                    self.err = Some(e);
                }
            }
            self.next += 1;
        }
    }
}

/// The transport-agnostic request loop (TCP, Unix sockets and tests all
/// funnel through here), pipelined: up to [`PIPELINE_DEPTH`] request
/// lines execute concurrently, replies are written strictly in request
/// order. Blank lines are skipped, as before.
///
/// Request *effects* are not ordered within the window: two pipelined
/// requests may execute in either order (each wire request is
/// self-contained — it carries its own trace and config — so this is
/// observable only through server-side session state such as which
/// request pays a cold build).
pub fn serve_lines(
    state: &ServerState,
    reader: impl BufRead,
    writer: &mut (dyn Write + Send),
) -> std::io::Result<()> {
    let ordered = Mutex::new(OrderedWriter {
        next: 0,
        pending: BTreeMap::new(),
        out: writer,
        err: None,
    });
    let in_flight = Mutex::new(0usize);
    let drained = Condvar::new();
    let mut read_err = None;
    std::thread::scope(|scope| {
        let (ordered, in_flight, drained) = (&ordered, &in_flight, &drained);
        let mut seq = 0usize;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            if is_subscribe(&line) {
                // A subscription takes over the connection: drain every
                // pipelined request ahead of it so prior replies flush in
                // order, then stream refreshes until done/disconnect, and
                // hang up — subscribe is its connection's last request.
                {
                    let mut n = lock_clean(in_flight);
                    while *n > 0 {
                        n = wait_clean(drained, n);
                    }
                }
                let w = &mut *lock_clean(ordered);
                if w.err.is_none() {
                    if let Err(e) = state.serve_subscription(&line, &mut *w.out) {
                        w.err = Some(e);
                    }
                }
                break;
            }
            // Backpressure: bound the read-ahead window.
            {
                let mut n = lock_clean(in_flight);
                while *n >= PIPELINE_DEPTH {
                    n = wait_clean(drained, n);
                }
                *n += 1;
            }
            if lock_clean(ordered).err.is_some() {
                break; // the connection is gone; stop reading
            }
            let my_seq = seq;
            seq += 1;
            scope.spawn(move || {
                let reply = state.handle_line(&line);
                lock_clean(ordered).complete(my_seq, reply);
                *lock_clean(in_flight) -= 1;
                drained.notify_all();
            });
        }
        // Scope exit joins every in-flight worker, flushing all replies.
    });
    if let Some(e) = ordered
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .err
    {
        return Err(e);
    }
    if let Some(e) = read_err {
        return Err(e);
    }
    Ok(())
}

fn serve_options(args: &Args) -> Result<ServeOptions, CliError> {
    let config = session_config(args)?;
    let max_sessions = args.get_or("sessions", 8usize)?.max(1);
    Ok(ServeOptions {
        max_sessions,
        workers: args
            .get_or("workers", default_workers(max_sessions))?
            .max(1),
        cache: cache_dir(args)?,
        cache_keep: config.cache_keep,
    })
}

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help",
        "listen",
        "socket",
        "sessions",
        "workers",
        "cache",
        "no-cache",
        "cache-keep",
    ])?;
    let opts = serve_options(&args)?;

    if let Some(path) = args.get("socket")? {
        return serve_unix(path, opts, out);
    }
    let addr = args
        .get("listen")?
        .ok_or_else(|| CliError::Usage("serve needs --listen ADDR or --socket PATH".into()))?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::Invalid(format!("cannot bind {addr}: {e}")))?;
    let local = listener.local_addr()?;
    writeln!(
        out,
        "listening on {local} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    accept_loop(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

/// Serve on a Unix domain socket (Unix only).
#[cfg(unix)]
fn serve_unix(path: &str, opts: ServeOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| CliError::Invalid(format!("cannot bind {path}: {e}")))?;
    writeln!(
        out,
        "listening on {path} (query protocol v1, line-delimited JSON)"
    )?;
    out.flush()?;
    let state = Arc::new(ServerState::new(opts));
    accept_loop_unix(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

#[cfg(not(unix))]
fn serve_unix(_path: &str, _opts: ServeOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; use --listen ADDR".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;
    use ocelotl::core::query::AnalysisRequest;
    use ocelotl::core::{MemoryMode, SessionConfig};

    fn wire(trace: &std::path::Path, slices: usize, req: &AnalysisRequest) -> String {
        ocelotl::format::encode_wire_request(
            &trace.display().to_string(),
            &SessionConfig {
                n_slices: slices,
                ..SessionConfig::default()
            },
            req,
        )
    }

    #[test]
    fn handle_line_answers_and_pools() {
        let p = fixture_trace("serve-pool");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let first = state.handle_line(&wire(&p, 10, &req));
        let second = state.handle_line(&wire(&p, 10, &req));
        assert_eq!(first, second, "warm answer must be byte-identical");
        assert!(first.contains("\"reply\""), "{first}");
        assert_eq!(state.pooled_sessions(), 1, "same key shares one session");
        // Different slicing re-slices the SAME warm session in memory —
        // no second session, no re-ingest.
        let resliced = state.handle_line(&wire(&p, 20, &req));
        assert!(resliced.contains("\"n_slices\":20"), "{resliced}");
        assert_eq!(
            state.pooled_sessions(),
            1,
            "a --slices change must reuse the pooled session"
        );
        // …and switching back serves the parked pipeline byte-identically.
        assert_eq!(state.handle_line(&wire(&p, 10, &req)), first);
        assert_eq!(state.builds_started(), 1, "one cold build for all of it");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pool_is_lru_bounded() {
        let p = fixture_trace("serve-lru");
        let state = ServerState::new(ServeOptions {
            max_sessions: 2,
            ..ServeOptions::default()
        });
        let req = AnalysisRequest::Describe;
        // Slicing no longer keys the pool; metric × memory combinations do.
        for (metric, memory) in [
            (ocelotl::core::Metric::States, MemoryMode::Dense),
            (ocelotl::core::Metric::States, MemoryMode::Lazy),
            (ocelotl::core::Metric::Density, MemoryMode::Dense),
            (ocelotl::core::Metric::Density, MemoryMode::Lazy),
        ] {
            let config = SessionConfig {
                n_slices: 10,
                metric,
                memory,
                ..SessionConfig::default()
            };
            let line =
                ocelotl::format::encode_wire_request(&p.display().to_string(), &config, &req);
            state.handle_line(&line);
        }
        assert_eq!(state.pooled_sessions(), 2, "evicted down to the cap");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn evicted_session_drains_instead_of_dying_under_a_reader() {
        let p = fixture_trace("serve-drain");
        let state = ServerState::new(ServeOptions {
            max_sessions: 1,
            ..ServeOptions::default()
        });
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let config = SessionConfig {
            n_slices: 10,
            ..SessionConfig::default()
        };
        let line = ocelotl::format::encode_wire_request(&p.display().to_string(), &config, &req);
        let before = state.handle_line(&line);

        // Hold the slot the way an in-flight request would…
        let key = (
            std::fs::canonicalize(&p).unwrap(),
            config.metric.tag(),
            config.memory.tag(),
        );
        let slot = state.admit(&key, file_stamp(&key.0), config).unwrap();
        let guard = slot.engine.read().unwrap();

        // …then force an eviction (capacity 1, different memory mode).
        let other = SessionConfig {
            n_slices: 10,
            memory: MemoryMode::Lazy,
            ..SessionConfig::default()
        };
        state.handle_line(&ocelotl::format::encode_wire_request(
            &p.display().to_string(),
            &other,
            &req,
        ));
        assert_eq!(state.pooled_sessions(), 1, "old entry evicted");

        // The evicted slot still answers for its holder — and
        // byte-identically.
        let reply = guard
            .execute_shared(&AnalysisRequest::Aggregate {
                p: 0.4,
                coarse: false,
                compare: false,
                diff_p: None,
            })
            .expect("warm slot answers on the read path")
            .unwrap();
        let drained = ocelotl::format::encode_reply(&Ok(reply));
        assert_eq!(drained, before);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn racing_identical_cold_requests_coalesce_into_one_build() {
        let p = fixture_trace("serve-coalesce");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Aggregate {
            p: 0.4,
            coarse: false,
            compare: false,
            diff_p: None,
        };
        let line = wire(&p, 12, &req);
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| state.handle_line(&line)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &replies {
            assert_eq!(r, &replies[0], "coalesced replies are byte-identical");
            assert!(r.contains("\"reply\""), "{r}");
        }
        assert_eq!(state.builds_started(), 1, "M racing requests, one ingest");
        assert_eq!(state.pooled_sessions(), 1);
        assert_eq!(state.busy_rejections(), 0, "same-key races never go busy");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn over_budget_cold_requests_get_busy() {
        let p1 = fixture_trace("serve-busy-1");
        let p2 = fixture_trace("serve-busy-2");
        let state = ServerState::new(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        });
        // Occupy the single build permit directly (deterministic: no
        // timing dependence on how long a real build takes).
        let key1 = (
            std::fs::canonicalize(&p1).unwrap(),
            ocelotl::core::Metric::States.tag(),
            MemoryMode::Auto.tag(),
        );
        state.builds.lock().unwrap().insert(key1.clone());
        assert_eq!(state.builds_in_flight(), 1);

        // A *different* cold key beyond the budget is refused, typed.
        let reply = state.handle_line(&wire(&p2, 10, &AnalysisRequest::Describe));
        assert!(reply.contains("\"error\""), "{reply}");
        assert!(reply.contains("\"busy\""), "{reply}");
        assert_eq!(state.busy_rejections(), 1);
        assert_eq!(state.pooled_sessions(), 0, "busy requests build nothing");

        // Releasing the permit lets the same request through.
        state.builds.lock().unwrap().remove(&key1);
        state.builds_done.notify_all();
        let reply = state.handle_line(&wire(&p2, 10, &AnalysisRequest::Describe));
        assert!(reply.contains("\"reply\""), "{reply}");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn overwritten_trace_is_not_served_stale() {
        let p = fixture_trace("serve-stale");
        let state = ServerState::new(ServeOptions::default());
        let req = AnalysisRequest::Describe;
        let before = state.handle_line(&wire(&p, 10, &req));
        assert!(before.contains("\"n_leaves\":4"), "{before}");

        // Overwrite the trace with a different (larger) hierarchy; the
        // pooled session must be dropped, not answer from the old model.
        use ocelotl::prelude::*;
        let mut b = TraceBuilder::new(Hierarchy::balanced(&[2, 2, 2]));
        let run = b.state("Run");
        for leaf in 0..8u32 {
            b.push_state(LeafId(leaf), run, 0.0, 4.0);
        }
        ocelotl::format::write_trace(&b.build(), &p).unwrap();

        let after = state.handle_line(&wire(&p, 10, &req));
        assert!(after.contains("\"n_leaves\":8"), "stale reply: {after}");
        assert_eq!(state.pooled_sessions(), 1, "old session replaced");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_lines_produce_error_replies_not_crashes() {
        let state = ServerState::new(ServeOptions::default());
        for line in ["", "not json", "{\"v\":1}", "{\"v\":7,\"trace\":\"x\"}"] {
            let reply = state.handle_line(line);
            assert!(reply.contains("\"error\""), "{line:?} -> {reply}");
        }
        // Missing trace file is a source error.
        let req = AnalysisRequest::Describe;
        let reply = state.handle_line(&wire(std::path::Path::new("/no/such.btf"), 10, &req));
        assert!(reply.contains("\"source\""), "{reply}");
    }

    #[test]
    fn serve_lines_speaks_the_wire_protocol() {
        let p = fixture_trace("serve-lines");
        let state = ServerState::new(ServeOptions::default());
        let input = format!(
            "{}\n\n{}\n",
            wire(&p, 10, &AnalysisRequest::Describe),
            wire(&p, 10, &AnalysisRequest::PValues { resolution: 1e-2 }),
        );
        let mut out = Vec::new();
        serve_lines(&state, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped: {text}");
        for line in lines {
            assert!(ocelotl::format::decode_reply(line).unwrap().is_ok());
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pipelined_replies_come_back_in_request_order() {
        let p = fixture_trace("serve-pipeline");
        let state = ServerState::new(ServeOptions::default());
        // More requests than PIPELINE_DEPTH, with distinguishable
        // replies: p cycles through distinct values.
        let ps = [0.1, 0.3, 0.5, 0.7, 0.9];
        let mut input = String::new();
        for k in 0..20 {
            let req = AnalysisRequest::Aggregate {
                p: ps[k % ps.len()],
                coarse: false,
                compare: false,
                diff_p: None,
            };
            input.push_str(&wire(&p, 10, &req));
            input.push('\n');
        }
        let mut out = Vec::new();
        serve_lines(&state, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 20);
        for (k, line) in lines.iter().enumerate() {
            let expect = format!("\"p\":{}", ps[k % ps.len()]);
            assert!(
                line.contains(&expect),
                "reply {k} out of order: wanted {expect} in {line}"
            );
        }
        std::fs::remove_file(&p).ok();
    }

    // -- live sessions ------------------------------------------------------

    /// A small in-memory live engine: 2 leaves, 2 states, a dyadic grid
    /// over [0, 8) at 4096 hi-res periods, resolution `n_slices`.
    fn live_engine(n_slices: usize) -> QueryEngine {
        use ocelotl::core::{AnalysisSession, HiResModel, Metric};
        use ocelotl::trace::{Hierarchy, MicroModel, StateRegistry, TimeGrid};
        let raw = MicroModel::from_dense(
            Hierarchy::flat(2, "p"),
            StateRegistry::from_names(["A", "B"]),
            TimeGrid::new(0.0, 8.0, 4096),
            vec![0.0; 2 * 2 * 4096],
        );
        let config = SessionConfig {
            n_slices,
            ..SessionConfig::default()
        };
        let session = AnalysisSession::live(config, HiResModel::new(Metric::States, raw)).unwrap();
        QueryEngine::new(session)
    }

    fn wire_name(name: &str, slices: usize, req: &AnalysisRequest) -> String {
        ocelotl::format::encode_wire_request(
            name,
            &SessionConfig {
                n_slices: slices,
                ..SessionConfig::default()
            },
            req,
        )
    }

    fn subscribe_line(name: &str, slices: usize) -> String {
        wire_name(
            name,
            slices,
            &AnalysisRequest::Subscribe {
                inner: Box::new(AnalysisRequest::Describe),
            },
        )
    }

    /// Decode one reply line into the `WatchReply` it must carry.
    fn watch_of(line: &str) -> WatchReply {
        match ocelotl::format::decode_reply(line).unwrap().unwrap() {
            AnalysisReply::Watch(w) => w,
            other => panic!("expected a watch reply, got {other:?}"),
        }
    }

    #[test]
    fn live_sessions_answer_by_name_without_touching_disk() {
        use ocelotl::trace::{LeafId, StateId};
        let state = ServerState::new(ServeOptions::default());
        let feeder = state.publish_live("live", live_engine(4));
        assert_eq!(state.live_sessions(), 1);
        feeder
            .feed(&[
                (LeafId(0), StateId(0), 0.0, 2.0),
                (LeafId(1), StateId(1), 2.0, 4.0),
            ])
            .unwrap();

        // The name routes to the in-memory session even though no file
        // called `live` exists — and no pooled (disk) session appears.
        let reply = state.handle_line(&wire_name("live", 4, &AnalysisRequest::Describe));
        assert!(reply.contains("\"reply\""), "{reply}");
        assert!(reply.contains("\"n_leaves\":2"), "{reply}");
        assert_eq!(state.pooled_sessions(), 0, "live sessions never pool");
        assert_eq!(state.builds_started(), 0, "…and never ingest from disk");

        // A metric the live session does not serve is refused, typed.
        let line = ocelotl::format::encode_wire_request(
            "live",
            &SessionConfig {
                n_slices: 4,
                metric: ocelotl::core::Metric::Density,
                ..SessionConfig::default()
            },
            &AnalysisRequest::Describe,
        );
        let reply = ocelotl::format::decode_reply(&state.handle_line(&line)).unwrap();
        assert!(
            matches!(reply, Err(QueryError::InvalidRequest(_))),
            "{reply:?}"
        );

        // Pipelined subscribe (through the one-shot path) is a protocol
        // error: subscribe must take over its connection.
        let reply =
            ocelotl::format::decode_reply(&state.handle_line(&subscribe_line("live", 4))).unwrap();
        assert!(matches!(reply, Err(QueryError::Protocol(_))), "{reply:?}");
    }

    /// A `Write` sink that hands each completed line to a channel, so a
    /// test can lock-step a subscriber thread refresh by refresh.
    struct LineChannel {
        tx: std::sync::mpsc::Sender<String>,
        buf: Vec<u8>,
    }

    impl Write for LineChannel {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let line = std::mem::replace(&mut self.buf, rest);
                let line = String::from_utf8(line).expect("utf-8 reply line");
                self.tx
                    .send(line.trim_end().to_string())
                    .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))?;
            }
            Ok(())
        }
    }

    #[test]
    fn subscriptions_stream_refreshes_in_order_until_done() {
        use ocelotl::trace::{LeafId, StateId};
        let state = Arc::new(ServerState::new(ServeOptions::default()));
        let feeder = state.publish_live("live", live_engine(4));
        feeder.feed(&[(LeafId(0), StateId(0), 0.0, 2.0)]).unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let line = subscribe_line("live", 4);
        let st = state.clone();
        let sub = std::thread::spawn(move || {
            let mut out = LineChannel {
                tx,
                buf: Vec::new(),
            };
            st.serve_subscription(&line, &mut out).unwrap();
        });

        // Lock-step: one watch line per feeder generation, strictly
        // ordered, with the running event count.
        let first = watch_of(&rx.recv().unwrap());
        assert_eq!((first.seq, first.events, first.done), (1, 1, false));

        feeder.feed(&[(LeafId(1), StateId(1), 2.0, 4.0)]).unwrap();
        let second = watch_of(&rx.recv().unwrap());
        assert_eq!((second.seq, second.events, second.done), (2, 2, false));

        feeder.finish();
        let last = watch_of(&rx.recv().unwrap());
        assert_eq!((last.seq, last.events, last.done), (3, 2, true));

        sub.join().unwrap();
        assert!(rx.recv().is_err(), "the stream ends after the final line");
        assert_eq!(feeder.subscribers(), 0, "guard released on clean exit");
        assert_eq!(feeder.served(), 1);

        // A subscriber arriving after the end still gets exactly one
        // final (done) refresh at a generation it has not seen.
        let mut out = Vec::new();
        state
            .serve_subscription(&subscribe_line("live", 4), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "{text}");
        let late = watch_of(lines[0]);
        assert_eq!((late.seq, late.done), (3, true));
        assert_eq!(feeder.served(), 2);
    }

    #[test]
    fn subscriptions_reject_mismatched_pins_and_unknown_names() {
        let state = ServerState::new(ServeOptions::default());
        let feeder = state.publish_live("live", live_engine(4));

        let expect_err = |line: &str, check: fn(&QueryError) -> bool| {
            let mut out = Vec::new();
            state.serve_subscription(line, &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert_eq!(text.lines().count(), 1, "{text}");
            let reply = ocelotl::format::decode_reply(text.lines().next().unwrap()).unwrap();
            match reply {
                Err(e) if check(&e) => {}
                other => panic!("wrong refusal: {other:?}"),
            }
        };

        // No live session under that name.
        expect_err(&subscribe_line("nope", 4), |e| {
            matches!(e, QueryError::Unsupported(_))
        });
        // Resolution pin: the live session serves 4 slices, not 8.
        expect_err(&subscribe_line("live", 8), |e| {
            matches!(e, QueryError::InvalidRequest(_))
        });
        // Reslice cannot ride inside a subscription (it would thrash the
        // pinned resolution on every refresh).
        expect_err(
            &wire_name(
                "live",
                4,
                &AnalysisRequest::Subscribe {
                    inner: Box::new(AnalysisRequest::Reslice {
                        n_slices: 8,
                        range: None,
                    }),
                },
            ),
            |e| matches!(e, QueryError::InvalidRequest(_)),
        );
        // None of those refusals ever registered as a subscriber.
        assert_eq!(feeder.served(), 0);
        assert_eq!(feeder.subscribers(), 0);
    }

    #[test]
    fn live_tcp_server_streams_a_subscription_end_to_end() {
        use ocelotl::trace::{LeafId, StateId};
        use std::io::{BufRead, BufReader};
        let (handle, feeder) = spawn_live_tcp(
            "127.0.0.1:0",
            ServeOptions::default(),
            "live",
            live_engine(4),
        )
        .unwrap();
        feeder.feed(&[(LeafId(0), StateId(0), 0.0, 2.0)]).unwrap();
        feeder.feed(&[(LeafId(1), StateId(1), 2.0, 4.0)]).unwrap();
        feeder.finish();

        // A plain (non-subscribe) query answers one-shot over TCP.
        let mut conn = std::net::TcpStream::connect(handle.address()).unwrap();
        conn.write_all(wire_name("live", 4, &AnalysisRequest::Describe).as_bytes())
            .unwrap();
        conn.write_all(b"\n").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        BufReader::new(&conn).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"n_leaves\":2"), "{reply}");

        // A subscription on a fresh connection streams watch lines and
        // closes after the final one.
        let mut conn = std::net::TcpStream::connect(handle.address()).unwrap();
        conn.write_all(subscribe_line("live", 4).as_bytes())
            .unwrap();
        conn.write_all(b"\n").unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(&conn).lines() {
            lines.push(line.unwrap());
        }
        assert!(!lines.is_empty());
        let mut prev = 0;
        for (i, line) in lines.iter().enumerate() {
            let w = watch_of(line);
            assert!(w.seq > prev, "seq must strictly increase: {lines:?}");
            prev = w.seq;
            assert_eq!(w.done, i + 1 == lines.len(), "done only on the last line");
        }
        assert_eq!(watch_of(lines.last().unwrap()).events, 2);
        handle.stop();
    }
}
