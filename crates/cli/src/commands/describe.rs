//! `ocelotl describe <trace>` — run the preprocessing pipeline (trace
//! reading + microscopic description, the two expensive rows of the
//! paper's Table II) once and cache the result as an `.omm` file.
//!
//! Subsequent `aggregate` / `render` / `pvalues` / `inspect` / `report`
//! invocations accept the `.omm` directly and skip straight to the
//! aggregation stage — the paper's "50 min preprocess, then instantaneous
//! interaction" economy made durable across sessions.

use crate::args::Args;
use crate::helpers::{obtain_report, Metric};
use crate::CliError;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl describe <trace> [options]

Read a trace, reduce it to the microscopic model, and cache the model as
an .omm file. Analysis commands accept the .omm in place of the trace and
skip the (dominant) reading stage.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --out FILE       output path (default: <input>.omm)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "slices", "metric", "out"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    if crate::helpers::is_micro_cache(path) {
        return Err(CliError::Usage(
            "input is already a model cache (.omm); pass the trace file".into(),
        ));
    }
    let n_slices: usize = args.get_or("slices", 30)?;
    let metric: Metric = args.get_or("metric", Metric::States)?;

    // The two Table II stages are fused: the streaming reader prorates
    // events into the model as it parses, so peak memory is O(model) and
    // the trace is read once (twice for range-less headers).
    let t0 = Instant::now();
    let report = obtain_report(path, n_slices, metric)?;
    let ingest = t0.elapsed();
    let model = &report.model;

    let out_path = match args.get("out")? {
        Some(o) => std::path::PathBuf::from(o),
        None => path.with_extension("omm"),
    };
    ocelotl::format::save_micro(model, &out_path)?;
    let size = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);

    writeln!(
        out,
        "trace reading + microscopic description ({}): {:>10.3} ms ({} events, {} x {} x {} cells)",
        report.mode.tag(),
        ingest.as_secs_f64() * 1e3,
        report.events(),
        model.n_leaves(),
        model.n_slices(),
        model.n_states()
    )?;
    writeln!(out, "wrote {} ({size} bytes)", out_path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, obtain_model};

    #[test]
    fn describe_then_reload_matches_direct_build() {
        let p = fixture_trace("describe");
        let omm = p.with_extension("omm");
        let tokens: Vec<String> = format!("{} --slices 10 --out {}", p.display(), omm.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("trace reading"));

        // Reload through the generic path and compare against a direct build.
        let cached = obtain_model(&omm, 99, Metric::States).unwrap();
        let trace = crate::helpers::load_trace(&p).unwrap();
        let direct = crate::helpers::build_model(&trace, 10, Metric::States).unwrap();
        assert_eq!(cached.n_slices(), direct.n_slices());
        assert_eq!(cached.n_leaves(), direct.n_leaves());
        assert!((cached.grand_total() - direct.grand_total()).abs() < 1e-9);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&omm).ok();
    }
}
