//! `ocelotl describe <trace>` — run the preprocessing pipeline (trace
//! reading + microscopic description, the two expensive rows of the
//! paper's Table II) once and cache the result as an `.omm` file.
//!
//! Subsequent `aggregate` / `render` / `pvalues` / `inspect` / `report`
//! invocations accept the `.omm` directly and skip straight to the
//! aggregation stage — the paper's "50 min preprocess, then instantaneous
//! interaction" economy made durable across sessions.
//!
//! The printed summary is a `Describe` protocol reply; writing the `.omm`
//! itself is host-side work the command does through the engine's session.

use crate::args::Args;
use crate::helpers::{is_micro_cache, open_engine};
use crate::proto::write_describe;
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl describe <trace> [options]

Read a trace, reduce it to the microscopic model, and cache the model as
an .omm file. Analysis commands accept the .omm in place of the trace and
skip the (dominant) reading stage.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --out FILE       output path (default: <input>.omm)
    --json           print the Describe reply as protocol JSON (the same
                     bytes `ocelotl serve` answers for this request)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "slices", "metric", "out", "json"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    if is_micro_cache(path) {
        return Err(CliError::Usage(
            "input is already a model cache (.omm); pass the trace file".into(),
        ));
    }

    let mut engine = open_engine(&args, path)?;
    let reply = engine.execute(&AnalysisRequest::Describe)?;

    let out_path = match args.get("out")? {
        Some(o) => std::path::PathBuf::from(o),
        None => path.with_extension("omm"),
    };
    ocelotl::format::save_micro(engine.session_mut().model()?, &out_path)?;
    let size = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);

    if args.has("json") {
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }
    let AnalysisReply::Describe(d) = &reply else {
        unreachable!("describe request yields a describe reply");
    };
    write_describe(d, out)?;
    writeln!(out, "wrote {} ({size} bytes)", out_path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, obtain_model, Metric};

    #[test]
    fn describe_then_reload_matches_direct_build() {
        let p = fixture_trace("describe");
        let omm = p.with_extension("omm");
        let tokens: Vec<String> = format!("{} --slices 10 --out {}", p.display(), omm.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("model:"), "{text}");
        assert!(text.contains("wrote"), "{text}");

        // Reload through the generic path and compare against a direct build.
        let cached = obtain_model(&omm, 99, Metric::States).unwrap();
        let trace = crate::helpers::load_trace(&p).unwrap();
        let direct = crate::helpers::build_model(&trace, 10, Metric::States).unwrap();
        assert_eq!(cached.n_slices(), direct.n_slices());
        assert_eq!(cached.n_leaves(), direct.n_leaves());
        assert!((cached.grand_total() - direct.grand_total()).abs() < 1e-9);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&omm).ok();
    }

    #[test]
    fn json_reply_round_trips_and_still_writes_omm() {
        let p = fixture_trace("describe-json");
        let omm = p.with_extension("omm");
        let tokens: Vec<String> =
            format!("{} --slices 10 --out {} --json", p.display(), omm.display())
                .split_whitespace()
                .map(String::from)
                .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let reply = ocelotl::format::decode_reply(text.trim()).unwrap().unwrap();
        assert_eq!(reply.kind(), "describe");
        assert!(omm.exists(), ".omm written in --json mode too");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&omm).ok();
    }
}
