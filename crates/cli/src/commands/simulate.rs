//! `ocelotl simulate` — run an MPI workload simulation and write its trace.
//!
//! With `--live`, the simulation is also *served while it runs*: events
//! stream into an appendable in-memory session published on a query
//! server, so `ocelotl watch` clients see refreshed aggregations as the
//! run progresses — and the final refresh is byte-identical to a
//! post-mortem analysis of the written trace file.

use crate::args::Args;
use crate::commands::serve::{spawn_live_tcp, ServeOptions};
use crate::helpers::save_trace;
use crate::CliError;
use ocelotl::core::query::{QueryEngine, QueryError};
use ocelotl::core::{hi_res_slices, AnalysisSession, HiResModel, LiveEvent, SessionConfig};
use ocelotl::mpisim::apps::{cg, ep, ft, lu, mg};
use ocelotl::mpisim::{scenario, CaseId, Engine, Network, Nic, Op, Platform};
use ocelotl::trace::{LeafId, MicroBuilder, TimeGrid};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl simulate [options] --out FILE

Run a workload on the simulated platform and write the trace. Either a
Table II scenario (--case, with the paper's platform, calibrated event
counts and injected anomalies) or a standalone NPB kernel (--app) on a
uniform platform.

OPTIONS:
    --case C         Table II scenario: A | B | C | D
    --app K          kernel on a uniform platform: cg | lu | mg | ft | ep
    --machines N     machines of the uniform platform (default 4)
    --cores N        cores per machine (default 4)
    --scale F        iteration scale, 0 < F <= 1 (default 0.01; Table II only)
    --seed N         simulation seed (default 42)
    --out FILE       output trace (.btf / .ptf / .paje)

LIVE MODE (requires --case; trace output must be .btf):
    --live           aggregate while simulating: publish a live session on
                     a query server and stream refreshed replies to
                     `ocelotl watch` subscribers as the model grows
    --listen ADDR    TCP address the live server binds (e.g. 127.0.0.1:0)
    --socket PATH    Unix domain socket to bind instead of TCP
    --slices N       live session resolution (default 30); subscribers
                     must match it
    --name S         advertised live session name (default `live')
    --batch N        events folded per refresh (default 4096)
    --linger F       after the feed completes, keep serving for up to F
                     seconds (exits early once every subscriber that
                     connected has drained the final refresh)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help", "case", "app", "machines", "cores", "scale", "seed", "out", "live", "listen",
        "socket", "slices", "name", "batch", "linger",
    ])?;
    if args.has("live") {
        return run_live(&args, out);
    }
    for opt in ["listen", "socket", "slices", "name", "batch", "linger"] {
        if args.has(opt) {
            return Err(CliError::Usage(format!("--{opt} requires --live")));
        }
    }
    let out_path = args.require::<String>("out")?;
    let out_path = Path::new(&out_path);
    let seed: u64 = args.get_or("seed", 42)?;

    let trace = match (args.get("case")?, args.get("app")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--case and --app are mutually exclusive".into(),
            ))
        }
        (Some(case), None) => {
            let case = parse_case(case)?;
            let scale: f64 = args.get_or("scale", 0.01)?;
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(CliError::Usage(format!(
                    "--scale must lie in (0, 1], got {scale}"
                )));
            }
            let sc = scenario(case, scale);
            let (trace, stats) = sc.run(seed);
            writeln!(
                out,
                "case {} at scale {scale}: {} events, makespan {:.2} s",
                case.letter(),
                trace.event_count(),
                stats.makespan
            )?;
            trace
        }
        (None, Some(app)) => {
            let machines: usize = args.get_or("machines", 4)?;
            let cores: usize = args.get_or("cores", 4)?;
            if machines == 0 || cores == 0 {
                return Err(CliError::Usage(
                    "--machines/--cores must be positive".into(),
                ));
            }
            let platform = Platform::uniform(machines, cores, Nic::Infiniband20G);
            let network = Network::for_platform(&platform);
            let programs: Vec<Vec<Op>> = match app {
                "cg" => cg::build_programs(&platform, &cg::CgConfig::default().scaled(0.05)),
                "lu" => lu::build_programs(&platform, &lu::LuConfig::default().scaled(0.05)),
                "mg" => mg::build_programs(&platform, &mg::MgConfig::default()),
                "ft" => ft::build_programs(&platform, &ft::FtConfig::default()),
                "ep" => ep::build_programs(&platform, &ep::EpConfig::default()),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown app {other:?} (cg|lu|mg|ft|ep)"
                    )))
                }
            };
            let (trace, stats) =
                Engine::new(&platform, &network, seed).run(programs, &[("app", app.to_string())]);
            writeln!(
                out,
                "{app} on {machines}x{cores}: {} events, makespan {:.2} s",
                trace.event_count(),
                stats.makespan
            )?;
            trace
        }
        (None, None) => {
            return Err(CliError::Usage("need --case or --app".into()));
        }
    };

    save_trace(&trace, out_path)?;
    let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    writeln!(out, "wrote {} ({size} bytes)", out_path.display())?;
    Ok(())
}

/// `--live`: simulate, stream every event into a BTF file *and* an
/// appendable live session published on a query server, in two passes:
///
/// 1. a scan run (same seed — the engine is deterministic, so it emits
///    the identical event sequence) establishes the time extent, from
///    which the live hi-res grid is declared exactly as a post-mortem
///    ingest of the finished file would declare it;
/// 2. the streaming run tees each interval to the trace writer and to
///    `LiveFeeder::feed` in `--batch`-sized refreshes.
///
/// Because the grid, the fold kernel and the fold order all match the
/// post-mortem path, the final subscribed reply is byte-identical to
/// analyzing the written file after the fact.
fn run_live(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let case = parse_case(
        args.get("case")?
            .ok_or_else(|| CliError::Usage("--live needs --case (scenario mode)".into()))?,
    )?;
    if args.has("app") {
        return Err(CliError::Usage("--live supports --case only".into()));
    }
    let scale: f64 = args.get_or("scale", 0.01)?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(CliError::Usage(format!(
            "--scale must lie in (0, 1], got {scale}"
        )));
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let out_path = args.require::<String>("out")?;
    let out_path = Path::new(&out_path);
    if out_path.extension().and_then(|e| e.to_str()) != Some("btf") {
        return Err(CliError::Usage(
            "--live streams the trace as it runs, which needs a .btf output".into(),
        ));
    }
    let n_slices: usize = args.get_or("slices", 30)?;
    if n_slices < 1 {
        return Err(CliError::Usage("--slices must be at least 1".into()));
    }
    let batch: usize = args.get_or("batch", 4096usize)?.max(1);
    let linger: f64 = args.get_or("linger", 0.0f64)?;
    let name: String = args.get_or("name", "live".to_string())?;

    let sc = scenario(case, scale);

    // Pass 1: extent scan. Same seed, same engine, same event sequence —
    // only min/max times and the count are kept.
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut total = 0u64;
    sc.run_with_emit(seed, &mut |_rank, _sid, b, e| {
        t_min = t_min.min(b);
        t_max = t_max.max(e);
        total += 1;
    });
    if total == 0 || !t_min.is_finite() || !t_max.is_finite() || t_max <= t_min {
        return Err(CliError::Invalid(
            "simulation emitted no intervals to aggregate live".into(),
        ));
    }

    // Declare the live grid exactly as a post-mortem ingest of the
    // finished trace would: same extent, same hi-res period count.
    let (registry, _) = Engine::standard_states();
    let hierarchy = sc.platform.hierarchy();
    let h = hi_res_slices(n_slices, hierarchy.n_leaves(), registry.len());
    let grid = TimeGrid::new(t_min, t_max, h);
    let empty = MicroBuilder::new(hierarchy, registry, grid).finish();
    let config = SessionConfig {
        n_slices,
        ..SessionConfig::default()
    };
    let hi = HiResModel::new(config.metric, empty);
    let session = AnalysisSession::live(config, hi)?;
    let engine = QueryEngine::new(session);

    let (handle, feeder) = match (args.get("listen")?, args.get("socket")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--listen and --socket are mutually exclusive".into(),
            ))
        }
        (Some(addr), None) => spawn_live_tcp(addr, ServeOptions::default(), &name, engine)?,
        (None, Some(path)) => {
            #[cfg(unix)]
            {
                crate::commands::serve::spawn_live_unix(
                    path,
                    ServeOptions::default(),
                    &name,
                    engine,
                )?
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(CliError::Usage(
                    "--socket needs Unix domain sockets; use --listen ADDR".into(),
                ));
            }
        }
        (None, None) => {
            return Err(CliError::Usage(
                "--live needs --listen ADDR or --socket PATH".into(),
            ))
        }
    };
    writeln!(
        out,
        "live session {name:?} at {} ({total} events over [{t_min:.6}, {t_max:.6}] s, \
         {h} hi-res periods, {n_slices} slices)",
        handle.address()
    )?;
    out.flush()?;

    // Pass 2: the streaming run. Each interval goes to the BTF writer
    // (so the trace on disk is the live stream, byte for byte) and into
    // the feeder in `batch`-sized refreshes.
    let (registry, _) = Engine::standard_states();
    let hierarchy = sc.platform.hierarchy();
    let metadata: Vec<(String, String)> = vec![
        ("case".into(), case.letter().to_string()),
        ("site".into(), sc.platform.site.clone()),
        ("processes".into(), sc.platform.n_ranks.to_string()),
        ("scale".into(), format!("{scale}")),
    ];
    let mut writer =
        ocelotl::format::BtfStreamWriter::create(out_path, &hierarchy, &registry, &metadata)?;
    let mut io_error: Option<ocelotl::format::FormatError> = None;
    let mut feed_error: Option<QueryError> = None;
    let mut buf: Vec<LiveEvent> = Vec::with_capacity(batch);
    let stats = sc.run_with_emit(seed, &mut |rank, sid, b, e| {
        if io_error.is_none() {
            if let Err(err) = writer.write_interval(LeafId(rank), sid, b, e) {
                io_error = Some(err);
            }
        }
        if feed_error.is_none() {
            buf.push((LeafId(rank), sid, b, e));
            if buf.len() >= batch {
                if let Err(err) = feeder.feed(&buf) {
                    feed_error = Some(err);
                }
                buf.clear();
            }
        }
    });
    if feed_error.is_none() && !buf.is_empty() {
        if let Err(err) = feeder.feed(&buf) {
            feed_error = Some(err);
        }
    }
    feeder.finish();
    if let Some(err) = io_error {
        return Err(err.into());
    }
    writer.finish(&[])?;
    if let Some(err) = feed_error {
        return Err(CliError::Invalid(format!("live feed failed: {err}")));
    }
    let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "fed {} events in {} refreshes, makespan {:.2} s",
        feeder.events(),
        feeder.events().div_ceil(batch as u64),
        stats.makespan
    )?;
    writeln!(out, "wrote {} ({size} bytes)", out_path.display())?;
    out.flush()?;

    // Stay up so subscribers can drain the final refresh: exit as soon as
    // every subscription that ever started has ended, or when the linger
    // window (plus a grace period for stragglers) runs out.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(linger.max(0.0));
    loop {
        let now = std::time::Instant::now();
        let drained = feeder.subscribers() == 0;
        if drained && (feeder.served() > 0 || now >= deadline) {
            break;
        }
        if now >= deadline + std::time::Duration::from_secs(10) {
            break; // wedged subscriber: don't hold the process hostage
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    handle.stop();
    Ok(())
}

fn parse_case(s: &str) -> Result<CaseId, CliError> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(CaseId::A),
        "B" => Ok(CaseId::B),
        "C" => Ok(CaseId::C),
        "D" => Ok(CaseId::D),
        other => Err(CliError::Usage(format!("unknown case {other:?} (A|B|C|D)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::load_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ocelotl-sim-{}-{name}", std::process::id()))
    }

    #[test]
    fn simulates_case_a() {
        let p = tmp("case-a.btf");
        let text = run_ok(format!("--case A --scale 0.005 --out {}", p.display()));
        assert!(text.contains("case A"));
        let trace = load_trace(&p).unwrap();
        assert!(trace.event_count() > 1000);
        assert_eq!(trace.meta("case"), Some("A"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn simulates_standalone_ep() {
        let p = tmp("ep.ptf");
        let text = run_ok(format!(
            "--app ep --machines 2 --cores 2 --out {}",
            p.display()
        ));
        assert!(text.contains("ep on 2x2"));
        let trace = load_trace(&p).unwrap();
        assert_eq!(trace.meta("app"), Some("ep"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn case_and_app_conflict() {
        let tokens: Vec<String> = "--case A --app ep --out x.btf"
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    #[cfg(unix)]
    fn live_final_refresh_matches_the_post_mortem_analysis() {
        use crate::commands::serve::{ServeOptions, ServerState};
        use ocelotl::core::query::AnalysisRequest;
        use ocelotl::core::SessionConfig;

        let btf = tmp("live-parity.btf");
        let sock = tmp("live-parity.sock");
        std::fs::remove_file(&sock).ok();

        // The publisher: simulate case A live on a Unix socket. It blocks
        // until every subscriber drained (or the linger window runs out),
        // so it runs on its own thread.
        let line = format!(
            "--case A --scale 0.002 --seed 7 --live --socket {} --out {} \
             --slices 10 --batch 512 --linger 30",
            sock.display(),
            btf.display()
        );
        let sim = std::thread::spawn(move || run_ok(line));

        // Subscribe as soon as the server is up, and keep only the final
        // refresh, bare-encoded.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while std::os::unix::net::UnixStream::connect(&sock).is_err() {
            assert!(
                std::time::Instant::now() < deadline,
                "live server never came up"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let tokens: Vec<String> = format!(
            "unix:{} live aggregate --p 0.5 --slices 10 --last --json",
            sock.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let mut watched = Vec::new();
        crate::commands::watch::run(&tokens, &mut watched).unwrap();
        let watched = String::from_utf8(watched).unwrap();

        let sim_out = sim.join().unwrap();
        assert!(sim_out.contains("live session \"live\""), "{sim_out}");
        assert!(sim_out.contains("fed "), "{sim_out}");

        // Post-mortem: the same request against the trace the live run
        // wrote, through the ordinary disk-backed serve path. Same grid
        // declaration, same fold kernel, same fold order — so the final
        // subscribed reply must be byte-identical.
        let state = ServerState::new(ServeOptions::default());
        let post = state.handle_line(&ocelotl::format::encode_wire_request(
            &btf.display().to_string(),
            &SessionConfig {
                n_slices: 10,
                ..SessionConfig::default()
            },
            &AnalysisRequest::Aggregate {
                p: 0.5,
                coarse: false,
                compare: false,
                diff_p: None,
            },
        ));
        assert!(post.contains("\"reply\""), "{post}");
        assert_eq!(watched.trim_end(), post, "live != post-mortem");

        std::fs::remove_file(&btf).ok();
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn live_only_options_require_live() {
        for line in [
            "--case A --out x.btf --listen 127.0.0.1:0",
            "--case A --out x.btf --batch 64",
        ] {
            let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let mut out = Vec::new();
            assert!(
                matches!(run(&tokens, &mut out), Err(CliError::Usage(_))),
                "{line}"
            );
        }
        // --live itself insists on a scenario, a .btf sink and a listener.
        for line in [
            "--live --app ep --out x.btf --listen 127.0.0.1:0",
            "--live --case A --out x.paje --listen 127.0.0.1:0",
            "--live --case A --out x.btf",
        ] {
            let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let mut out = Vec::new();
            assert!(
                matches!(run(&tokens, &mut out), Err(CliError::Usage(_))),
                "{line}"
            );
        }
    }

    #[test]
    fn bad_case_and_bad_scale_rejected() {
        for line in ["--case Z --out x.btf", "--case A --scale 2 --out x.btf"] {
            let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let mut out = Vec::new();
            assert!(
                matches!(run(&tokens, &mut out), Err(CliError::Usage(_))),
                "{line}"
            );
        }
    }
}
