//! `ocelotl simulate` — run an MPI workload simulation and write its trace.

use crate::args::Args;
use crate::helpers::save_trace;
use crate::CliError;
use ocelotl::mpisim::apps::{cg, ep, ft, lu, mg};
use ocelotl::mpisim::{scenario, CaseId, Engine, Network, Nic, Op, Platform};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl simulate [options] --out FILE

Run a workload on the simulated platform and write the trace. Either a
Table II scenario (--case, with the paper's platform, calibrated event
counts and injected anomalies) or a standalone NPB kernel (--app) on a
uniform platform.

OPTIONS:
    --case C         Table II scenario: A | B | C | D
    --app K          kernel on a uniform platform: cg | lu | mg | ft | ep
    --machines N     machines of the uniform platform (default 4)
    --cores N        cores per machine (default 4)
    --scale F        iteration scale, 0 < F <= 1 (default 0.01; Table II only)
    --seed N         simulation seed (default 42)
    --out FILE       output trace (.btf / .ptf / .paje)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help", "case", "app", "machines", "cores", "scale", "seed", "out",
    ])?;
    let out_path = args.require::<String>("out")?;
    let out_path = Path::new(&out_path);
    let seed: u64 = args.get_or("seed", 42)?;

    let trace = match (args.get("case")?, args.get("app")?) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--case and --app are mutually exclusive".into(),
            ))
        }
        (Some(case), None) => {
            let case = parse_case(case)?;
            let scale: f64 = args.get_or("scale", 0.01)?;
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(CliError::Usage(format!(
                    "--scale must lie in (0, 1], got {scale}"
                )));
            }
            let sc = scenario(case, scale);
            let (trace, stats) = sc.run(seed);
            writeln!(
                out,
                "case {} at scale {scale}: {} events, makespan {:.2} s",
                case.letter(),
                trace.event_count(),
                stats.makespan
            )?;
            trace
        }
        (None, Some(app)) => {
            let machines: usize = args.get_or("machines", 4)?;
            let cores: usize = args.get_or("cores", 4)?;
            if machines == 0 || cores == 0 {
                return Err(CliError::Usage(
                    "--machines/--cores must be positive".into(),
                ));
            }
            let platform = Platform::uniform(machines, cores, Nic::Infiniband20G);
            let network = Network::for_platform(&platform);
            let programs: Vec<Vec<Op>> = match app {
                "cg" => cg::build_programs(&platform, &cg::CgConfig::default().scaled(0.05)),
                "lu" => lu::build_programs(&platform, &lu::LuConfig::default().scaled(0.05)),
                "mg" => mg::build_programs(&platform, &mg::MgConfig::default()),
                "ft" => ft::build_programs(&platform, &ft::FtConfig::default()),
                "ep" => ep::build_programs(&platform, &ep::EpConfig::default()),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown app {other:?} (cg|lu|mg|ft|ep)"
                    )))
                }
            };
            let (trace, stats) =
                Engine::new(&platform, &network, seed).run(programs, &[("app", app.to_string())]);
            writeln!(
                out,
                "{app} on {machines}x{cores}: {} events, makespan {:.2} s",
                trace.event_count(),
                stats.makespan
            )?;
            trace
        }
        (None, None) => {
            return Err(CliError::Usage("need --case or --app".into()));
        }
    };

    save_trace(&trace, out_path)?;
    let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    writeln!(out, "wrote {} ({size} bytes)", out_path.display())?;
    Ok(())
}

fn parse_case(s: &str) -> Result<CaseId, CliError> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(CaseId::A),
        "B" => Ok(CaseId::B),
        "C" => Ok(CaseId::C),
        "D" => Ok(CaseId::D),
        other => Err(CliError::Usage(format!("unknown case {other:?} (A|B|C|D)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::load_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ocelotl-sim-{}-{name}", std::process::id()))
    }

    #[test]
    fn simulates_case_a() {
        let p = tmp("case-a.btf");
        let text = run_ok(format!("--case A --scale 0.005 --out {}", p.display()));
        assert!(text.contains("case A"));
        let trace = load_trace(&p).unwrap();
        assert!(trace.event_count() > 1000);
        assert_eq!(trace.meta("case"), Some("A"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn simulates_standalone_ep() {
        let p = tmp("ep.ptf");
        let text = run_ok(format!(
            "--app ep --machines 2 --cores 2 --out {}",
            p.display()
        ));
        assert!(text.contains("ep on 2x2"));
        let trace = load_trace(&p).unwrap();
        assert_eq!(trace.meta("app"), Some("ep"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn case_and_app_conflict() {
        let tokens: Vec<String> = "--case A --app ep --out x.btf"
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_case_and_bad_scale_rejected() {
        for line in ["--case Z --out x.btf", "--case A --scale 2 --out x.btf"] {
            let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let mut out = Vec::new();
            assert!(
                matches!(run(&tokens, &mut out), Err(CliError::Usage(_))),
                "{line}"
            );
        }
    }
}
