//! `ocelotl convert <in> <out>` — convert between trace formats.

use crate::args::Args;
use crate::helpers::{load_trace, save_trace};
use crate::CliError;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl convert <input> <output> [--chunk-records N]

Convert a trace between formats; the target format is chosen from the
output extension: .btf (binary), .ptf (text), .paje/.trace (Paje, for the
paper's tool family: Paje / ViTE / Ocelotl), .octf (chunk-indexed
columnar — windowed ingests skip non-overlapping chunks).

  --chunk-records N   records per columnar chunk (default 65536; .octf
                      outputs only)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "chunk-records"])?;
    let src = Path::new(args.positional(0, "input trace")?);
    let dst = Path::new(args.positional(1, "output trace")?);
    if src == dst {
        return Err(CliError::Usage("input and output are the same file".into()));
    }
    let chunk_records: Option<u64> = match args.get("chunk-records")? {
        None => None,
        Some(s) => Some(s.parse::<u64>().map_err(|_| {
            CliError::Usage(format!(
                "--chunk-records expects a positive integer, got {s:?}"
            ))
        })?),
    };
    let is_octf = matches!(dst.extension().and_then(|e| e.to_str()), Some("octf"));
    if chunk_records.is_some() && !is_octf {
        return Err(CliError::Usage(
            "--chunk-records applies to .octf outputs only".into(),
        ));
    }
    if chunk_records == Some(0) {
        return Err(CliError::Usage("--chunk-records must be at least 1".into()));
    }
    let trace = load_trace(src)?;
    match chunk_records {
        Some(n) => {
            let mut w =
                std::io::BufWriter::new(std::fs::File::create(dst).map_err(|e| {
                    CliError::Invalid(format!("cannot create {}: {e}", dst.display()))
                })?);
            ocelotl::format::write_columnar_chunked(&trace, &mut w, n as usize)?;
            w.flush()?;
        }
        None => save_trace(&trace, dst)?,
    }
    let size = std::fs::metadata(dst).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "converted {} -> {} ({} events, {size} bytes)",
        src.display(),
        dst.display(),
        trace.event_count()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, load_trace};

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn btf_to_paje_and_back_preserves_intervals() {
        let src = fixture_trace("convert");
        let paje = src.with_extension("paje");
        let back = src.with_extension("roundtrip.btf");
        run_ok(format!("{} {}", src.display(), paje.display()));
        run_ok(format!("{} {}", paje.display(), back.display()));
        let a = load_trace(&src).unwrap();
        let b = load_trace(&back).unwrap();
        assert_eq!(a.intervals.len(), b.intervals.len());
        for p in [&src, &paje, &back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn octf_round_trip_is_byte_identical() {
        let src = fixture_trace("convert-octf");
        let octf = src.with_extension("octf");
        let octf2 = src.with_extension("again.octf");
        run_ok(format!("{} {}", src.display(), octf.display()));
        // .octf -> trace -> .octf again: the re-encode must reproduce the
        // file byte for byte.
        run_ok(format!("{} {}", octf.display(), octf2.display()));
        let a = std::fs::read(&octf).unwrap();
        let b = std::fs::read(&octf2).unwrap();
        assert_eq!(a, b, "octf re-encode must be byte-identical");
        let t0 = load_trace(&src).unwrap();
        let t1 = load_trace(&octf).unwrap();
        assert_eq!(t0.intervals.len(), t1.intervals.len());
        assert_eq!(t0.points.len(), t1.points.len());
        for p in [&src, &octf, &octf2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn chunk_records_controls_the_index() {
        let src = fixture_trace("convert-chunked");
        let octf = src.with_extension("octf");
        run_ok(format!(
            "--chunk-records 2 {} {}",
            src.display(),
            octf.display()
        ));
        let plan = ocelotl::format::plan_columnar(&octf).unwrap();
        assert!(
            plan.chunks.len() > 1,
            "2-record chunks must split this trace (got {} chunks)",
            plan.chunks.len()
        );
        let t0 = load_trace(&src).unwrap();
        let t1 = load_trace(&octf).unwrap();
        assert_eq!(t0.intervals.len(), t1.intervals.len());
        for p in [&src, &octf] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn chunk_records_rejected_for_non_octf() {
        let tokens: Vec<String> = vec![
            "--chunk-records".into(),
            "8".into(),
            "a.btf".into(),
            "b.ptf".into(),
        ];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn same_path_rejected() {
        let tokens: Vec<String> = vec!["a.btf".into(), "a.btf".into()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_output_is_usage_error() {
        let tokens: Vec<String> = vec!["a.btf".into()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
