//! `ocelotl convert <in> <out>` — convert between trace formats.

use crate::args::Args;
use crate::helpers::{load_trace, save_trace};
use crate::CliError;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl convert <input> <output>

Convert a trace between formats; the target format is chosen from the
output extension: .btf (binary), .ptf (text), .paje/.trace (Paje, for the
paper's tool family: Paje / ViTE / Ocelotl).
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help"])?;
    let src = Path::new(args.positional(0, "input trace")?);
    let dst = Path::new(args.positional(1, "output trace")?);
    if src == dst {
        return Err(CliError::Usage("input and output are the same file".into()));
    }
    let trace = load_trace(src)?;
    save_trace(&trace, dst)?;
    let size = std::fs::metadata(dst).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "converted {} -> {} ({} events, {size} bytes)",
        src.display(),
        dst.display(),
        trace.event_count()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, load_trace};

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn btf_to_paje_and_back_preserves_intervals() {
        let src = fixture_trace("convert");
        let paje = src.with_extension("paje");
        let back = src.with_extension("roundtrip.btf");
        run_ok(format!("{} {}", src.display(), paje.display()));
        run_ok(format!("{} {}", paje.display(), back.display()));
        let a = load_trace(&src).unwrap();
        let b = load_trace(&back).unwrap();
        assert_eq!(a.intervals.len(), b.intervals.len());
        for p in [&src, &paje, &back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn same_path_rejected() {
        let tokens: Vec<String> = vec!["a.btf".into(), "a.btf".into()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_output_is_usage_error() {
        let tokens: Vec<String> = vec!["a.btf".into()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
