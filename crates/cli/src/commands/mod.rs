//! One module per subcommand. Every command is
//! `run(tokens, &mut dyn Write) -> Result<(), CliError>` so the whole CLI
//! surface is testable in-process. Analysis commands are thin clients of
//! the query protocol (`ocelotl::core::query`); `serve` hosts it, `query`
//! speaks it over a socket.

pub mod aggregate;
pub mod convert;
pub mod describe;
pub mod info;
pub mod inspect;
pub mod pvalues;
pub mod query;
pub mod render;
pub mod report;
pub mod serve;
pub mod simulate;
pub mod sweep;
pub mod watch;
