//! One module per subcommand. Every command is
//! `run(tokens, &mut dyn Write) -> Result<(), CliError>` so the whole CLI
//! surface is testable in-process.

pub mod aggregate;
pub mod convert;
pub mod describe;
pub mod info;
pub mod inspect;
pub mod pvalues;
pub mod render;
pub mod report;
pub mod simulate;
pub mod sweep;
