//! `ocelotl inspect <trace>` — detail one aggregate of the optimal
//! partition (the paper's §VI interaction: retrieve the data behind a
//! rectangle of the overview). Served from the shared `AnalysisSession`,
//! so a warm run answers without ever reading the trace.

use crate::args::Args;
use crate::helpers::{open_session, SESSION_OPTS};
use crate::CliError;
use ocelotl::core::{area_at, inspect_area, QualityCube as _};
use ocelotl::trace::LeafId;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl inspect <trace|model.omm> --leaf N --slice K [options]

Find the aggregate of the optimal partition covering microscopic cell
(leaf N, slice K) and print its aggregated state proportions, mode and
information measures.

OPTIONS:
    --leaf N         leaf resource index (required)
    --slice K        time slice index (required)
    --slices N       time slices of the microscopic model (default 30)
    --p F            trade-off parameter in [0, 1] (default 0.5)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --coarse         prefer the coarsest partition among pIC ties
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "leaf", "slice", "p", "coarse"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let leaf: usize = args.require("leaf")?;
    let slice: usize = args.require("slice")?;
    let p: f64 = args.get_or("p", 0.5)?;

    let mut session = open_session(&args, path)?;
    // Validate the cell against the cube's shape before paying for the
    // DP: an out-of-range --leaf/--slice must fail fast.
    {
        let cube = session.cube()?;
        if leaf >= cube.hierarchy().n_leaves() {
            return Err(CliError::Invalid(format!(
                "leaf {leaf} out of range (trace has {})",
                cube.hierarchy().n_leaves()
            )));
        }
        if slice >= cube.n_slices() {
            return Err(CliError::Invalid(format!(
                "slice {slice} out of range (model has {})",
                cube.n_slices()
            )));
        }
    }
    let partition = session.partition_at(p, args.has("coarse"))?;
    let grid = session.grid()?;
    let cube = session.cube()?;
    let area = area_at(&partition, cube, LeafId(leaf as u32), slice)
        .ok_or_else(|| CliError::Invalid("cell not covered (internal error)".into()))?;
    let report = inspect_area(cube, &area);

    let (t0, t1) = (
        grid.slice_bounds(area.first_slice).0,
        grid.slice_bounds(area.last_slice).1,
    );
    writeln!(out, "aggregate covering (leaf {leaf}, slice {slice}):")?;
    writeln!(out, "  node:        {}", report.path)?;
    writeln!(
        out,
        "  interval:    slices [{}, {}] = [{t0:.4}, {t1:.4}] s",
        area.first_slice, area.last_slice
    )?;
    writeln!(
        out,
        "  size:        {} resources x {} slices",
        report.n_resources, report.n_slices
    )?;
    match &report.mode {
        Some(m) => writeln!(
            out,
            "  mode:        {m} (confidence {:.3})",
            report.confidence
        )?,
        None => writeln!(out, "  mode:        (idle)")?,
    }
    writeln!(
        out,
        "  measures:    loss {:.6} bits, gain {:.6} bits",
        report.loss, report.gain
    )?;
    writeln!(out, "  state proportions (Eq. 1):")?;
    for (name, rho) in &report.proportions {
        if *rho > 0.0 {
            writeln!(out, "    {rho:>8.4}  {name}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn inspects_the_anomalous_cell() {
        let p = fixture_trace("inspect");
        // Leaf 3 waits during slices 4..7 of the 10-slice fixture.
        let text = run_ok(format!(
            "{} --slices 10 --leaf 3 --slice 5 --p 0.3",
            p.display()
        ));
        assert!(text.contains("mode:"));
        assert!(text.contains("MPI_Wait"), "expected wait mode:\n{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let p = fixture_trace("inspect-range");
        let tokens: Vec<String> = format!("{} --slices 10 --leaf 99 --slice 0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn leaf_and_slice_are_required() {
        let p = fixture_trace("inspect-req");
        let tokens: Vec<String> = format!("{}", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }
}
