//! `ocelotl inspect <trace>` — detail one aggregate of the optimal
//! partition (the paper's §VI interaction: retrieve the data behind a
//! rectangle of the overview). A thin client of the query protocol: one
//! `Inspect` request, one printed reply.

use crate::args::Args;
use crate::helpers::{open_engine, SESSION_OPTS};
use crate::proto::{print_reply, request_from_args};
use crate::CliError;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl inspect <trace|model.omm> --leaf N --slice K [options]

Find the aggregate of the optimal partition covering microscopic cell
(leaf N, slice K) and print its aggregated state proportions, mode and
information measures.

OPTIONS:
    --leaf N         leaf resource index (required)
    --slice K        time slice index (required)
    --slices N       time slices of the microscopic model (default 30)
    --p F            trade-off parameter in [0, 1] (default 0.5)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC (default 4)
    --coarse         prefer the coarsest partition among pIC ties
    --json           print the reply as protocol JSON instead of text
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "leaf", "slice", "p", "coarse"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let request = request_from_args("inspect", &args)?;

    let mut engine = open_engine(&args, path)?;
    // Out-of-range cells are InvalidRequest like any bad parameter (exit
    // 2) — the same code the `ocelotl query` client produces for the
    // identical protocol error.
    let reply = engine.execute(&request)?;
    if args.has("json") {
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }
    print_reply(&reply, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn inspects_the_anomalous_cell() {
        let p = fixture_trace("inspect");
        // Leaf 3 waits during slices 4..7 of the 10-slice fixture.
        let text = run_ok(format!(
            "{} --slices 10 --leaf 3 --slice 5 --p 0.3",
            p.display()
        ));
        assert!(text.contains("mode:"));
        assert!(text.contains("MPI_Wait"), "expected wait mode:\n{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let p = fixture_trace("inspect-range");
        let tokens: Vec<String> = format!("{} --slices 10 --leaf 99 --slice 0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        // Usage error (exit 2), identical to the remote `ocelotl query`
        // exit semantics for the same protocol error.
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn leaf_and_slice_are_required() {
        let p = fixture_trace("inspect-req");
        let tokens: Vec<String> = format!("{}", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }
}
