//! `ocelotl report <trace>` — self-contained HTML analysis report,
//! generated purely from protocol replies: one `Describe`, one
//! `Significant`, and one `RenderOverview` per displayed level. A warm
//! `.opart` serves the level table with zero DP runs; the rendered levels
//! re-use memoized partitions once their `p` has been queried.

use crate::args::Args;
use crate::helpers::{open_engine, SESSION_OPTS};
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest, OverviewReply};
use ocelotl::viz::{html_report_from_replies, pick_level_indices, ReportOptions};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl report <trace|model.omm> [options]

Write a self-contained HTML report: the quality curve over the significant
aggregation levels plus embedded overviews at representative strengths.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC (default 4)
    --out FILE       output path (default: <input>.report.html)
    --levels N       overviews embedded in the report (default 4)
    --title S        report title (default: input file name)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "out", "levels", "title"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    if args.has("json") {
        return Err(CliError::Usage(
            "report writes an HTML document; there is no --json reply form \
             (query the underlying kinds — describe, significant, \
             render-overview — individually)"
                .into(),
        ));
    }
    let path = Path::new(args.positional(0, "trace file")?);
    let levels: usize = args.get_or("levels", 4)?;
    let title = match args.get("title")? {
        Some(t) => t.to_string(),
        None => path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into()),
    };

    let mut engine = open_engine(&args, path)?;
    let opts = ReportOptions {
        title,
        rendered_levels: levels,
        ..ReportOptions::default()
    };

    let AnalysisReply::Describe(describe) = engine.execute(&AnalysisRequest::Describe)? else {
        unreachable!()
    };
    let AnalysisReply::Significant(significant) =
        engine.execute(&AnalysisRequest::Significant {
            resolution: opts.p_resolution,
        })?
    else {
        unreachable!()
    };

    // One RenderOverview per displayed level, at the midpoint of its
    // stability interval; `level_resolution` makes the engine reuse the
    // level's stored partition, so rendering adds zero DP runs.
    let min_rows = 2.0 / (opts.height / describe.shape.n_leaves as f64);
    let mut overviews: Vec<OverviewReply> = Vec::new();
    for idx in pick_level_indices(significant.levels.len(), opts.rendered_levels) {
        let l = &significant.levels[idx];
        let p = 0.5 * (l.p_low + l.p_high);
        let AnalysisReply::Overview(ov) = engine.execute(&AnalysisRequest::RenderOverview {
            p,
            coarse: false,
            min_rows,
            level_resolution: Some(opts.p_resolution),
        })?
        else {
            unreachable!()
        };
        overviews.push(ov);
    }

    let opts = ReportOptions {
        time_range: Some((describe.shape.t_start, describe.shape.t_end)),
        ..opts
    };
    let html = html_report_from_replies(&describe, &significant, &overviews, &opts);
    let out_path = match args.get("out")? {
        Some(o) => std::path::PathBuf::from(o),
        None => path.with_extension("report.html"),
    };
    std::fs::write(&out_path, html)?;
    writeln!(out, "wrote {}", out_path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    #[test]
    fn writes_html_report() {
        let p = fixture_trace("report");
        let html = p.with_extension("html");
        let tokens: Vec<String> = format!(
            "{} --slices 10 --out {} --levels 2",
            p.display(),
            html.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let content = std::fs::read_to_string(&html).unwrap();
        assert!(content.contains("<html") || content.contains("<!DOCTYPE"));
        assert!(content.contains("Significant levels"));
        assert!(content.matches("<svg").count() >= 2, "curve + overviews");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&html).ok();
    }

    #[test]
    fn warm_report_is_byte_identical_to_cold() {
        let p = fixture_trace("report-warm");
        let html = p.with_extension("html");
        let cache =
            std::env::temp_dir().join(format!("ocelotl-report-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let tokens: Vec<String> = format!(
            "{} --slices 10 --out {} --levels 2 --cache {}",
            p.display(),
            html.display(),
            cache.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let cold = std::fs::read_to_string(&html).unwrap();
        run(&tokens, &mut out).unwrap();
        let warm = std::fs::read_to_string(&html).unwrap();
        assert_eq!(cold, warm, "cached levels must render identically");
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&html).ok();
    }
}
