//! `ocelotl report <trace>` — self-contained HTML analysis report.

use crate::args::Args;
use crate::helpers::{build_cube, obtain_model, Metric};
use crate::CliError;
use ocelotl::core::MemoryMode;
use ocelotl::viz::{html_report, ReportOptions};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl report <trace|model.omm> [options]

Write a self-contained HTML report: the quality curve over the significant
aggregation levels plus embedded overviews at representative strengths.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --out FILE       output path (default: <input>.report.html)
    --levels N       overviews embedded in the report (default 4)
    --title S        report title (default: input file name)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&[
        "help", "slices", "metric", "memory", "out", "levels", "title",
    ])?;
    let path = Path::new(args.positional(0, "trace file")?);
    let n_slices: usize = args.get_or("slices", 30)?;
    let metric: Metric = args.get_or("metric", Metric::States)?;
    let levels: usize = args.get_or("levels", 4)?;
    let title = match args.get("title")? {
        Some(t) => t.to_string(),
        None => path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into()),
    };

    let memory: MemoryMode = args.get_or("memory", MemoryMode::Auto)?;
    let model = obtain_model(path, n_slices, metric)?;
    let time_range = Some((model.grid().start(), model.grid().end()));
    let input = build_cube(&model, memory);
    let html = html_report(
        &input,
        &ReportOptions {
            title,
            rendered_levels: levels,
            time_range,
            ..ReportOptions::default()
        },
    );
    let out_path = match args.get("out")? {
        Some(o) => std::path::PathBuf::from(o),
        None => path.with_extension("report.html"),
    };
    std::fs::write(&out_path, html)?;
    writeln!(out, "wrote {}", out_path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    #[test]
    fn writes_html_report() {
        let p = fixture_trace("report");
        let html = p.with_extension("html");
        let tokens: Vec<String> = format!(
            "{} --slices 10 --out {} --levels 2",
            p.display(),
            html.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let content = std::fs::read_to_string(&html).unwrap();
        assert!(content.contains("<html") || content.contains("<!DOCTYPE"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&html).ok();
    }
}
