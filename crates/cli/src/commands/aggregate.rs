//! `ocelotl aggregate <trace>` — compute and summarize the optimal
//! spatiotemporal partition, through the shared [`AnalysisSession`].

use crate::args::Args;
use crate::helpers::{describe_cube, open_session, SESSION_OPTS};
use crate::CliError;
use ocelotl::core::{
    compare_partitions, inspect_area, product_aggregation, quality, summary_text, AnalysisSession,
    Partition, QualityCube,
};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl aggregate <trace|model.omm> [options]

Compute the hierarchy-and-order-consistent partition maximizing
pIC = p*gain - (1-p)*loss (the paper's Algorithm 1) and print its summary.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --p F            trade-off parameter in [0, 1] (default 0.5)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default
                     auto: dense while the O(|S||T|^2) matrices fit in 1 GiB,
                     lazy beyond - O(|S||T||X|) memory, O(|X|) per query)
    --cache DIR      persist session artifacts (.ocube/.opart) under DIR so
                     the next invocation is warm (default: OCELOTL_CACHE_DIR)
    --no-cache       disable artifact caching even if the env var is set
    --coarse         prefer the coarsest partition among pIC ties
    --list N         also print the N most populated aggregates
    --compare        also score the paper's SIII.D baselines (1-D optima,
                     their product, microscopic, full) at the same p
    --diff-p F       quantify how the overview changes between p and F
                     (variation of information, NMI, Rand index)
    --tsv FILE       dump the partition as tab-separated rows
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "p", "coarse", "list", "compare", "diff-p", "tsv"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let p: f64 = args.get_or("p", 0.5)?;
    let coarse = args.has("coarse");

    let mut session = open_session(&args, path)?;
    let partition = session.partition_at(p, coarse)?;
    // Everything below is answered from the session's cube — a warm run
    // never touches the trace (except --compare, which needs the raw
    // microscopic model for the 1-D baselines).
    let diffed: Option<(f64, Partition)> = match args.get("diff-p")? {
        Some(s) => {
            let p2: f64 = s
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid --diff-p value {s:?}")))?;
            Some((p2, session.partition_at(p2, coarse)?))
        }
        None => None,
    };
    let grid = session.grid()?;
    let source = session.cube_source();
    write_summary(&mut session, &partition, p, out, source)?;

    if let Some(n) = args.get("list")? {
        let n: usize = n
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --list value {n:?}")))?;
        writeln!(out, "\ntop {n} aggregates by cell count:")?;
        out.write_all(summary_text(session.cube()?, &partition, n).as_bytes())?;
    }

    if args.has("compare") {
        // §III.D: spatial-and-temporal is not spatiotemporal — score the
        // unidimensional optima and their product against Algorithm 1.
        let (model, cube) = session.model_and_cube()?;
        let h = model.hierarchy();
        let t = model.n_slices();
        let prod = product_aggregation(model, p);
        let spatial_2d = Partition::product(&prod.spatial.nodes, &[(0, t - 1)]);
        let temporal_2d = Partition::product(&[h.root()], &prod.temporal.intervals);
        writeln!(out, "\nbaseline comparison at p = {p} (SIII.D):")?;
        writeln!(out, "{:<28} {:>8} {:>14}", "partition", "areas", "pIC")?;
        for (name, part) in [
            ("spatiotemporal (Algorithm 1)", &partition),
            ("product P(S) x P(T)", &prod.partition),
            ("spatial-only x full time", &spatial_2d),
            ("temporal-only x full space", &temporal_2d),
            ("microscopic", &Partition::microscopic(h, t)),
            ("full aggregation", &Partition::full(h, t)),
        ] {
            writeln!(
                out,
                "{:<28} {:>8} {:>14.6}",
                name,
                part.len(),
                part.pic(cube, p)
            )?;
        }
    }

    if let Some((p2, other)) = diffed {
        let cube = session.cube()?;
        let c = compare_partitions(cube.hierarchy(), cube.n_slices(), &partition, &other);
        writeln!(out, "\noverview change from p = {p} to p = {p2}:")?;
        writeln!(
            out,
            "  areas:                    {} -> {}",
            partition.len(),
            other.len()
        )?;
        writeln!(
            out,
            "  variation of information: {:.4} bits",
            c.variation_of_information
        )?;
        writeln!(
            out,
            "  normalized mutual info:   {:.4}",
            c.normalized_mutual_information
        )?;
        writeln!(out, "  Rand index:               {:.4}", c.rand_index)?;
    }

    if let Some(tsv) = args.get("tsv")? {
        let cube = session.cube()?;
        let mut body = String::from(
            "node\tfirst_slice\tlast_slice\tt0\tt1\tresources\tmode\tconfidence\tloss\tgain\n",
        );
        for area in partition.areas() {
            let r = inspect_area(cube, area);
            let (t0, _) = grid.slice_bounds(area.first_slice);
            let (_, t1) = grid.slice_bounds(area.last_slice);
            body.push_str(&format!(
                "{}\t{}\t{}\t{t0:.9}\t{t1:.9}\t{}\t{}\t{:.6}\t{:.9}\t{:.9}\n",
                r.path,
                area.first_slice,
                area.last_slice,
                r.n_resources,
                r.mode.as_deref().unwrap_or("-"),
                r.confidence,
                r.loss,
                r.gain,
            ));
        }
        std::fs::write(tsv, body)?;
        writeln!(out, "\nwrote {tsv} ({} rows)", partition.len())?;
    }
    Ok(())
}

/// The headline block shared with cold and warm paths: model shape, cube
/// provenance, partition quality, total pIC (via the partition's own
/// additive sum, identical on both paths).
fn write_summary(
    session: &mut AnalysisSession,
    partition: &Partition,
    p: f64,
    out: &mut dyn Write,
    source: Option<ocelotl::core::CubeSource>,
) -> Result<(), CliError> {
    let metric = session.config().metric;
    let cube = session.cube()?;
    let q = quality(cube, partition);
    writeln!(
        out,
        "model:       {} resources x {} slices x {} states ({:?} metric)",
        cube.hierarchy().n_leaves(),
        cube.n_slices(),
        cube.n_states(),
        metric
    )?;
    writeln!(out, "p:           {p}")?;
    writeln!(out, "memory:      {}", describe_cube(cube, source))?;
    writeln!(
        out,
        "aggregates:  {} (of {} microscopic cells)",
        partition.len(),
        q.n_cells
    )?;
    writeln!(out, "complexity:  -{:.2} %", 100.0 * q.complexity_reduction)?;
    writeln!(
        out,
        "information: loss {:.6} bits (ratio {:.4}), gain {:.6} bits (ratio {:.4})",
        q.loss, q.loss_ratio, q.gain, q.gain_ratio
    )?;
    writeln!(out, "pIC:         {:.6}", partition.pic(cube, p))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, Metric};

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn aggregates_fixture() {
        let p = fixture_trace("agg");
        let text = run_ok(format!("{} --slices 10 --p 0.4", p.display()));
        assert!(text.contains("aggregates:"));
        assert!(text.contains("4 resources x 10 slices"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn list_prints_area_details() {
        let p = fixture_trace("agg-list");
        let text = run_ok(format!("{} --slices 10 --list 3", p.display()));
        assert!(text.contains("top 3 aggregates"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn density_metric_accepted() {
        let p = fixture_trace("agg-density");
        let text = run_ok(format!("{} --slices 10 --metric density", p.display()));
        assert!(text.contains("Density metric"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn coarse_never_increases_area_count() {
        let p = fixture_trace("agg-coarse");
        let plain = run_ok(format!("{} --slices 10 --p 0.3", p.display()));
        let coarse = run_ok(format!("{} --slices 10 --p 0.3 --coarse", p.display()));
        let count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("aggregates:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert!(count(&coarse) <= count(&plain));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn compare_scores_all_baselines() {
        let p = fixture_trace("agg-compare");
        let text = run_ok(format!("{} --slices 10 --p 0.4 --compare", p.display()));
        assert!(text.contains("baseline comparison"));
        assert!(text.contains("spatiotemporal (Algorithm 1)"));
        assert!(text.contains("microscopic"));
        // Algorithm 1's pIC must top the table.
        let pic_of = |needle: &str| {
            text.lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.split_whitespace().last())
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        let best = pic_of("spatiotemporal");
        for b in ["product", "microscopic", "full"] {
            assert!(best >= pic_of(b) - 1e-9, "{b} beats Algorithm 1");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn tsv_dump_has_one_row_per_area() {
        let p = fixture_trace("agg-tsv");
        let tsv = p.with_extension("tsv");
        let text = run_ok(format!(
            "{} --slices 10 --p 0.4 --tsv {}",
            p.display(),
            tsv.display()
        ));
        assert!(text.contains("wrote"));
        let content = std::fs::read_to_string(&tsv).unwrap();
        let n_areas: usize = text
            .lines()
            .find(|l| l.starts_with("aggregates:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(content.lines().count(), n_areas + 1, "header + rows");
        assert!(content.starts_with("node\tfirst_slice"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&tsv).ok();
    }

    #[test]
    fn memory_backends_agree_line_for_line() {
        let p = fixture_trace("agg-mem");
        let dense = run_ok(format!(
            "{} --slices 10 --p 0.4 --memory dense --list 5",
            p.display()
        ));
        let lazy = run_ok(format!(
            "{} --slices 10 --p 0.4 --memory lazy --list 5",
            p.display()
        ));
        assert!(dense.contains("memory:      dense"), "{dense}");
        assert!(lazy.contains("memory:      lazy"), "{lazy}");
        // Everything except the backend line must match exactly.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("memory:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&dense), strip(&lazy));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unknown_memory_mode_rejected() {
        let p = fixture_trace("agg-badmem");
        let tokens: Vec<String> = format!("{} --memory hologram", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn omm_cache_input_accepted() {
        let p = fixture_trace("agg-omm");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let model = crate::helpers::build_model(&trace, 10, Metric::States).unwrap();
        let omm = p.with_extension("omm");
        ocelotl::format::save_micro(&model, &omm).unwrap();
        let text = run_ok(format!("{} --p 0.4", omm.display()));
        assert!(
            text.contains("10 slices"),
            "grid comes from the cache:\n{text}"
        );
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&omm).ok();
    }

    #[test]
    fn diff_p_reports_similarity() {
        let p = fixture_trace("agg-diff");
        let same = run_ok(format!("{} --slices 10 --p 0.4 --diff-p 0.4", p.display()));
        assert!(same.contains("Rand index:               1.0000"), "{same}");
        let diff = run_ok(format!("{} --slices 10 --p 0.0 --diff-p 1.0", p.display()));
        assert!(diff.contains("variation of information"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_range_p_rejected() {
        let p = fixture_trace("agg-badp");
        let tokens: Vec<String> = format!("{} --p 2.0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_cache_output_is_identical_to_cold() {
        let p = fixture_trace("agg-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-agg-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!(
            "{} --slices 10 --p 0.4 --list 5 --cache {}",
            p.display(),
            cache.display()
        );
        let cold = run_ok(line.clone());
        let warm = run_ok(line);
        // The provenance note differs; every analysis line must not.
        assert!(cold.contains("cold build"), "{cold}");
        assert!(warm.contains("warm .ocube"), "{warm}");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("memory:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }
}
