//! `ocelotl aggregate <trace>` — compute and summarize the optimal
//! spatiotemporal partition.
//!
//! A thin client of the query protocol: builds one
//! [`AnalysisRequest::Aggregate`], executes it on the shared
//! [`QueryEngine`](ocelotl::core::QueryEngine), and prints the reply
//! through the one shared formatter (`proto::write_aggregate`) — the same
//! bytes a warm cached run or an `ocelotl serve` answer produces.

use crate::args::Args;
use crate::helpers::{open_engine, parse_window, SESSION_OPTS};
use crate::proto::{aggregate_request, write_aggregate};
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl aggregate <trace|model.omm> [options]

Compute the hierarchy-and-order-consistent partition maximizing
pIC = p*gain - (1-p)*loss (the paper's Algorithm 1) and print its summary.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --p F            trade-off parameter in [0, 1] (default 0.5)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default
                     auto: dense while the O(|S||T|^2) matrices fit in 1 GiB,
                     lazy beyond - O(|S||T||X|) memory, O(|X|) per query)
    --cache DIR      persist session artifacts (.ocube/.opart) under DIR so
                     the next invocation is warm (default: OCELOTL_CACHE_DIR)
    --no-cache       disable artifact caching even if the env var is set
    --cache-keep N   artifacts kept per trace and kind before GC
                     (default 4; OCELOTL_CACHE_KEEP)
    --coarse         prefer the coarsest partition among pIC ties
    --list N         also print the N most populated aggregates
    --compare        also score the paper's SIII.D baselines (1-D optima,
                     their product, microscopic, full) at the same p
    --diff-p F       quantify how the overview changes between p and F
                     (variation of information, NMI, Rand index)
    --tsv FILE       dump the partition as tab-separated rows
    --t0 T --t1 T    aggregate only the window [T0, T1] (snapped to the
                     hi-res grid) — a columnar (.octf) trace reads only
                     the chunks overlapping the window
    --json           print the reply as protocol JSON instead of text
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec![
        "help", "p", "coarse", "list", "compare", "diff-p", "tsv", "t0", "t1",
    ];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let window = parse_window(&args)?;
    let request = aggregate_request(&args)?;

    let mut engine = open_engine(&args, path)?;
    if let Some(range) = window {
        // Windowed analysis: re-slice into the window first, so the
        // aggregation below runs on the windowed model (a columnar trace
        // ingests only the overlapping chunks).
        let n_slices = args.get_or("slices", 30usize)?;
        engine.execute(&AnalysisRequest::Reslice {
            n_slices,
            range: Some(range),
        })?;
    }
    let reply = engine.execute(&request)?;
    let AnalysisReply::Aggregate(agg) = &reply else {
        unreachable!("aggregate request yields an aggregate reply");
    };

    if args.has("json") {
        // A requested TSV dump is written regardless of the output format
        // (like describe's .omm): --json changes what is printed — one
        // pure protocol line — not what side artifacts are produced.
        write_tsv(&args, agg, None)?;
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }

    let list: usize = match args.get("list")? {
        Some(n) => n
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --list value {n:?}")))?,
        None => 0,
    };
    write_aggregate(agg, out, list)?;
    write_tsv(&args, agg, Some(out))?;
    Ok(())
}

/// Write the `--tsv` dump, if requested, confirming on `out` when given.
fn write_tsv(
    args: &Args,
    agg: &ocelotl::core::query::AggregateReply,
    out: Option<&mut dyn Write>,
) -> Result<(), CliError> {
    if let Some(tsv) = args.get("tsv")? {
        let mut body = String::from(
            "node\tfirst_slice\tlast_slice\tt0\tt1\tresources\tmode\tconfidence\tloss\tgain\n",
        );
        for r in &agg.areas {
            body.push_str(&format!(
                "{}\t{}\t{}\t{:.9}\t{:.9}\t{}\t{}\t{:.6}\t{:.9}\t{:.9}\n",
                r.path,
                r.first_slice,
                r.last_slice,
                r.t0,
                r.t1,
                r.n_resources,
                r.mode.as_deref().unwrap_or("-"),
                r.confidence,
                r.loss,
                r.gain,
            ));
        }
        std::fs::write(tsv, body)?;
        if let Some(out) = out {
            writeln!(out, "\nwrote {tsv} ({} rows)", agg.summary.n_areas)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{fixture_trace, Metric};

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn aggregates_fixture() {
        let p = fixture_trace("agg");
        let text = run_ok(format!("{} --slices 10 --p 0.4", p.display()));
        assert!(text.contains("aggregates:"));
        assert!(text.contains("4 resources x 10 slices"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn list_prints_area_details() {
        let p = fixture_trace("agg-list");
        let text = run_ok(format!("{} --slices 10 --list 3", p.display()));
        assert!(text.contains("top 3 aggregates"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn density_metric_accepted() {
        let p = fixture_trace("agg-density");
        let text = run_ok(format!("{} --slices 10 --metric density", p.display()));
        assert!(text.contains("density metric"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn coarse_never_increases_area_count() {
        let p = fixture_trace("agg-coarse");
        let plain = run_ok(format!("{} --slices 10 --p 0.3", p.display()));
        let coarse = run_ok(format!("{} --slices 10 --p 0.3 --coarse", p.display()));
        let count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("aggregates:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert!(count(&coarse) <= count(&plain));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn compare_scores_all_baselines() {
        let p = fixture_trace("agg-compare");
        let text = run_ok(format!("{} --slices 10 --p 0.4 --compare", p.display()));
        assert!(text.contains("baseline comparison"));
        assert!(text.contains("spatiotemporal (Algorithm 1)"));
        assert!(text.contains("microscopic"));
        // Algorithm 1's pIC must top the table.
        let pic_of = |needle: &str| {
            text.lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.split_whitespace().last())
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        let best = pic_of("spatiotemporal");
        for b in ["product", "microscopic", "full"] {
            assert!(best >= pic_of(b) - 1e-9, "{b} beats Algorithm 1");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn tsv_dump_has_one_row_per_area() {
        let p = fixture_trace("agg-tsv");
        let tsv = p.with_extension("tsv");
        let text = run_ok(format!(
            "{} --slices 10 --p 0.4 --tsv {}",
            p.display(),
            tsv.display()
        ));
        assert!(text.contains("wrote"));
        let content = std::fs::read_to_string(&tsv).unwrap();
        let n_areas: usize = text
            .lines()
            .find(|l| l.starts_with("aggregates:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(content.lines().count(), n_areas + 1, "header + rows");
        assert!(content.starts_with("node\tfirst_slice"));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&tsv).ok();
    }

    #[test]
    fn memory_backends_agree_line_for_line() {
        let p = fixture_trace("agg-mem");
        let dense = run_ok(format!(
            "{} --slices 10 --p 0.4 --memory dense --list 5",
            p.display()
        ));
        let lazy = run_ok(format!(
            "{} --slices 10 --p 0.4 --memory lazy --list 5",
            p.display()
        ));
        assert!(dense.contains("memory:      dense"), "{dense}");
        assert!(lazy.contains("memory:      lazy"), "{lazy}");
        // Everything except the backend line must match exactly.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("memory:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&dense), strip(&lazy));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unknown_memory_mode_rejected() {
        let p = fixture_trace("agg-badmem");
        let tokens: Vec<String> = format!("{} --memory hologram", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn omm_cache_input_accepted() {
        let p = fixture_trace("agg-omm");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let model = crate::helpers::build_model(&trace, 10, Metric::States).unwrap();
        let omm = p.with_extension("omm");
        ocelotl::format::save_micro(&model, &omm).unwrap();
        let text = run_ok(format!("{} --p 0.4", omm.display()));
        assert!(
            text.contains("10 slices"),
            "grid comes from the cache:\n{text}"
        );
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&omm).ok();
    }

    #[test]
    fn diff_p_reports_similarity() {
        let p = fixture_trace("agg-diff");
        let same = run_ok(format!("{} --slices 10 --p 0.4 --diff-p 0.4", p.display()));
        assert!(same.contains("Rand index:               1.0000"), "{same}");
        let diff = run_ok(format!("{} --slices 10 --p 0.0 --diff-p 1.0", p.display()));
        assert!(diff.contains("variation of information"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_range_p_rejected() {
        let p = fixture_trace("agg-badp");
        let tokens: Vec<String> = format!("{} --p 2.0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_cache_output_is_byte_identical_to_cold() {
        let p = fixture_trace("agg-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-agg-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!(
            "{} --slices 10 --p 0.4 --list 5 --cache {}",
            p.display(),
            cache.display()
        );
        // The one-formatter design means no provenance lines and no drift:
        // the warm run's bytes equal the cold run's bytes exactly.
        let cold = run_ok(line.clone());
        let warm = run_ok(line);
        assert_eq!(cold, warm);
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn output_bytes_are_pinned() {
        // Regression pin for the one aggregate formatter: any drift in
        // these bytes would desynchronize cold/warm/server output.
        let p = fixture_trace("agg-pinned");
        let text = run_ok(format!("{} --slices 10 --p 0.4 --list 2", p.display()));
        let expected = "model:       4 resources x 10 slices x 2 states (states metric)\n\
             p:           0.4\n\
             memory:      dense (0.0 MiB resident)\n\
             aggregates:  10 (of 40 microscopic cells)\n\
             complexity:  -75.00 %\n\
             information: loss 0.000000 bits (ratio 0.0000), gain 0.000000 bits (ratio -0.0000)\n\
             pIC:         0.000000\n\
             \n\
             top 2 aggregates by cell count:\n\
             node                            res  slices           mode   conf      loss      gain\n\
             n0.0                              2    0..9            Run   100%     0.000     0.000\n\
             n0.1/n2.0                         1    0..9            Run   100%     0.000     0.000\n";
        assert_eq!(text, expected, "aggregate formatting regression");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn windowed_aggregate_is_byte_identical_across_formats() {
        // The same `--t0/--t1` window aggregated from a row trace (full
        // ingest, window derived in memory) and from its columnar twin
        // (predicate pushdown, only overlapping chunks decoded) must
        // print the same bytes.
        let p = fixture_trace("agg-window");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let octf = p.with_extension("octf");
        {
            let mut w = std::io::BufWriter::new(std::fs::File::create(&octf).unwrap());
            ocelotl::format::write_columnar_chunked(&trace, &mut w, 8).unwrap();
            use std::io::Write as _;
            w.flush().unwrap();
        }
        let (lo, hi) = trace.time_range().unwrap();
        let mid = lo + (hi - lo) / 2.0;
        let row = run_ok(format!(
            "{} --slices 10 --p 0.4 --t0 {lo} --t1 {mid}",
            p.display()
        ));
        let col = run_ok(format!(
            "{} --slices 10 --p 0.4 --t0 {lo} --t1 {mid}",
            octf.display()
        ));
        assert_eq!(row, col, "windowed aggregate must not depend on format");
        // And the window genuinely narrows the model vs the full run.
        let full = run_ok(format!("{} --slices 10 --p 0.4", p.display()));
        assert_ne!(row, full, "the window must change the model");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&octf).ok();
    }

    #[test]
    fn t0_without_t1_is_usage_error() {
        let p = fixture_trace("agg-halfwin");
        let tokens: Vec<String> = format!("{} --t0 1.0", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn json_output_is_a_protocol_reply() {
        let p = fixture_trace("agg-json");
        let text = run_ok(format!("{} --slices 10 --p 0.4 --json", p.display()));
        let reply = ocelotl::format::decode_reply(text.trim()).unwrap().unwrap();
        assert_eq!(reply.kind(), "aggregate");
        std::fs::remove_file(&p).ok();
    }
}
