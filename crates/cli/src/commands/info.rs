//! `ocelotl info <trace>` — summarize a trace file.

use crate::args::Args;
use crate::helpers::{load_trace, obtain_report, Metric};
use crate::CliError;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl info <trace> [--stats]

Summarize a trace file: dimensions, states, time extent, metadata.
Accepts .btf, .ptf, .paje/.trace (all sniffed) and .omm model caches.

OPTIONS:
    --stats          stream the trace straight into the microscopic model
                     (never materializing events) and report ingestion
                     telemetry: events/s, bytes read, peak model footprint
                     and the chosen ingest mode (single-pass / two-pass)
    --slices N       time slices for the --stats model (default 30)
    --metric M       states | density for the --stats model (default states)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "stats", "slices", "metric"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    if args.has("stats") {
        return run_stats(&args, path, out);
    }
    let trace = load_trace(path)?;
    let h = &trace.hierarchy;

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    )?;
    writeln!(out, "events:      {}", trace.event_count())?;
    writeln!(
        out,
        "intervals:   {} (+{} point events)",
        trace.intervals.len(),
        trace.points.len()
    )?;
    match trace.time_range() {
        Some((lo, hi)) => writeln!(out, "time range:  [{lo:.6}, {hi:.6}] s")?,
        None => writeln!(out, "time range:  (empty trace)")?,
    }
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        h.n_leaves(),
        h.len(),
        h.max_depth()
    )?;
    for &c in h.top_level() {
        writeln!(
            out,
            "  {} ({}): {} resources",
            h.name(c),
            h.kind(c),
            h.n_leaves_under(c)
        )?;
    }
    writeln!(out, "states:      {}", trace.states.len())?;
    for (_, name) in trace.states.iter() {
        writeln!(out, "  {name}")?;
    }
    if !trace.metadata.is_empty() {
        writeln!(out, "metadata:")?;
        for (k, v) in &trace.metadata {
            writeln!(out, "  {k} = {v}")?;
        }
    }
    Ok(())
}

/// `--stats`: one streaming ingestion (no event materialization) plus its
/// telemetry, so users can see the O(model) path working.
fn run_stats(args: &Args, path: &Path, out: &mut dyn Write) -> Result<(), CliError> {
    if crate::helpers::is_micro_cache(path) {
        return Err(CliError::Usage(
            "--stats measures trace ingestion; a .omm model cache has no event stream".into(),
        ));
    }
    let n_slices: usize = args.get_or("slices", 30)?;
    let metric: Metric = args.get_or("metric", Metric::States)?;
    let t0 = Instant::now();
    let report = obtain_report(path, n_slices, metric)?;
    let elapsed = t0.elapsed();
    let m = &report.model;
    let h = m.hierarchy();

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|x| x.len()).unwrap_or(0)
    )?;
    writeln!(
        out,
        "events:      {} ({} intervals, {} points)",
        report.events(),
        report.intervals,
        report.points
    )?;
    writeln!(
        out,
        "time range:  [{:.6}, {:.6}] s",
        m.grid().start(),
        m.grid().end()
    )?;
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        h.n_leaves(),
        h.len(),
        h.max_depth()
    )?;
    writeln!(
        out,
        "model:       {} x {} x {} cells ({} metric, {} slices)",
        m.n_leaves(),
        m.n_slices(),
        m.n_states(),
        metric.tag(),
        m.n_slices()
    )?;
    writeln!(out, "ingestion (streaming, events never materialized):")?;
    writeln!(out, "  mode:              {}", report.mode.tag())?;
    writeln!(
        out,
        "  wall time:         {:.3} ms",
        elapsed.as_secs_f64() * 1e3
    )?;
    writeln!(
        out,
        "  throughput:        {:.0} events/s",
        report.events() as f64 / elapsed.as_secs_f64().max(1e-9)
    )?;
    writeln!(out, "  bytes read:        {}", report.bytes_read)?;
    writeln!(
        out,
        "  peak model memory: {} bytes (O(model), not O(events))",
        report.peak_bytes
    )?;
    writeln!(out, "  fingerprint:       {:016x}", report.fingerprint)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: &str) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn summarizes_fixture() {
        let p = fixture_trace("info");
        let text = run_ok(&format!("{}", p.display()));
        assert!(text.contains("events:      80"));
        assert!(text.contains("resources:   4 leaves"));
        assert!(text.contains("MPI_Wait"));
        assert!(text.contains("app = fixture"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn help_flag() {
        let text = run_ok("--help");
        assert!(text.contains("ocelotl info"));
        assert!(text.contains("--stats"));
    }

    #[test]
    fn stats_reports_streaming_telemetry() {
        let p = fixture_trace("info-stats");
        let text = run_ok(&format!("{} --stats --slices 10", p.display()));
        assert!(text.contains("mode:              single-pass"), "{text}");
        assert!(text.contains("events/s"), "{text}");
        assert!(text.contains("peak model memory"), "{text}");
        assert!(text.contains("fingerprint"), "{text}");
        assert!(text.contains("events:      80"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_on_paje_uses_two_passes() {
        let p = fixture_trace("info-stats-paje");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let paje = p.with_extension("paje");
        crate::helpers::save_trace(&trace, &paje).unwrap();
        let text = run_ok(&format!("{} --stats", paje.display()));
        assert!(text.contains("mode:              two-pass"), "{text}");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&paje).ok();
    }

    #[test]
    fn missing_file_is_invalid() {
        let tokens = vec!["/no/such/file.btf".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
    }

    #[test]
    fn unknown_option_rejected() {
        let tokens: Vec<String> = ["x.btf", "--bogus"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
