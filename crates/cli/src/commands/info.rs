//! `ocelotl info <trace>` — summarize a trace file.

use crate::args::Args;
use crate::helpers::load_trace;
use crate::CliError;
use std::io::Write;
use std::path::Path;

const HELP: &str = "\
ocelotl info <trace>

Summarize a trace file: dimensions, states, time extent, metadata.
Accepts .btf, .ptf (sniffed) and .paje/.trace files.
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    let trace = load_trace(path)?;
    let h = &trace.hierarchy;

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    )?;
    writeln!(out, "events:      {}", trace.event_count())?;
    writeln!(
        out,
        "intervals:   {} (+{} point events)",
        trace.intervals.len(),
        trace.points.len()
    )?;
    match trace.time_range() {
        Some((lo, hi)) => writeln!(out, "time range:  [{lo:.6}, {hi:.6}] s")?,
        None => writeln!(out, "time range:  (empty trace)")?,
    }
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        h.n_leaves(),
        h.len(),
        h.max_depth()
    )?;
    for &c in h.top_level() {
        writeln!(
            out,
            "  {} ({}): {} resources",
            h.name(c),
            h.kind(c),
            h.n_leaves_under(c)
        )?;
    }
    writeln!(out, "states:      {}", trace.states.len())?;
    for (_, name) in trace.states.iter() {
        writeln!(out, "  {name}")?;
    }
    if !trace.metadata.is_empty() {
        writeln!(out, "metadata:")?;
        for (k, v) in &trace.metadata {
            writeln!(out, "  {k} = {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: &str) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn summarizes_fixture() {
        let p = fixture_trace("info");
        let text = run_ok(&format!("{}", p.display()));
        assert!(text.contains("events:      80"));
        assert!(text.contains("resources:   4 leaves"));
        assert!(text.contains("MPI_Wait"));
        assert!(text.contains("app = fixture"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn help_flag() {
        let text = run_ok("--help");
        assert!(text.contains("ocelotl info"));
    }

    #[test]
    fn missing_file_is_invalid() {
        let tokens = vec!["/no/such/file.btf".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
    }

    #[test]
    fn unknown_option_rejected() {
        let tokens: Vec<String> = ["x.btf", "--bogus"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
