//! `ocelotl info <trace>` — summarize a trace file. `--stats` is a thin
//! client of the query protocol (`Stats` request): the deterministic
//! telemetry comes from the reply, the throughput lines from a local
//! clock.

use crate::args::Args;
use crate::helpers::{load_trace, open_engine};
use crate::proto::write_stats;
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl info <trace> [--stats]

Summarize a trace file: dimensions, states, time extent, metadata.
Accepts .btf, .ptf, .paje/.trace, .octf (all sniffed) and .omm model
caches. Plain .octf inputs additionally list their chunk index (chunk
count, encoded vs raw-equivalent size, per-chunk time extents).

OPTIONS:
    --stats          stream the trace straight into the microscopic model
                     (never materializing events) and report ingestion
                     telemetry: events/s, bytes read, peak model footprint
                     and the chosen ingest mode (single-pass / two-pass /
                     pushdown)
    --slices N       time slices for the --stats model (default 30)
    --metric M       states | density for the --stats model (default states)
    --t0 T --t1 T    with --stats: re-slice into the window [T0, T1] before
                     measuring — a columnar trace reads only the chunks
                     overlapping the window (predicate pushdown)
    --json           with --stats: print the Stats reply as protocol JSON
                     (the same bytes `ocelotl serve` answers)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "stats", "slices", "metric", "json", "t0", "t1"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    if args.has("stats") {
        return run_stats(&args, path, out);
    }
    if args.has("json") {
        return Err(CliError::Usage(
            "--json is a --stats option (the listing has no protocol reply)".into(),
        ));
    }
    if args.get("t0")?.is_some() || args.get("t1")?.is_some() {
        return Err(CliError::Usage(
            "--t0/--t1 are --stats options (the listing has no window)".into(),
        ));
    }
    let trace = load_trace(path)?;
    let h = &trace.hierarchy;

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    )?;
    writeln!(out, "events:      {}", trace.event_count())?;
    writeln!(
        out,
        "intervals:   {} (+{} point events)",
        trace.intervals.len(),
        trace.points.len()
    )?;
    match trace.time_range() {
        Some((lo, hi)) => writeln!(out, "time range:  [{lo:.6}, {hi:.6}] s")?,
        None => writeln!(out, "time range:  (empty trace)")?,
    }
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        h.n_leaves(),
        h.len(),
        h.max_depth()
    )?;
    for &c in h.top_level() {
        writeln!(
            out,
            "  {} ({}): {} resources",
            h.name(c),
            h.kind(c),
            h.n_leaves_under(c)
        )?;
    }
    writeln!(out, "states:      {}", trace.states.len())?;
    for (_, name) in trace.states.iter() {
        writeln!(out, "  {name}")?;
    }
    if !trace.metadata.is_empty() {
        writeln!(out, "metadata:")?;
        for (k, v) in &trace.metadata {
            writeln!(out, "  {k} = {v}")?;
        }
    }
    if crate::helpers::is_plain_columnar(path) {
        write_chunk_index(path, out)?;
    }
    Ok(())
}

/// The `.octf` chunk-index listing: everything here comes from the header
/// and footer alone — no chunk payload is decoded.
fn write_chunk_index(path: &Path, out: &mut dyn Write) -> Result<(), CliError> {
    let plan = ocelotl::format::plan_columnar(path)?;
    let (iv, pt) = plan.records();
    let encoded = plan.total_payload();
    let raw = plan.raw_equivalent_bytes();
    writeln!(
        out,
        "chunk index: {} chunks ({iv} intervals + {pt} points)",
        plan.chunks.len()
    )?;
    writeln!(
        out,
        "  encoded:   {encoded} bytes (raw equivalent {raw}, ratio {:.2})",
        encoded as f64 / raw.max(1) as f64
    )?;
    if let Some((lo, hi)) = plan.time_extent() {
        writeln!(out, "  extent:    [{lo:.6}, {hi:.6}] s")?;
    }
    const SHOWN: usize = 8;
    for (i, c) in plan.chunks.iter().take(SHOWN).enumerate() {
        writeln!(
            out,
            "  chunk {i}: {}, {} records, [{:.6}, {:.6}] s, {} bytes",
            if c.is_points() { "points" } else { "intervals" },
            c.n_records,
            c.t_min,
            c.t_max,
            c.payload_len
        )?;
    }
    if plan.chunks.len() > SHOWN {
        writeln!(out, "  ... {} more chunks", plan.chunks.len() - SHOWN)?;
    }
    Ok(())
}

/// `--stats`: one `Stats` query (a streaming ingestion with no event
/// materialization) plus its telemetry, so users can see the O(model)
/// path working.
fn run_stats(args: &Args, path: &Path, out: &mut dyn Write) -> Result<(), CliError> {
    if crate::helpers::is_micro_cache(path) {
        return Err(CliError::Usage(
            "--stats measures trace ingestion; a .omm model cache has no event stream".into(),
        ));
    }
    let window = crate::helpers::parse_window(args)?;
    let mut engine = open_engine(args, path)?;
    let t0 = Instant::now();
    if let Some(range) = window {
        // Windowed telemetry: re-slice first so the ingest the Stats
        // reply measures is the windowed one (columnar sources read only
        // the overlapping chunks).
        let n_slices = args.get_or("slices", 30usize)?;
        engine.execute(&AnalysisRequest::Reslice {
            n_slices,
            range: Some(range),
        })?;
    }
    let reply = engine.execute(&AnalysisRequest::Stats)?;
    let elapsed = t0.elapsed();

    if args.has("json") {
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }
    let AnalysisReply::Stats(stats) = &reply else {
        unreachable!("stats request yields a stats reply");
    };

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|x| x.len()).unwrap_or(0)
    )?;
    write_stats(stats, out)?;
    writeln!(out, "local measurement (this process, this run):")?;
    writeln!(
        out,
        "  wall time:         {:.3} ms",
        elapsed.as_secs_f64() * 1e3
    )?;
    writeln!(
        out,
        "  throughput:        {:.0} events/s",
        stats.events as f64 / elapsed.as_secs_f64().max(1e-9)
    )?;
    // Shard timing is a process-local clock reading: it lives here, next
    // to wall time, never in the (deterministic) protocol reply above.
    if let Some(t) = ocelotl::format::take_last_ingest_timing() {
        if t.shard_nanos.len() > 1 {
            let slowest = t.shard_nanos.iter().copied().max().unwrap_or(0);
            writeln!(
                out,
                "  shard decode:      {} workers' worth, slowest {:.3} ms",
                t.shard_nanos.len(),
                slowest as f64 / 1e6
            )?;
            writeln!(
                out,
                "  merge time:        {:.3} ms",
                t.merge_nanos as f64 / 1e6
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: &str) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn summarizes_fixture() {
        let p = fixture_trace("info");
        let text = run_ok(&format!("{}", p.display()));
        assert!(text.contains("events:      80"));
        assert!(text.contains("resources:   4 leaves"));
        assert!(text.contains("MPI_Wait"));
        assert!(text.contains("app = fixture"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn help_flag() {
        let text = run_ok("--help");
        assert!(text.contains("ocelotl info"));
        assert!(text.contains("--stats"));
    }

    #[test]
    fn stats_reports_streaming_telemetry() {
        let p = fixture_trace("info-stats");
        let text = run_ok(&format!("{} --stats --slices 10", p.display()));
        assert!(text.contains("mode:              single-pass"), "{text}");
        assert!(text.contains("events/s"), "{text}");
        assert!(text.contains("peak model memory"), "{text}");
        assert!(text.contains("fingerprint"), "{text}");
        assert!(text.contains("events:      80"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_json_is_a_protocol_reply() {
        let p = fixture_trace("info-stats-json");
        let text = run_ok(&format!("{} --stats --slices 10 --json", p.display()));
        let reply = ocelotl::format::decode_reply(text.trim()).unwrap().unwrap();
        let ocelotl::core::AnalysisReply::Stats(s) = reply else {
            panic!("expected stats reply");
        };
        assert_eq!(s.events, 80);
        assert_eq!(s.mode, "single-pass");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_on_paje_uses_two_passes() {
        let p = fixture_trace("info-stats-paje");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let paje = p.with_extension("paje");
        crate::helpers::save_trace(&trace, &paje).unwrap();
        let text = run_ok(&format!("{} --stats", paje.display()));
        assert!(text.contains("mode:              two-pass"), "{text}");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&paje).ok();
    }

    /// A 2-leaf columnar fixture whose 40 time-ordered intervals split
    /// into 5 chunks of 8 records with disjoint-ish time extents
    /// ([0,2], [2,4], ... [8,10]) — the shape pushdown tests need.
    fn chunked_octf(name: &str) -> std::path::PathBuf {
        use ocelotl::prelude::*;
        let mut b = TraceBuilder::new(Hierarchy::balanced(&[2]));
        let run = b.state("Run");
        for k in 0..40u32 {
            let t = f64::from(k) * 0.25;
            b.push_state(LeafId(k % 2), run, t, t + 0.25);
        }
        let trace = b.build();
        let path = std::env::temp_dir().join(format!(
            "ocelotl-cli-info-{}-{name}.octf",
            std::process::id()
        ));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        ocelotl::format::write_columnar_chunked(&trace, &mut w, 8).unwrap();
        use std::io::Write as _;
        w.flush().unwrap();
        path
    }

    #[test]
    fn octf_listing_includes_the_chunk_index() {
        let p = chunked_octf("listing");
        let text = run_ok(&format!("{}", p.display()));
        assert!(text.contains("chunk index: 5 chunks"), "{text}");
        assert!(text.contains("encoded:"), "{text}");
        assert!(text.contains("chunk 0: intervals, 8 records"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn windowed_stats_report_chunk_pushdown() {
        let p = chunked_octf("window");
        // Window [0, 5] on a [0, 10] trace: chunks 0-2 overlap, 3-4 skip.
        let text = run_ok(&format!(
            "{} --stats --slices 10 --t0 0 --t1 5",
            p.display()
        ));
        assert!(text.contains("mode:              pushdown"), "{text}");
        assert!(text.contains("3 of 5 read"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn t0_without_t1_is_usage_error() {
        let tokens: Vec<String> = ["x.octf", "--stats", "--t0", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_file_is_invalid() {
        let tokens = vec!["/no/such/file.btf".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
    }

    #[test]
    fn unknown_option_rejected() {
        let tokens: Vec<String> = ["x.btf", "--bogus"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
