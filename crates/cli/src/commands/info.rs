//! `ocelotl info <trace>` — summarize a trace file. `--stats` is a thin
//! client of the query protocol (`Stats` request): the deterministic
//! telemetry comes from the reply, the throughput lines from a local
//! clock.

use crate::args::Args;
use crate::helpers::{load_trace, open_engine};
use crate::proto::write_stats;
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl info <trace> [--stats]

Summarize a trace file: dimensions, states, time extent, metadata.
Accepts .btf, .ptf, .paje/.trace (all sniffed) and .omm model caches.

OPTIONS:
    --stats          stream the trace straight into the microscopic model
                     (never materializing events) and report ingestion
                     telemetry: events/s, bytes read, peak model footprint
                     and the chosen ingest mode (single-pass / two-pass)
    --slices N       time slices for the --stats model (default 30)
    --metric M       states | density for the --stats model (default states)
    --json           with --stats: print the Stats reply as protocol JSON
                     (the same bytes `ocelotl serve` answers)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    args.expect_known(&["help", "stats", "slices", "metric", "json"])?;
    let path = Path::new(args.positional(0, "trace file")?);
    if args.has("stats") {
        return run_stats(&args, path, out);
    }
    if args.has("json") {
        return Err(CliError::Usage(
            "--json is a --stats option (the listing has no protocol reply)".into(),
        ));
    }
    let trace = load_trace(path)?;
    let h = &trace.hierarchy;

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    )?;
    writeln!(out, "events:      {}", trace.event_count())?;
    writeln!(
        out,
        "intervals:   {} (+{} point events)",
        trace.intervals.len(),
        trace.points.len()
    )?;
    match trace.time_range() {
        Some((lo, hi)) => writeln!(out, "time range:  [{lo:.6}, {hi:.6}] s")?,
        None => writeln!(out, "time range:  (empty trace)")?,
    }
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        h.n_leaves(),
        h.len(),
        h.max_depth()
    )?;
    for &c in h.top_level() {
        writeln!(
            out,
            "  {} ({}): {} resources",
            h.name(c),
            h.kind(c),
            h.n_leaves_under(c)
        )?;
    }
    writeln!(out, "states:      {}", trace.states.len())?;
    for (_, name) in trace.states.iter() {
        writeln!(out, "  {name}")?;
    }
    if !trace.metadata.is_empty() {
        writeln!(out, "metadata:")?;
        for (k, v) in &trace.metadata {
            writeln!(out, "  {k} = {v}")?;
        }
    }
    Ok(())
}

/// `--stats`: one `Stats` query (a streaming ingestion with no event
/// materialization) plus its telemetry, so users can see the O(model)
/// path working.
fn run_stats(args: &Args, path: &Path, out: &mut dyn Write) -> Result<(), CliError> {
    if crate::helpers::is_micro_cache(path) {
        return Err(CliError::Usage(
            "--stats measures trace ingestion; a .omm model cache has no event stream".into(),
        ));
    }
    let mut engine = open_engine(args, path)?;
    let t0 = Instant::now();
    let reply = engine.execute(&AnalysisRequest::Stats)?;
    let elapsed = t0.elapsed();

    if args.has("json") {
        writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        return Ok(());
    }
    let AnalysisReply::Stats(stats) = &reply else {
        unreachable!("stats request yields a stats reply");
    };

    writeln!(out, "file:        {}", path.display())?;
    writeln!(
        out,
        "size:        {} bytes",
        std::fs::metadata(path).map(|x| x.len()).unwrap_or(0)
    )?;
    write_stats(stats, out)?;
    writeln!(out, "local measurement (this process, this run):")?;
    writeln!(
        out,
        "  wall time:         {:.3} ms",
        elapsed.as_secs_f64() * 1e3
    )?;
    writeln!(
        out,
        "  throughput:        {:.0} events/s",
        stats.events as f64 / elapsed.as_secs_f64().max(1e-9)
    )?;
    // Shard timing is a process-local clock reading: it lives here, next
    // to wall time, never in the (deterministic) protocol reply above.
    if let Some(t) = ocelotl::format::take_last_ingest_timing() {
        if t.shard_nanos.len() > 1 {
            let slowest = t.shard_nanos.iter().copied().max().unwrap_or(0);
            writeln!(
                out,
                "  shard decode:      {} workers' worth, slowest {:.3} ms",
                t.shard_nanos.len(),
                slowest as f64 / 1e6
            )?;
            writeln!(
                out,
                "  merge time:        {:.3} ms",
                t.merge_nanos as f64 / 1e6
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: &str) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn summarizes_fixture() {
        let p = fixture_trace("info");
        let text = run_ok(&format!("{}", p.display()));
        assert!(text.contains("events:      80"));
        assert!(text.contains("resources:   4 leaves"));
        assert!(text.contains("MPI_Wait"));
        assert!(text.contains("app = fixture"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn help_flag() {
        let text = run_ok("--help");
        assert!(text.contains("ocelotl info"));
        assert!(text.contains("--stats"));
    }

    #[test]
    fn stats_reports_streaming_telemetry() {
        let p = fixture_trace("info-stats");
        let text = run_ok(&format!("{} --stats --slices 10", p.display()));
        assert!(text.contains("mode:              single-pass"), "{text}");
        assert!(text.contains("events/s"), "{text}");
        assert!(text.contains("peak model memory"), "{text}");
        assert!(text.contains("fingerprint"), "{text}");
        assert!(text.contains("events:      80"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_json_is_a_protocol_reply() {
        let p = fixture_trace("info-stats-json");
        let text = run_ok(&format!("{} --stats --slices 10 --json", p.display()));
        let reply = ocelotl::format::decode_reply(text.trim()).unwrap().unwrap();
        let ocelotl::core::AnalysisReply::Stats(s) = reply else {
            panic!("expected stats reply");
        };
        assert_eq!(s.events, 80);
        assert_eq!(s.mode, "single-pass");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_on_paje_uses_two_passes() {
        let p = fixture_trace("info-stats-paje");
        let trace = crate::helpers::load_trace(&p).unwrap();
        let paje = p.with_extension("paje");
        crate::helpers::save_trace(&trace, &paje).unwrap();
        let text = run_ok(&format!("{} --stats", paje.display()));
        assert!(text.contains("mode:              two-pass"), "{text}");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&paje).ok();
    }

    #[test]
    fn missing_file_is_invalid() {
        let tokens = vec!["/no/such/file.btf".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
    }

    #[test]
    fn unknown_option_rejected() {
        let tokens: Vec<String> = ["x.btf", "--bogus"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
    }
}
