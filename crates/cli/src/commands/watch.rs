//! `ocelotl watch` — subscribe to a live session on a running server and
//! print every refreshed reply as the model grows. The streaming
//! counterpart of `ocelotl query`: same request builders, same printers,
//! wrapped in the protocol's `subscribe` request.

use crate::args::Args;
use crate::helpers::{session_config, SESSION_OPTS};
use crate::proto::{print_reply, request_from_args};
use crate::CliError;
use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
use std::io::{BufRead, BufReader, Write};

const HELP: &str = "\
ocelotl watch <addr> <name> <kind> [options]

Subscribe to a live session on a running server (one publishing a live
feed, e.g. `ocelotl simulate --live`) and print a refreshed reply every
time the model advances, until the feed completes. <addr> is host:port
(TCP) or unix:/path/to.sock; <name> is the live session's advertised
name (default `live`); <kind> and its options are the same request kinds
`ocelotl query` accepts, except `reslice` (a subscription cannot mutate
the session it watches).

The session parameters (--slices, --metric) must match the live
session's pinned parameters; mismatches are refused up front.

OPTIONS (beyond the per-kind request options of `ocelotl query`):
    --last      print only the final refresh (after the feed completes)
    --json      print raw reply lines; with --last, the final reply is
                re-encoded bare (unwrapped), byte-identical to the same
                `ocelotl query --json` answer against the finished trace
";

/// Decoded stream outcome: every watch refresh in arrival order.
fn stream_replies(addr: &str, line: &str) -> Result<Vec<String>, CliError> {
    fn drain<S: std::io::Read + Write>(
        mut stream: S,
        reader: S,
        line: &str,
    ) -> Result<Vec<String>, CliError> {
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut replies = Vec::new();
        for reply in BufReader::new(reader).lines() {
            let reply = reply?;
            if reply.trim().is_empty() {
                continue;
            }
            replies.push(reply.trim_end().to_string());
        }
        Ok(replies)
    }
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            use std::os::unix::net::UnixStream;
            let stream = UnixStream::connect(path)
                .map_err(|e| CliError::Invalid(format!("cannot connect to {path}: {e}")))?;
            let reader = stream.try_clone()?;
            drain(stream, reader, line)
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(CliError::Usage(
                "unix: addresses need Unix domain sockets; use host:port".into(),
            ))
        }
    } else {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        drain(stream, reader, line)
    }
}

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec![
        "help",
        "p",
        "coarse",
        "compare",
        "diff-p",
        "resolution",
        "steps",
        "leaf",
        "slice",
        "min-rows",
        "last",
    ];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let addr = args.positional(0, "server address")?;
    let name = args.positional(1, "live session name (as published by the server)")?;
    let kind = args.positional(2, "request kind")?;

    let inner = request_from_args(kind, &args)?;
    let request = AnalysisRequest::Subscribe {
        inner: Box::new(inner),
    };
    let config = session_config(&args)?;
    let line = ocelotl::format::encode_wire_request(name, &config, &request);

    let last_only = args.has("last");
    let json = args.has("json");
    let mut final_watch = None;
    let mut got_done = false;
    for reply_line in stream_replies(addr, &line)? {
        let watch = match ocelotl::format::decode_reply(&reply_line)? {
            Err(e) => return Err(e.into()),
            Ok(AnalysisReply::Watch(w)) => w,
            Ok(_) => {
                return Err(CliError::Invalid(
                    "server sent a non-watch reply on a subscription".into(),
                ))
            }
        };
        got_done = watch.done;
        if last_only {
            final_watch = Some(watch);
        } else if json {
            writeln!(out, "{reply_line}")?;
        } else {
            print_reply(&AnalysisReply::Watch(watch), out)?;
        }
        if got_done {
            break;
        }
    }
    if !got_done {
        return Err(CliError::Invalid(
            "subscription ended before the final refresh (server gone or feed aborted)".into(),
        ));
    }
    if let Some(w) = final_watch {
        if json {
            // Re-encode the *inner* reply bare: byte-identical to the
            // post-mortem `ocelotl query ... --json` answer for the same
            // request against the completed trace.
            writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(*w.reply)))?;
        } else {
            print_reply(&w.reply, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::serve::{spawn_live_tcp, LiveFeeder, ServeOptions, ServerHandle};
    use ocelotl::core::query::QueryEngine;
    use ocelotl::core::{AnalysisSession, HiResModel, Metric, SessionConfig};
    use ocelotl::trace::{Hierarchy, LeafId, MicroModel, StateId, StateRegistry, TimeGrid};

    /// A finished live server: two events fed, feed complete.
    fn finished_live_server() -> (ServerHandle, LiveFeeder) {
        let raw = MicroModel::from_dense(
            Hierarchy::flat(2, "p"),
            StateRegistry::from_names(["A", "B"]),
            TimeGrid::new(0.0, 8.0, 4096),
            vec![0.0; 2 * 2 * 4096],
        );
        let config = SessionConfig {
            n_slices: 4,
            ..SessionConfig::default()
        };
        let session = AnalysisSession::live(config, HiResModel::new(Metric::States, raw)).unwrap();
        let (handle, feeder) = spawn_live_tcp(
            "127.0.0.1:0",
            ServeOptions::default(),
            "live",
            QueryEngine::new(session),
        )
        .unwrap();
        feeder.feed(&[(LeafId(0), StateId(0), 0.0, 2.0)]).unwrap();
        feeder.feed(&[(LeafId(1), StateId(1), 2.0, 4.0)]).unwrap();
        feeder.finish();
        (handle, feeder)
    }

    fn run_watch(line: &str) -> Result<String, CliError> {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn watch_prints_refreshes_and_ends_on_the_final_one() {
        let (handle, _feeder) = finished_live_server();
        let text = run_watch(&format!("{} live describe --slices 4", handle.address())).unwrap();
        assert!(text.contains("refresh:"), "{text}");
        assert!(text.contains("(final)"), "{text}");
        assert!(text.contains("events"), "{text}");
        handle.stop();
    }

    #[test]
    fn last_json_is_byte_identical_to_the_bare_reply() {
        let (handle, feeder) = finished_live_server();
        let text = run_watch(&format!(
            "{} live describe --slices 4 --last --json",
            handle.address()
        ))
        .unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        // The unwrapped final reply equals the same request answered
        // one-shot against the published engine — what a post-mortem
        // `ocelotl query --json` of the finished trace would print.
        let oneshot = feeder
            .with_engine(|e| e.execute_shared(&AnalysisRequest::Describe))
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(text.trim_end(), ocelotl::format::encode_reply(&Ok(oneshot)));
        handle.stop();
    }

    #[test]
    fn watch_surfaces_server_refusals_and_usage_errors() {
        let (handle, _feeder) = finished_live_server();
        // Mismatched pin (live session serves 4 slices, not 8).
        let err = run_watch(&format!("{} live describe --slices 8", handle.address())).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        // Unknown live name.
        let err = run_watch(&format!("{} nope describe --slices 4", handle.address())).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
        // Reslice cannot be subscribed to.
        let err = run_watch(&format!("{} live reslice --slices 4", handle.address())).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        handle.stop();
        // Missing positionals are usage errors before any connection.
        assert!(matches!(run_watch("--slices 4"), Err(CliError::Usage(_))));
    }
}
