//! `ocelotl sweep <trace>` — replay the paper's §V.B interaction loop
//! from a warm session: enumerate the significant quality/p levels, then
//! re-run the DP across a p grid and time each re-aggregation.
//!
//! This is where "instantaneous interaction" lives: with a warm `.ocube`
//! the only work per grid point is the DP itself (no trace read, no
//! slicing, no prefix sums), and with a warm `.opart` the significant
//! levels arrive with zero DP runs.

use crate::args::Args;
use crate::helpers::{describe_cube, open_session, SESSION_OPTS};
use crate::CliError;
use ocelotl::core::quality;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl sweep <trace|model.omm> [options]

Replay the SV.B quality/p curves: enumerate the significant aggregation
levels (with per-level quality), then optionally re-aggregate across an
even p grid, timing each DP re-run — the paper's interaction latency.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --resolution F   dichotomy resolution on p (default 1e-3)
    --steps N        also re-aggregate at N+1 evenly spaced p values and
                     report per-DP latency (default 0: skip)
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "resolution", "steps"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let resolution: f64 = args.get_or("resolution", 1e-3)?;
    let steps: usize = args.get_or("steps", 0)?;

    let mut session = open_session(&args, path)?;

    let t0 = Instant::now();
    let entries = session.significant(resolution)?;
    let levels_elapsed = t0.elapsed();
    let dp_for_levels = session.dp_runs();
    // Force the cube (the quality columns need it) before reading its
    // provenance — a fully warm table may not have touched it yet.
    session.cube()?;
    let source = session.cube_source();

    {
        let cube = session.cube()?;
        writeln!(out, "memory: {}", describe_cube(cube, source))?;
        writeln!(
            out,
            "levels: {} significant (resolution {resolution}) in {:.1} ms ({})",
            entries.len(),
            levels_elapsed.as_secs_f64() * 1e3,
            if dp_for_levels == 0 {
                "warm .opart, zero DP runs".to_string()
            } else {
                "cold, dichotomy ran".to_string()
            }
        )?;
        writeln!(
            out,
            "{:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
            "p_low", "p_high", "areas", "loss_ratio", "gain_ratio", "reduction"
        )?;
        for e in &entries {
            let q = quality(cube, &e.partition);
            writeln!(
                out,
                "{:>12.4} {:>12.4} {:>10} {:>12.4} {:>12.4} {:>11.2}%",
                e.p_low,
                e.p_high,
                e.partition.len(),
                q.loss_ratio,
                q.gain_ratio,
                100.0 * q.complexity_reduction
            )?;
        }
    }

    if steps > 0 {
        // The interaction loop proper: DP-only re-runs on the warm cube.
        let before = session.dp_runs();
        let mut total = std::time::Duration::ZERO;
        let mut slowest = std::time::Duration::ZERO;
        for k in 0..=steps {
            let p = k as f64 / steps as f64;
            let t = Instant::now();
            let _ = session.partition_at(p, false)?;
            let d = t.elapsed();
            total += d;
            slowest = slowest.max(d);
        }
        let ran = session.dp_runs() - before;
        writeln!(
            out,
            "\nsweep:  {} re-aggregations over p in [0, 1] ({} DP runs, {} cached)",
            steps + 1,
            ran,
            steps + 1 - ran
        )?;
        writeln!(
            out,
            "        total {:.1} ms, mean {:.2} ms, worst {:.2} ms",
            total.as_secs_f64() * 1e3,
            total.as_secs_f64() * 1e3 / (steps + 1) as f64,
            slowest.as_secs_f64() * 1e3
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn sweeps_levels_and_grid() {
        let p = fixture_trace("sweep");
        let text = run_ok(format!("{} --slices 10 --steps 4", p.display()));
        assert!(text.contains("significant"), "{text}");
        assert!(text.contains("re-aggregations"), "{text}");
        assert!(text.contains("5 DP runs"), "cold sweep runs every point");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_sweep_serves_levels_and_points_from_cache() {
        let p = fixture_trace("sweep-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-sweep-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!(
            "{} --slices 10 --steps 4 --cache {}",
            p.display(),
            cache.display()
        );
        let cold = run_ok(line.clone());
        assert!(cold.contains("cold, dichotomy ran"), "{cold}");
        let warm = run_ok(line);
        assert!(warm.contains("warm .opart, zero DP runs"), "{warm}");
        assert!(warm.contains("0 DP runs, 5 cached"), "{warm}");
        // The quality table itself must be identical.
        let table = |s: &str| {
            s.lines()
                .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&cold), table(&warm));
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_resolution_rejected() {
        let p = fixture_trace("sweep-res");
        let tokens: Vec<String> = format!("{} --resolution 1.5", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }
}
