//! `ocelotl sweep <trace>` — replay the paper's §V.B interaction loop:
//! one `Sweep` request enumerating the significant quality/p levels and
//! re-running the DP across a p grid.
//!
//! This is where "instantaneous interaction" lives: with a warm `.ocube`
//! the only work per grid point is the DP itself (no trace read, no
//! slicing, no prefix sums), and with a warm `.opart` the whole reply
//! arrives with zero DP runs. The printed tables come from the
//! deterministic reply; the wall-clock and DP-run lines are the command's
//! own measurement of this process (they are *not* part of the reply, so
//! every other byte is identical across cold, warm and server paths).

use crate::args::Args;
use crate::helpers::{open_engine, SESSION_OPTS};
use crate::proto::{request_from_args, write_sweep};
use crate::CliError;
use ocelotl::core::query::AnalysisReply;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const HELP: &str = "\
ocelotl sweep <trace|model.omm> [options]

Replay the SV.B quality/p curves: enumerate the significant aggregation
levels (with per-level quality), then optionally re-aggregate across an
even p grid — the paper's interaction loop as one protocol request.

OPTIONS:
    --slices N       time slices of the microscopic model (default 30)
    --slices-range L comma-separated slice counts (e.g. 30,60,120): run the
                     sweep at each resolution over ONE session — after the
                     first ingest every re-slice is served from the resident
                     hi-res model (or warm artifacts), zero extra disk passes
    --metric M       states | density (default states)
    --memory M       gain/loss cube backend: dense | lazy | auto (default auto)
    --cache DIR      persist session artifacts so the next run is warm
                     (default: OCELOTL_CACHE_DIR); --no-cache disables
    --cache-keep N   artifacts kept per trace and kind before GC (default 4)
    --resolution F   dichotomy resolution on p (default 1e-3)
    --steps N        also re-aggregate at N+1 evenly spaced p values
                     (default 0: skip)
    --json           print the reply as protocol JSON instead of text
";

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec!["help", "resolution", "steps", "slices-range"];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let path = Path::new(args.positional(0, "trace file")?);
    let request = request_from_args("sweep", &args)?;

    // `--slices-range A,B,…`: the §V.B refinement loop at varying
    // resolution — one session, re-sliced in memory between sweeps.
    let slice_counts: Vec<usize> = match args.get("slices-range")? {
        Some(list) => {
            let parsed: Result<Vec<usize>, _> =
                list.split(',').map(|t| t.trim().parse::<usize>()).collect();
            let counts = parsed
                .map_err(|_| CliError::Usage(format!("invalid --slices-range value {list:?}")))?;
            if counts.is_empty() || counts.contains(&0) {
                return Err(CliError::Usage(
                    "--slices-range expects comma-separated counts >= 1".into(),
                ));
            }
            counts
        }
        None => Vec::new(),
    };

    let mut engine = open_engine(&args, path)?;
    let t0 = Instant::now();
    let mut replies = Vec::new();
    if slice_counts.is_empty() {
        replies.push((None, engine.execute(&request)?));
    } else {
        for &n in &slice_counts {
            let reslice = engine.execute(&ocelotl::core::query::AnalysisRequest::Reslice {
                n_slices: n,
                range: None,
            })?;
            replies.push((Some((n, reslice)), engine.execute(&request)?));
        }
    }
    let elapsed = t0.elapsed();
    let dp_runs = engine.session_mut().dp_runs();

    if args.has("json") {
        // Each resolution emits its reslice reply line (identifying the
        // slicing) followed by the sweep reply line, so the JSON stream
        // carries everything the text headers do.
        for (reslice, reply) in replies {
            if let Some((_, reslice)) = reslice {
                writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reslice)))?;
            }
            writeln!(out, "{}", ocelotl::format::encode_reply(&Ok(reply)))?;
        }
        return Ok(());
    }
    let mut queries = 0;
    for (i, (n, reply)) in replies.iter().enumerate() {
        let AnalysisReply::Sweep(sweep) = reply else {
            unreachable!("sweep request yields a sweep reply");
        };
        if let Some((n, _)) = n {
            if i > 0 {
                writeln!(out)?;
            }
            writeln!(out, "== {n} slices ==")?;
        }
        write_sweep(sweep, out)?;
        queries += sweep.levels.len() + sweep.points.len();
    }
    writeln!(
        out,
        "\ntiming: {} queries in {:.1} ms ({})",
        queries,
        elapsed.as_secs_f64() * 1e3,
        if dp_runs == 0 {
            "warm .opart, zero DP runs".to_string()
        } else {
            format!("{dp_runs} DP runs")
        }
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::fixture_trace;

    fn run_ok(line: String) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn sweeps_levels_and_grid() {
        let p = fixture_trace("sweep");
        let text = run_ok(format!("{} --slices 10 --steps 4", p.display()));
        assert!(text.contains("significant"), "{text}");
        assert!(text.contains("sweep grid (5 points)"), "{text}");
        assert!(text.contains("DP runs"), "{text}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn warm_sweep_serves_everything_from_cache() {
        let p = fixture_trace("sweep-warm");
        let cache = std::env::temp_dir().join(format!("ocelotl-sweep-warm-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let line = format!(
            "{} --slices 10 --steps 4 --cache {}",
            p.display(),
            cache.display()
        );
        let cold = run_ok(line.clone());
        let warm = run_ok(line);
        assert!(warm.contains("warm .opart, zero DP runs"), "{warm}");
        // Everything except the local timing line is byte-identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("timing:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn slices_range_sweeps_multiple_resolutions_in_one_session() {
        let p = fixture_trace("sweep-range");
        let text = run_ok(format!("{} --slices-range 10,20 --steps 2", p.display()));
        assert!(text.contains("== 10 slices =="), "{text}");
        assert!(text.contains("== 20 slices =="), "{text}");
        assert!(text.contains("timing:"), "{text}");

        // The JSON stream identifies each resolution: one reslice reply
        // line precedes each sweep reply line.
        let json = run_ok(format!(
            "{} --slices-range 10,20 --steps 2 --json",
            p.display()
        ));
        let kinds: Vec<String> = json
            .lines()
            .map(|l| {
                ocelotl::format::decode_reply(l)
                    .unwrap()
                    .unwrap()
                    .kind()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, ["reslice", "sweep", "reslice", "sweep"], "{json}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_slices_range_rejected() {
        let p = fixture_trace("sweep-badrange");
        for bad in ["x", "10,0", ""] {
            let tokens: Vec<String> =
                vec![p.display().to_string(), "--slices-range".into(), bad.into()];
            let mut out = Vec::new();
            assert!(
                matches!(run(&tokens, &mut out), Err(CliError::Usage(_))),
                "{bad:?}"
            );
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_resolution_rejected() {
        let p = fixture_trace("sweep-res");
        let tokens: Vec<String> = format!("{} --resolution 1.5", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));
        std::fs::remove_file(&p).ok();
    }
}
