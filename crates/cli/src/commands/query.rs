//! `ocelotl query` — the thin client of a running `ocelotl serve`: build
//! one protocol request from the command line, send it, print the reply
//! through the same printers the direct commands use (so a remote answer
//! is byte-identical to a local one).

use crate::args::Args;
use crate::helpers::{session_config, SESSION_OPTS};
use crate::proto::{print_reply, request_from_args};
use crate::CliError;
use ocelotl::core::query::AnalysisRequest;
use std::io::{BufRead, BufReader, Write};

const HELP: &str = "\
ocelotl query <addr> <trace> <kind> [options]

Send one analysis request to a running `ocelotl serve` and print the
reply. <addr> is host:port (TCP) or unix:/path/to.sock; <trace> is the
trace path as visible to the *server*; <kind> is one of:

    describe | aggregate | significant | sweep | pvalues | inspect |
    render-overview | stats | reslice

OPTIONS (per kind, matching the direct commands):
    --slices N --metric M --memory M          session parameters
    --p F --coarse --compare --diff-p F       aggregate
    --resolution F                            significant | sweep | pvalues
    --steps N                                 sweep
    --leaf N --slice K --p F                  inspect
    --p F --min-rows F                        render-overview
    --to N [--t0 F --t1 F]                    reslice (new |T|, opt. window)
    --json                                    print the raw reply line
";

/// Send one request line and read one reply line over the given address.
pub fn roundtrip(addr: &str, line: &str) -> Result<String, CliError> {
    let mut reply = String::new();
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            use std::os::unix::net::UnixStream;
            let mut stream = UnixStream::connect(path)
                .map_err(|e| CliError::Invalid(format!("cannot connect to {path}: {e}")))?;
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
            let mut reader = BufReader::new(stream);
            reader.read_line(&mut reply)?;
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(CliError::Usage(
                "unix: addresses need Unix domain sockets; use host:port".into(),
            ));
        }
    } else {
        let mut stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
        // One small request, one small reply: without TCP_NODELAY, Nagle
        // plus delayed ACKs costs tens of ms per round-trip.
        let _ = stream.set_nodelay(true);
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut reply)?;
    }
    if reply.trim().is_empty() {
        return Err(CliError::Invalid("server closed without replying".into()));
    }
    Ok(reply.trim_end().to_string())
}

/// Send many request lines over ONE pipelined connection and read the
/// matching replies — the server guarantees the i-th reply answers the
/// i-th request (see `serve::serve_lines`). Exposed for tests/benches.
pub fn roundtrip_many(addr: &str, lines: &[String]) -> Result<Vec<String>, CliError> {
    fn pipelined<S: std::io::Read + Write>(
        mut stream: S,
        reader: S,
        lines: &[String],
    ) -> Result<Vec<String>, CliError> {
        // Requests are small; write them all up front (the server reads
        // ahead, bounded by its pipeline depth), then drain the replies.
        for line in lines {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        let mut reader = BufReader::new(reader);
        let mut replies = Vec::with_capacity(lines.len());
        for _ in lines {
            let mut reply = String::new();
            reader.read_line(&mut reply)?;
            if reply.trim().is_empty() {
                return Err(CliError::Invalid("server closed without replying".into()));
            }
            replies.push(reply.trim_end().to_string());
        }
        Ok(replies)
    }
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            use std::os::unix::net::UnixStream;
            let stream = UnixStream::connect(path)
                .map_err(|e| CliError::Invalid(format!("cannot connect to {path}: {e}")))?;
            let reader = stream.try_clone()?;
            pipelined(stream, reader, lines)
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(CliError::Usage(
                "unix: addresses need Unix domain sockets; use host:port".into(),
            ))
        }
    } else {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        pipelined(stream, reader, lines)
    }
}

/// Build the wire line for one invocation (exposed for tests/benches).
pub fn wire_line(args: &Args, trace: &str, kind: &str) -> Result<String, CliError> {
    let request: AnalysisRequest = request_from_args(kind, args)?;
    let config = session_config(args)?;
    Ok(ocelotl::format::encode_wire_request(
        trace, &config, &request,
    ))
}

/// Entry point.
pub fn run(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    if args.has("help") {
        out.write_all(HELP.as_bytes())?;
        return Ok(());
    }
    let mut known = vec![
        "help",
        "p",
        "coarse",
        "compare",
        "diff-p",
        "resolution",
        "steps",
        "leaf",
        "slice",
        "min-rows",
        "to",
        "t0",
        "t1",
    ];
    known.extend(SESSION_OPTS);
    args.expect_known(&known)?;
    let addr = args.positional(0, "server address")?;
    let trace = args.positional(1, "trace path (as seen by the server)")?;
    let kind = args.positional(2, "request kind")?;

    let line = wire_line(&args, trace, kind)?;
    let reply_line = roundtrip(addr, &line)?;
    if args.has("json") {
        writeln!(out, "{reply_line}")?;
        return Ok(());
    }
    match ocelotl::format::decode_reply(&reply_line)? {
        Ok(reply) => print_reply(&reply, out),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::serve::{spawn_tcp, ServeOptions};
    use crate::helpers::fixture_trace;

    #[test]
    fn query_round_trips_against_a_live_server() {
        let p = fixture_trace("query-live");
        let server = spawn_tcp("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.address();

        let tokens: Vec<String> = format!("{addr} {} aggregate --slices 10 --p 0.4", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("aggregates:"), "{text}");

        // Server-side errors surface with CLI exit semantics.
        let tokens: Vec<String> = format!("{addr} {} aggregate --p 7", p.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Usage(_))));

        server.stop();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_server_is_invalid() {
        let tokens: Vec<String> = "127.0.0.1:1 /tmp/x.btf describe"
            .split_whitespace()
            .map(String::from)
            .collect();
        let mut out = Vec::new();
        assert!(matches!(run(&tokens, &mut out), Err(CliError::Invalid(_))));
    }
}
