//! The CLI's side of the query protocol: build [`AnalysisRequest`]s from
//! parsed arguments and print [`AnalysisReply`]s.
//!
//! Every analysis command is `request builder → engine/server → printer`.
//! There is exactly **one** printer per reply kind, shared by the direct
//! commands and the `ocelotl query` client, so the cold CLI path, a warm
//! cached run and a server answer can never format differently. Printers
//! consume only reply fields (never sessions, cubes or clocks) — the
//! replies are deterministic, therefore so is every printed byte.

use crate::args::Args;
use crate::CliError;
use ocelotl::core::query::{
    AggregateReply, AnalysisReply, AnalysisRequest, DescribeReply, InspectReply, LevelReply,
    PValuesReply, ResliceReply, SignificantReply, StatsReply, SweepReply,
};
use ocelotl::viz::{render_reply_ascii, AsciiOptions};
use std::io::Write;

/// Map protocol errors onto CLI exit semantics: bad parameters are usage
/// errors (exit 2), everything else is an invalid invocation (exit 1).
impl From<ocelotl::core::QueryError> for CliError {
    fn from(e: ocelotl::core::QueryError) -> Self {
        match e {
            ocelotl::core::QueryError::InvalidRequest(m) => CliError::Usage(m),
            other => CliError::Invalid(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Request builders
// ---------------------------------------------------------------------------

/// Build an `Aggregate` request from the shared option set
/// (`--p`, `--coarse`, `--compare`, `--diff-p`).
pub fn aggregate_request(args: &Args) -> Result<AnalysisRequest, CliError> {
    let diff_p = match args.get("diff-p")? {
        Some(s) => Some(
            s.parse()
                .map_err(|_| CliError::Usage(format!("invalid --diff-p value {s:?}")))?,
        ),
        None => None,
    };
    Ok(AnalysisRequest::Aggregate {
        p: args.get_or("p", 0.5)?,
        coarse: args.has("coarse"),
        compare: args.has("compare"),
        diff_p,
    })
}

/// Build any request kind from its tag and the option set — what
/// `ocelotl query <addr> <trace> <kind>` uses. The per-kind options are
/// exactly the ones the corresponding direct command accepts.
pub fn request_from_args(kind: &str, args: &Args) -> Result<AnalysisRequest, CliError> {
    match kind {
        "describe" => Ok(AnalysisRequest::Describe),
        "aggregate" => aggregate_request(args),
        "significant" => Ok(AnalysisRequest::Significant {
            resolution: args.get_or("resolution", 1e-3)?,
        }),
        "sweep" => Ok(AnalysisRequest::Sweep {
            resolution: args.get_or("resolution", 1e-3)?,
            steps: args.get_or("steps", 0)?,
        }),
        "pvalues" => Ok(AnalysisRequest::PValues {
            resolution: args.get_or("resolution", 1e-3)?,
        }),
        "inspect" => Ok(AnalysisRequest::Inspect {
            leaf: args.require("leaf")?,
            slice: args.require("slice")?,
            p: args.get_or("p", 0.5)?,
            coarse: args.has("coarse"),
        }),
        "render-overview" => Ok(AnalysisRequest::RenderOverview {
            p: args.get_or("p", 0.5)?,
            coarse: args.has("coarse"),
            min_rows: args.get_or("min-rows", 0.0)?,
            level_resolution: match args.get("level-resolution")? {
                Some(s) => Some(s.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --level-resolution value {s:?}"))
                })?),
                None => None,
            },
        }),
        "stats" => Ok(AnalysisRequest::Stats),
        "reslice" => {
            let range = match (args.get("t0")?, args.get("t1")?) {
                (None, None) => None,
                (Some(t0), Some(t1)) => {
                    let parse = |s: &str, what: &str| {
                        s.parse::<f64>()
                            .map_err(|_| CliError::Usage(format!("invalid {what} value {s:?}")))
                    };
                    Some((parse(t0, "--t0")?, parse(t1, "--t1")?))
                }
                _ => {
                    return Err(CliError::Usage(
                        "a re-slice window needs both --t0 and --t1".into(),
                    ))
                }
            };
            Ok(AnalysisRequest::Reslice {
                n_slices: args.require("to")?,
                range,
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown request kind {other:?} (one of: {})",
            AnalysisRequest::KINDS.join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------------
// Printers
// ---------------------------------------------------------------------------

/// Human-readable rendering of any reply (the `ocelotl query` default).
/// Overview replies render as ASCII; every other kind has a dedicated
/// fixed-width printer.
pub fn print_reply(reply: &AnalysisReply, out: &mut dyn Write) -> Result<(), CliError> {
    match reply {
        AnalysisReply::Describe(d) => write_describe(d, out),
        AnalysisReply::Aggregate(a) => write_aggregate(a, out, 0),
        AnalysisReply::Significant(s) => write_significant(s, out),
        AnalysisReply::Sweep(s) => write_sweep(s, out),
        AnalysisReply::PValues(p) => write_pvalues(p, out),
        AnalysisReply::Inspect(i) => write_inspect(i, out),
        AnalysisReply::Overview(o) => {
            out.write_all(render_reply_ascii(o, &AsciiOptions::default()).as_bytes())?;
            Ok(())
        }
        AnalysisReply::Stats(s) => write_stats(s, out),
        AnalysisReply::Reslice(r) => write_reslice(r, out),
        AnalysisReply::Watch(w) => {
            writeln!(
                out,
                "refresh:     #{} at {} events{}",
                w.seq,
                w.events,
                if w.done { " (final)" } else { "" }
            )?;
            print_reply(&w.reply, out)
        }
    }
}

/// `reslice` output: the new active resolution and model shape.
pub fn write_reslice(r: &ResliceReply, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "resliced:    {} slices (hi-res grid: {} slices)",
        r.n_slices, r.hi_slices
    )?;
    if let Some((t0, t1)) = r.window {
        writeln!(
            out,
            "window:      [{t0:.6}, {t1:.6}] s (snapped to the hi-res grid)"
        )?;
    }
    writeln!(
        out,
        "model:       {} resources x {} slices x {} states ({} metric)",
        r.shape.n_leaves, r.shape.n_slices, r.shape.n_states, r.shape.metric
    )?;
    writeln!(
        out,
        "time range:  [{:.6}, {:.6}] s",
        r.shape.t_start, r.shape.t_end
    )?;
    Ok(())
}

/// `describe` output: model shape, hierarchy, states.
pub fn write_describe(d: &DescribeReply, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "model:       {} resources x {} slices x {} states ({} metric)",
        d.shape.n_leaves, d.shape.n_slices, d.shape.n_states, d.shape.metric
    )?;
    writeln!(
        out,
        "time range:  [{:.6}, {:.6}] s",
        d.shape.t_start, d.shape.t_end
    )?;
    writeln!(
        out,
        "hierarchy:   {} nodes, depth {}",
        d.hierarchy_nodes, d.hierarchy_depth
    )?;
    writeln!(out, "memory:      {} (resolved backend)", d.backend)?;
    writeln!(out, "states:      {}", d.states.len())?;
    for name in &d.states {
        writeln!(out, "  {name}")?;
    }
    Ok(())
}

/// **The** `aggregate` formatter — the only function that turns an
/// [`AggregateReply`] into human-readable text. Cold, warm and server
/// paths all print through here, pinning their bytes together. `list > 0`
/// appends the top-`list` aggregates by cell count.
pub fn write_aggregate(
    a: &AggregateReply,
    out: &mut dyn Write,
    list: usize,
) -> Result<(), CliError> {
    writeln!(
        out,
        "model:       {} resources x {} slices x {} states ({} metric)",
        a.shape.n_leaves, a.shape.n_slices, a.shape.n_states, a.shape.metric
    )?;
    writeln!(out, "p:           {}", a.p)?;
    writeln!(
        out,
        "memory:      {} ({:.1} MiB resident)",
        a.backend,
        a.backend_bytes as f64 / (1u64 << 20) as f64
    )?;
    writeln!(
        out,
        "aggregates:  {} (of {} microscopic cells)",
        a.summary.n_areas, a.summary.n_cells
    )?;
    writeln!(
        out,
        "complexity:  -{:.2} %",
        100.0 * a.summary.complexity_reduction
    )?;
    writeln!(
        out,
        "information: loss {:.6} bits (ratio {:.4}), gain {:.6} bits (ratio {:.4})",
        a.summary.loss, a.summary.loss_ratio, a.summary.gain, a.summary.gain_ratio
    )?;
    writeln!(out, "pIC:         {:.6}", a.summary.pic)?;

    if list > 0 {
        writeln!(out, "\ntop {list} aggregates by cell count:")?;
        // The table format lives in one place (core::inspect); stable
        // sort keeps canonical partition order among equal cell counts,
        // matching the historical in-process summary.
        out.write_all(ocelotl::core::area_table_header().as_bytes())?;
        let mut rows: Vec<_> = a.areas.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.n_cells()));
        for r in rows.into_iter().take(list) {
            out.write_all(
                ocelotl::core::area_table_row(
                    &r.path,
                    r.n_resources,
                    r.first_slice,
                    r.last_slice,
                    r.mode.as_deref(),
                    r.confidence,
                    r.loss,
                    r.gain,
                )
                .as_bytes(),
            )?;
        }
    }

    if !a.baselines.is_empty() {
        writeln!(out, "\nbaseline comparison at p = {} (SIII.D):", a.p)?;
        writeln!(out, "{:<28} {:>8} {:>14}", "partition", "areas", "pIC")?;
        for b in &a.baselines {
            writeln!(out, "{:<28} {:>8} {:>14.6}", b.name, b.n_areas, b.pic)?;
        }
    }

    if let Some(d) = &a.diff {
        writeln!(
            out,
            "\noverview change from p = {} to p = {}:",
            a.p, d.p_other
        )?;
        writeln!(
            out,
            "  areas:                    {} -> {}",
            a.summary.n_areas, d.n_areas_other
        )?;
        writeln!(
            out,
            "  variation of information: {:.4} bits",
            d.variation_of_information
        )?;
        writeln!(
            out,
            "  normalized mutual info:   {:.4}",
            d.normalized_mutual_information
        )?;
        writeln!(out, "  Rand index:               {:.4}", d.rand_index)?;
    }
    Ok(())
}

fn write_level_table(
    levels: &[LevelReply],
    resolution: f64,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{} significant levels (resolution {resolution}):",
        levels.len()
    )?;
    writeln!(
        out,
        "{:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "p_low", "p_high", "areas", "loss_ratio", "gain_ratio", "reduction"
    )?;
    for l in levels {
        writeln!(
            out,
            "{:>12.4} {:>12.4} {:>10} {:>12.4} {:>12.4} {:>11.2}%",
            l.p_low,
            l.p_high,
            l.n_areas,
            l.loss_ratio,
            l.gain_ratio,
            100.0 * l.complexity_reduction
        )?;
    }
    Ok(())
}

/// `pvalues` output: the level table.
pub fn write_significant(s: &SignificantReply, out: &mut dyn Write) -> Result<(), CliError> {
    write_level_table(&s.levels, s.resolution, out)
}

/// `sweep` output: the level table plus the grid summary (wall-clock
/// timings are the command's own decoration, not part of the reply).
pub fn write_sweep(s: &SweepReply, out: &mut dyn Write) -> Result<(), CliError> {
    write_level_table(&s.levels, s.resolution, out)?;
    if !s.points.is_empty() {
        writeln!(out, "\nsweep grid ({} points):", s.points.len())?;
        writeln!(out, "{:>8} {:>10} {:>14}", "p", "areas", "pIC")?;
        for pt in &s.points {
            writeln!(out, "{:>8.3} {:>10} {:>14.6}", pt.p, pt.n_areas, pt.pic)?;
        }
    }
    Ok(())
}

/// Bare significant-boundary listing.
pub fn write_pvalues(p: &PValuesReply, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{} significant p values (resolution {}):",
        p.ps.len(),
        p.resolution
    )?;
    for v in &p.ps {
        writeln!(out, "{v:.6}")?;
    }
    Ok(())
}

/// `inspect` output: one aggregate in full.
pub fn write_inspect(i: &InspectReply, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "aggregate covering (leaf {}, slice {}):",
        i.leaf, i.slice
    )?;
    writeln!(out, "  node:        {}", i.area.path)?;
    writeln!(
        out,
        "  interval:    slices [{}, {}] = [{:.4}, {:.4}] s",
        i.area.first_slice, i.area.last_slice, i.area.t0, i.area.t1
    )?;
    writeln!(
        out,
        "  size:        {} resources x {} slices",
        i.area.n_resources, i.n_slices_spanned
    )?;
    match &i.area.mode {
        Some(m) => writeln!(
            out,
            "  mode:        {m} (confidence {:.3})",
            i.area.confidence
        )?,
        None => writeln!(out, "  mode:        (idle)")?,
    }
    writeln!(
        out,
        "  measures:    loss {:.6} bits, gain {:.6} bits",
        i.area.loss, i.area.gain
    )?;
    writeln!(out, "  state proportions (Eq. 1):")?;
    for (name, rho) in &i.proportions {
        if *rho > 0.0 {
            writeln!(out, "    {rho:>8.4}  {name}")?;
        }
    }
    Ok(())
}

/// `info --stats` output: the deterministic ingestion telemetry (the
/// command adds wall-clock lines it measures itself).
pub fn write_stats(s: &StatsReply, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "events:      {} ({} intervals, {} points)",
        s.events, s.intervals, s.points
    )?;
    writeln!(
        out,
        "time range:  [{:.6}, {:.6}] s",
        s.shape.t_start, s.shape.t_end
    )?;
    writeln!(
        out,
        "resources:   {} leaves, {} hierarchy nodes, depth {}",
        s.shape.n_leaves, s.hierarchy_nodes, s.hierarchy_depth
    )?;
    writeln!(
        out,
        "model:       {} x {} x {} cells ({} metric, {} slices)",
        s.shape.n_leaves, s.shape.n_slices, s.shape.n_states, s.shape.metric, s.shape.n_slices
    )?;
    writeln!(out, "ingestion (streaming, events never materialized):")?;
    writeln!(out, "  mode:              {}", s.mode)?;
    writeln!(out, "  format:            {}", s.format)?;
    writeln!(out, "  shards:            {}", s.shard_count)?;
    if s.shard_count > 1 {
        for (i, b) in s.shard_bytes.iter().enumerate() {
            writeln!(out, "    shard {i}:         {b} bytes")?;
        }
    }
    if s.chunks_total > 0 {
        writeln!(
            out,
            "  chunks:            {} of {} read ({} bytes skipped)",
            s.chunks_read, s.chunks_total, s.bytes_skipped
        )?;
    }
    writeln!(out, "  bytes read:        {}", s.bytes_read)?;
    writeln!(
        out,
        "  peak model memory: {} bytes (O(model), not O(events))",
        s.peak_bytes
    )?;
    writeln!(out, "  fingerprint:       {}", s.fingerprint)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_is_usage_error() {
        let args = Args::parse(&[]).unwrap();
        assert!(matches!(
            request_from_args("frobnicate", &args),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn kinds_build_with_defaults() {
        let args = Args::parse(&[]).unwrap();
        for kind in [
            "describe",
            "aggregate",
            "significant",
            "sweep",
            "pvalues",
            "stats",
        ] {
            let req = request_from_args(kind, &args).unwrap();
            assert_eq!(req.kind(), kind);
        }
        // inspect requires --leaf/--slice; reslice requires --to.
        assert!(matches!(
            request_from_args("inspect", &args),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            request_from_args("reslice", &args),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn reslice_request_parses_target_and_window() {
        let args = Args::parse(&["--to".into(), "60".into()]).unwrap();
        assert_eq!(
            request_from_args("reslice", &args).unwrap(),
            AnalysisRequest::Reslice {
                n_slices: 60,
                range: None
            }
        );
        let args = Args::parse(&[
            "--to".into(),
            "24".into(),
            "--t0".into(),
            "1.5".into(),
            "--t1".into(),
            "3.0".into(),
        ])
        .unwrap();
        assert_eq!(
            request_from_args("reslice", &args).unwrap(),
            AnalysisRequest::Reslice {
                n_slices: 24,
                range: Some((1.5, 3.0))
            }
        );
        // A half-specified window is a usage error.
        let args = Args::parse(&["--to".into(), "24".into(), "--t0".into(), "1.0".into()]).unwrap();
        assert!(matches!(
            request_from_args("reslice", &args),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn query_error_maps_to_cli_error() {
        let e: CliError = ocelotl::core::QueryError::InvalidRequest("p".into()).into();
        assert!(matches!(e, CliError::Usage(_)));
        let e: CliError = ocelotl::core::QueryError::Protocol("x".into()).into();
        assert!(matches!(e, CliError::Invalid(_)));
    }
}
