//! The `ocelotl` binary: thin wrapper around [`ocelotl_cli::run`].

use std::io::Write as _;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(err) = ocelotl_cli::run(&argv, &mut out) {
        // Downstream `| head` closing the pipe is not an error.
        if let ocelotl_cli::CliError::Io(e) = &err {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                return;
            }
        }
        let _ = out.flush();
        eprintln!("{err}");
        std::process::exit(err.exit_code());
    }
}
