//! Minimal long-option argument parser (no external dependencies).
//!
//! Grammar: positional arguments and `--key [value]` pairs. A token after a
//! `--key` that does not itself start with `--` is taken as the key's value;
//! otherwise the key is a bare switch. `--` ends option parsing (everything
//! after is positional).

use crate::CliError;
use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, Option<String>>,
}

impl Args {
    /// Parse raw tokens (without the program and subcommand names).
    pub fn parse(tokens: &[String]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut only_positional = false;
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if only_positional || !tok.starts_with("--") {
                args.positional.push(tok.clone());
                i += 1;
                continue;
            }
            if tok == "--" {
                only_positional = true;
                i += 1;
                continue;
            }
            let key = tok.trim_start_matches("--").to_string();
            if key.is_empty() {
                return Err(CliError::Usage("empty option name".into()));
            }
            let value = match tokens.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 1;
                    Some(next.clone())
                }
                _ => None,
            };
            if args.options.insert(key.clone(), value).is_some() {
                return Err(CliError::Usage(format!("duplicate option --{key}")));
            }
            i += 1;
        }
        Ok(args)
    }

    /// Positional argument `idx`, or a usage error naming what is missing.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, CliError> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    /// True when `--key` was given (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// String value of `--key value`, if given.
    pub fn get(&self, key: &str) -> Result<Option<&str>, CliError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v.as_str())),
            Some(None) => Err(CliError::Usage(format!("--{key} expects a value"))),
        }
    }

    /// Parsed value of `--key value` with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key)? {
            None => Ok(default),
            Some(s) => s
                .parse::<T>()
                .map_err(|_| CliError::Usage(format!("invalid value for --{key}: {s:?}"))),
        }
    }

    /// Required `--key value`, parsed.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        match self.get(key)? {
            None => Err(CliError::Usage(format!("missing required --{key}"))),
            Some(s) => s
                .parse::<T>()
                .map_err(|_| CliError::Usage(format!("invalid value for --{key}: {s:?}"))),
        }
    }

    /// Reject unknown options (call with the full list of accepted keys).
    pub fn expect_known(&self, known: &[&str]) -> Result<(), CliError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(CliError::Usage(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let a = Args::parse(&toks("trace.btf --slices 30 --coarse --p 0.5")).unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "trace.btf");
        assert_eq!(a.get_or("slices", 0usize).unwrap(), 30);
        assert!(a.has("coarse"));
        // Asking a bare switch for a value is an error; `has` is the query.
        assert!(matches!(a.get("coarse"), Err(CliError::Usage(_))));
        assert_eq!(a.get_or("p", 0.0f64).unwrap(), 0.5);
    }

    #[test]
    fn switch_followed_by_option_takes_no_value() {
        let a = Args::parse(&toks("--ascii --width 80")).unwrap();
        assert!(a.has("ascii"));
        assert_eq!(a.get_or("width", 0usize).unwrap(), 80);
        assert!(!a.has("missing"));
        assert_eq!(a.get("missing").unwrap(), None);
    }

    #[test]
    fn double_dash_ends_options() {
        let a = Args::parse(&toks("-- --slices")).unwrap();
        assert_eq!(a.positional(0, "x").unwrap(), "--slices");
        assert!(!a.has("slices"));
    }

    #[test]
    fn missing_positional_is_usage_error() {
        let a = Args::parse(&toks("--slices 30")).unwrap();
        assert!(matches!(a.positional(0, "input"), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_value_for_valued_option() {
        let a = Args::parse(&toks("--slices")).unwrap();
        assert!(matches!(a.get("slices"), Err(CliError::Usage(_))));
        // But `has` still sees the switch.
        assert!(a.has("slices"));
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(Args::parse(&toks("--p 0.1 --p 0.2")).is_err());
    }

    #[test]
    fn invalid_numeric_value() {
        let a = Args::parse(&toks("--slices abc")).unwrap();
        assert!(matches!(
            a.get_or("slices", 1usize),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_options_flagged() {
        let a = Args::parse(&toks("--unknwon 1")).unwrap();
        assert!(a.expect_known(&["slices", "p"]).is_err());
        let b = Args::parse(&toks("--slices 3")).unwrap();
        assert!(b.expect_known(&["slices"]).is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(&toks("")).unwrap();
        assert!(matches!(
            a.require::<usize>("case"),
            Err(CliError::Usage(_))
        ));
    }
}
