//! Shared plumbing for the subcommands: trace loading with `.paje`
//! dispatch, metric selection, and model/input construction.

use crate::CliError;
use ocelotl::core::{aggregate, CubeBackend, CutTree, DpConfig, MemoryMode, QualityCube};
use ocelotl::trace::{event_density_auto, MicroModel, Trace};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Which microscopic metric to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// State-time proportions (the paper's model).
    #[default]
    States,
    /// Peak-normalized event counts (the predecessor work's model).
    Density,
}

impl std::str::FromStr for Metric {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "states" => Ok(Metric::States),
            "density" => Ok(Metric::Density),
            other => Err(format!("unknown metric {other:?} (states|density)")),
        }
    }
}

/// True when the path names a Pajé trace (`.paje` / `.trace`).
fn is_paje(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("paje") | Some("trace")
    )
}

/// Load a trace, dispatching `.paje`/`.trace` files to the Pajé reader and
/// everything else to the sniffing `.btf`/`.ptf` reader.
pub fn load_trace(path: &Path) -> Result<Trace, CliError> {
    if !path.exists() {
        return Err(CliError::Invalid(format!(
            "no such file: {}",
            path.display()
        )));
    }
    if is_paje(path) {
        let r = BufReader::with_capacity(1 << 20, File::open(path)?);
        return Ok(ocelotl::format::read_paje(r)?);
    }
    Ok(ocelotl::format::read_trace(path)?)
}

/// Write a trace, dispatching on the output extension (`.paje`/`.trace` →
/// Pajé, `.ptf` → text, anything else → binary).
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), CliError> {
    if is_paje(path) {
        let mut w = std::io::BufWriter::new(File::create(path)?);
        ocelotl::format::write_paje(trace, &mut w)?;
        use std::io::Write as _;
        w.flush()?;
        return Ok(());
    }
    ocelotl::format::write_trace(trace, path)?;
    Ok(())
}

/// Build the microscopic model for the chosen metric.
pub fn build_model(trace: &Trace, n_slices: usize, metric: Metric) -> Result<MicroModel, CliError> {
    let model = match metric {
        Metric::States => MicroModel::from_trace(trace, n_slices),
        Metric::Density => event_density_auto(trace, n_slices),
    };
    model.ok_or_else(|| CliError::Invalid("trace has no events to slice".into()))
}

/// True when the path names a cached microscopic model (`.omm`).
pub fn is_micro_cache(path: &Path) -> bool {
    matches!(path.extension().and_then(|e| e.to_str()), Some("omm"))
}

/// Obtain the microscopic model behind a path: `.omm` caches load directly
/// (their grid/metric were fixed at `describe` time; `n_slices`/`metric`
/// are ignored), anything else is read as a trace and sliced.
pub fn obtain_model(path: &Path, n_slices: usize, metric: Metric) -> Result<MicroModel, CliError> {
    if is_micro_cache(path) {
        if !path.exists() {
            return Err(CliError::Invalid(format!(
                "no such file: {}",
                path.display()
            )));
        }
        return Ok(ocelotl::format::load_micro(path)?);
    }
    let trace = load_trace(path)?;
    build_model(&trace, n_slices, metric)
}

/// Run Algorithm 1 with the CLI's knobs.
pub fn run_dp<C: QualityCube>(input: &C, p: f64, coarse: bool) -> Result<CutTree, CliError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::Usage(format!("--p must lie in [0, 1], got {p}")));
    }
    let config = if coarse {
        DpConfig::coarse_ties()
    } else {
        DpConfig::default()
    };
    Ok(aggregate(input, p, &config))
}

/// Build the gain/loss cube for the chosen `--memory` mode.
///
/// `auto` sizes the dense triangular matrices against the 1 GiB default
/// ceiling and falls back to the lazy (prefix-sums-only) backend beyond it.
pub fn build_cube(model: &MicroModel, mode: MemoryMode) -> CubeBackend {
    CubeBackend::build(model, mode)
}

/// One-line description of the cube a command ended up using.
pub fn describe_cube(cube: &CubeBackend) -> String {
    let mode = match cube.mode() {
        MemoryMode::Dense => "dense",
        MemoryMode::Lazy => "lazy",
        MemoryMode::Auto => unreachable!("a built cube has a fixed mode"),
    };
    format!(
        "{mode} ({:.1} MiB resident)",
        cube.memory_bytes() as f64 / (1u64 << 20) as f64
    )
}

/// A small deterministic test trace written to a temp file; returns the
/// path (callers clean up). Only compiled for tests.
#[cfg(test)]
pub fn fixture_trace(name: &str) -> std::path::PathBuf {
    use ocelotl::prelude::*;
    let mut b = TraceBuilder::new(Hierarchy::balanced(&[2, 2]));
    let run = b.state("Run");
    let wait = b.state("MPI_Wait");
    for leaf in 0..4u32 {
        for k in 0..10 {
            let t = k as f64;
            let state = if leaf == 3 && (4..7).contains(&k) {
                wait
            } else {
                run
            };
            b.push_state(LeafId(leaf), state, t, t + 1.0);
        }
    }
    b.push_meta("app", "fixture");
    let trace = b.build();
    let path = std::env::temp_dir().join(format!(
        "ocelotl-cli-{}-{}-{name}.btf",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    ocelotl::format::write_trace(&trace, &path).unwrap();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_parses() {
        assert_eq!("states".parse::<Metric>().unwrap(), Metric::States);
        assert_eq!("density".parse::<Metric>().unwrap(), Metric::Density);
        assert!("x".parse::<Metric>().is_err());
    }

    #[test]
    fn load_missing_file_is_invalid() {
        let err = load_trace(Path::new("/nonexistent/zzz.btf")).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)));
    }

    #[test]
    fn fixture_roundtrips_via_all_formats() {
        let src = fixture_trace("roundtrip");
        let t = load_trace(&src).unwrap();
        for ext in ["ptf", "paje"] {
            let dst = src.with_extension(ext);
            save_trace(&t, &dst).unwrap();
            let back = load_trace(&dst).unwrap();
            assert_eq!(back.intervals.len(), t.intervals.len(), "{ext}");
            std::fs::remove_file(&dst).ok();
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn build_model_both_metrics() {
        let src = fixture_trace("metrics");
        let t = load_trace(&src).unwrap();
        let m1 = build_model(&t, 10, Metric::States).unwrap();
        let m2 = build_model(&t, 10, Metric::Density).unwrap();
        assert_eq!(m1.n_slices(), 10);
        assert_eq!(m2.n_slices(), 10);
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn run_dp_rejects_bad_p() {
        let src = fixture_trace("badp");
        let t = load_trace(&src).unwrap();
        let m = build_model(&t, 5, Metric::States).unwrap();
        let input = build_cube(&m, MemoryMode::Auto);
        assert!(run_dp(&input, 1.5, false).is_err());
        assert!(run_dp(&input, 0.5, true).is_ok());
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn cube_modes_build_and_describe() {
        let src = fixture_trace("cube-modes");
        let t = load_trace(&src).unwrap();
        let m = build_model(&t, 8, Metric::States).unwrap();
        let dense = build_cube(&m, MemoryMode::Dense);
        let lazy = build_cube(&m, MemoryMode::Lazy);
        assert!(describe_cube(&dense).starts_with("dense"));
        assert!(describe_cube(&lazy).starts_with("lazy"));
        // Tiny model: auto must stay dense.
        assert!(describe_cube(&build_cube(&m, MemoryMode::Auto)).starts_with("dense"));
        std::fs::remove_file(&src).ok();
    }
}
