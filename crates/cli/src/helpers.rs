//! Shared plumbing for the subcommands: the one streaming ingestion path
//! ([`obtain_report`], O(model) memory for every format) and the one
//! `AnalysisSession` construction path every analysis command
//! (`aggregate`, `pvalues`, `render`, `inspect`, `report`, `sweep`) goes
//! through.
//!
//! ## Session & caching workflow
//!
//! All analysis commands share the option set `--slices`, `--metric`,
//! `--memory`, `--cache DIR` and `--no-cache`, parsed here by
//! [`open_session`]. When a cache directory is configured (the flag, or
//! the `OCELOTL_CACHE_DIR` environment variable), the session persists its
//! expensive intermediates (`.ocube` cube prefix sums, `.opart` partition
//! tables) keyed by a hash of the trace bytes and the analysis parameters
//! — so every command after the first is warm, and repeated queries run
//! zero DP. See `ocelotl::core::session` for the full economy.

use crate::args::Args;
use crate::CliError;
use ocelotl::core::{
    AnalysisSession, HiResModel, IngestStats, ModelSource, PushdownProbe, QueryEngine,
    SessionConfig, SessionError,
};
use ocelotl::format::DiskStore;
use ocelotl::trace::{MicroModel, Trace};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

pub use ocelotl::core::Metric;

/// Materialize a full trace into memory. This is the O(|events|) path —
/// only the commands that genuinely need raw events use it (`convert`
/// round-trips, `render --gantt`, `info`'s state listing); analysis
/// pipelines stream through [`obtain_model`] / [`FileSource`] instead.
/// All three formats (`.btf`, `.ptf`, `.paje`/`.trace`) are sniffed and
/// dispatched by `ocelotl::format::read_trace`.
pub fn load_trace(path: &Path) -> Result<Trace, CliError> {
    if !path.exists() {
        return Err(CliError::Invalid(format!(
            "no such file: {}",
            path.display()
        )));
    }
    Ok(ocelotl::format::read_trace(path)?)
}

/// Write a trace, dispatching on the output extension (`.paje`/`.trace` →
/// Pajé, `.ptf` → text, anything else → binary).
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), CliError> {
    ocelotl::format::write_trace(trace, path)?;
    Ok(())
}

/// Build the microscopic model for the chosen metric.
pub fn build_model(trace: &Trace, n_slices: usize, metric: Metric) -> Result<MicroModel, CliError> {
    metric
        .build_model(trace, n_slices)
        .ok_or_else(|| CliError::Invalid("trace has no events to slice".into()))
}

/// True when the path names a cached microscopic model (`.omm`).
pub fn is_micro_cache(path: &Path) -> bool {
    matches!(path.extension().and_then(|e| e.to_str()), Some("omm"))
}

/// True when the file starts with the plain (uncompressed) columnar
/// magic — the only sources whose chunk index supports predicate
/// pushdown without a full decompression pass.
pub(crate) fn is_plain_columnar(path: &Path) -> bool {
    use std::io::Read;
    let mut head = [0u8; 4];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && &head == ocelotl::format::columnar::MAGIC,
        Err(_) => false,
    }
}

/// Obtain the microscopic model behind a path: `.omm` caches load directly
/// (their grid/metric were fixed at `describe` time; `n_slices`/`metric`
/// are ignored), anything else **streams** from the trace file into the
/// model without materializing events — peak memory is O(model), not
/// O(|events|), so traces larger than RAM aggregate end to end.
pub fn obtain_model(path: &Path, n_slices: usize, metric: Metric) -> Result<MicroModel, CliError> {
    Ok(obtain_report(path, n_slices, metric)?.model)
}

/// [`obtain_model`] plus the ingestion telemetry (fingerprint, bytes,
/// mode) — the one streaming entry point every CLI command goes through.
/// `.omm` caches synthesize a report carrying only what a cache load can
/// know (the model, the file hash and its size; zero event counts) —
/// that is enough for the session path, and the commands that *display*
/// telemetry (`info --stats`, `describe`) reject `.omm` inputs.
pub fn obtain_report(
    path: &Path,
    n_slices: usize,
    metric: Metric,
) -> Result<ocelotl::format::IngestReport, CliError> {
    obtain_report_with(path, n_slices, metric, 0)
}

/// [`obtain_report`] with an explicit shard-worker cap (0 = the
/// process-wide `--threads` budget) — what a server uses to keep one cold
/// build from monopolizing the executor.
pub fn obtain_report_with(
    path: &Path,
    n_slices: usize,
    metric: Metric,
    workers: usize,
) -> Result<ocelotl::format::IngestReport, CliError> {
    if !path.exists() {
        return Err(CliError::Invalid(format!(
            "no such file: {}",
            path.display()
        )));
    }
    if is_micro_cache(path) {
        let model = ocelotl::format::load_micro(path)?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let fingerprint = ocelotl::format::hash_file(path)?;
        return Ok(ocelotl::format::IngestReport {
            model,
            fingerprint,
            bytes_read: bytes,
            intervals: 0,
            points: 0,
            peak_bytes: 0,
            mode: ocelotl::format::IngestMode::SinglePass,
            format: ocelotl::format::Format::Binary,
            gzip: false,
            shards: vec![bytes],
            chunks_total: 0,
            chunks_read: 0,
            bytes_skipped: 0,
        });
    }
    Ok(ocelotl::format::read_model_with(
        path,
        n_slices,
        metric.model_kind(),
        &ingest_options(workers),
    )?)
}

/// Sharding options for a CLI ingest: content-derived auto plan, worker
/// pool capped at `workers` (0 = the process-wide `--threads` budget).
/// The worker cap redistributes work only — the shard plan, and therefore
/// every output bit, is a pure function of the trace content.
fn ingest_options(workers: usize) -> ocelotl::format::IngestOptions {
    ocelotl::format::IngestOptions {
        shards: ocelotl::format::ShardMode::Auto,
        max_workers: if workers > 0 {
            workers
        } else {
            rayon::max_threads()
        },
        predicate: None,
    }
}

/// The file-backed [`ModelSource`]: streams the model straight from the
/// file and computes the content fingerprint in the same disk pass. A
/// fingerprint obtained as a by-product of a model build is cached, so a
/// store-less session costs exactly one read of the trace; only a
/// warm-capable session (artifact store attached, which must key before
/// deciding whether to read at all) pays a separate raw hash pass.
pub struct FileSource {
    path: PathBuf,
    /// Lock-free once the value is set: concurrent readers on a server's
    /// shared read path never contend on a held (or poisoned) lock.
    fingerprint: OnceLock<u64>,
    /// Shard-worker cap for ingests through this source (0 = the
    /// process-wide `--threads` budget). Never affects output bits.
    workers: usize,
}

impl FileSource {
    /// A source reading from `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            fingerprint: OnceLock::new(),
            workers: 0,
        }
    }

    /// Cap the shard-worker pool of ingests through this source — a
    /// server building several sessions concurrently divides its thread
    /// budget this way so one cold build cannot monopolize the executor.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// Turn an [`ocelotl::format::IngestReport`] into the session layer's
/// telemetry struct.
fn report_stats(report: &ocelotl::format::IngestReport) -> IngestStats {
    let format = match report.format {
        ocelotl::format::Format::Text => "ptf",
        ocelotl::format::Format::Binary => "btf",
        ocelotl::format::Format::Paje => "paje",
        ocelotl::format::Format::Columnar => "octf",
    };
    IngestStats {
        fingerprint: report.fingerprint,
        bytes_read: report.bytes_read,
        intervals: report.intervals,
        points: report.points,
        peak_bytes: report.peak_bytes,
        mode: report.mode.tag().to_string(),
        format: if report.gzip {
            format!("{format}+gzip")
        } else {
            format.to_string()
        },
        gzip: report.gzip,
        shards: report.shards.clone(),
        chunks_total: report.chunks_total,
        chunks_read: report.chunks_read,
        bytes_skipped: report.bytes_skipped,
    }
}

impl ModelSource for FileSource {
    fn fingerprint(&self) -> Result<u64, SessionError> {
        if let Some(fp) = self.fingerprint.get() {
            return Ok(*fp);
        }
        let fp = ocelotl::format::hash_trace_input(&self.path).map_err(|e| {
            SessionError::source(format!("cannot hash {}: {e}", self.path.display()))
        })?;
        Ok(*self.fingerprint.get_or_init(|| fp))
    }

    fn model(&self, n_slices: usize, metric: Metric) -> Result<MicroModel, SessionError> {
        Ok(self.model_with_stats(n_slices, metric)?.0)
    }

    fn model_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
    ) -> Result<(MicroModel, Option<IngestStats>), SessionError> {
        let report = obtain_report_with(&self.path, n_slices, metric, self.workers)
            .map_err(|e| SessionError::source(e.to_string()))?;
        let _ = self.fingerprint.set(report.fingerprint);
        let stats = report_stats(&report);
        Ok((report.model, Some(stats)))
    }

    fn hi_res_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
    ) -> Result<Option<(HiResModel, Option<IngestStats>)>, SessionError> {
        if is_micro_cache(&self.path) {
            // An `.omm` model cache has a fixed grid: no hi-res intermediate
            // to build — the session falls back to the direct load.
            return Ok(None);
        }
        let report = ocelotl::format::read_hi_res_with(
            &self.path,
            n_slices,
            metric.model_kind(),
            &ingest_options(self.workers),
        )
        .map_err(|e| SessionError::source(e.to_string()))?;
        let _ = self.fingerprint.set(report.fingerprint);
        let stats = report_stats(&report);
        Ok(Some((HiResModel::new(metric, report.model), Some(stats))))
    }

    fn pushdown_probe(
        &self,
        n_slices: usize,
        _metric: Metric,
    ) -> Result<Option<PushdownProbe>, SessionError> {
        if !is_plain_columnar(&self.path) {
            return Ok(None);
        }
        // The chunk index alone answers the probe: no event decode, no
        // fingerprint (a store-less windowed re-slice stays hash-free).
        let Ok(plan) = ocelotl::format::plan_columnar(&self.path) else {
            return Ok(None);
        };
        let Some(range) = plan.header.range else {
            return Ok(None);
        };
        if !(range.0.is_finite() && range.1.is_finite() && range.1 > range.0) {
            return Ok(None);
        }
        let hi_slices = ocelotl::trace::hi_res_slices(
            n_slices,
            plan.header.hierarchy.n_leaves(),
            plan.header.states.len(),
        );
        Ok(Some(PushdownProbe { range, hi_slices }))
    }

    fn hi_res_window_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
        first: usize,
        count: usize,
    ) -> Result<Option<(HiResModel, Option<IngestStats>)>, SessionError> {
        if !is_plain_columnar(&self.path) {
            return Ok(None);
        }
        let report = ocelotl::format::read_hi_res_window(
            &self.path,
            n_slices,
            metric.model_kind(),
            first,
            count,
            &ingest_options(self.workers),
        )
        .map_err(|e| SessionError::source(e.to_string()))?;
        let _ = self.fingerprint.set(report.fingerprint);
        let stats = report_stats(&report);
        Ok(Some((HiResModel::new(metric, report.model), Some(stats))))
    }
}

/// Option keys shared by every session-routed command; splice into each
/// command's `expect_known` list.
pub const SESSION_OPTS: [&str; 7] = [
    "slices",
    "metric",
    "memory",
    "cache",
    "no-cache",
    "cache-keep",
    "json",
];

/// Parse the `--t0 T --t1 T` window pair shared by the windowed commands
/// (`info --stats`, `aggregate`): both or neither, each a number.
pub fn parse_window(args: &Args) -> Result<Option<(f64, f64)>, CliError> {
    match (args.get("t0")?, args.get("t1")?) {
        (None, None) => Ok(None),
        (Some(a), Some(b)) => {
            let lo: f64 = a
                .parse()
                .map_err(|_| CliError::Usage(format!("--t0 expects a number, got {a:?}")))?;
            let hi: f64 = b
                .parse()
                .map_err(|_| CliError::Usage(format!("--t1 expects a number, got {b:?}")))?;
            Ok(Some((lo, hi)))
        }
        _ => Err(CliError::Usage(
            "--t0 and --t1 must be given together".into(),
        )),
    }
}

/// Parse the shared session options into a [`SessionConfig`]
/// (`--slices`, `--metric`, `--memory`, `--cache-keep` /
/// `OCELOTL_CACHE_KEEP`).
pub fn session_config(args: &Args) -> Result<SessionConfig, CliError> {
    let mut config = SessionConfig {
        n_slices: args.get_or("slices", 30)?,
        metric: args.get_or("metric", Metric::States)?,
        memory: args.get_or("memory", ocelotl::core::MemoryMode::Auto)?,
        ..SessionConfig::default()
    };
    config.cache_keep = match args.get("cache-keep")? {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::Usage("--cache-keep expects a count >= 1".into()))?,
        None => match std::env::var("OCELOTL_CACHE_KEEP") {
            Ok(v) if !v.is_empty() => {
                v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    CliError::Invalid(format!("invalid OCELOTL_CACHE_KEEP value {v:?}"))
                })?
            }
            _ => config.cache_keep,
        },
    };
    Ok(config)
}

/// Build the `AnalysisSession` every analysis command runs on, from the
/// shared options (`--slices`, `--metric`, `--memory`, `--cache DIR`,
/// `--no-cache`, `--cache-keep N`). Caching is enabled by `--cache DIR`
/// or the `OCELOTL_CACHE_DIR` environment variable; `--no-cache` wins
/// over both.
pub fn open_session(args: &Args, path: &Path) -> Result<AnalysisSession, CliError> {
    if !path.exists() {
        return Err(CliError::Invalid(format!(
            "no such file: {}",
            path.display()
        )));
    }
    let config = session_config(args)?;
    Ok(build_session(path, config, cache_dir(args)?.as_deref()))
}

/// Assemble a session over `path` with an optional artifact cache — the
/// one construction path the CLI and the server share.
pub fn build_session(path: &Path, config: SessionConfig, cache: Option<&Path>) -> AnalysisSession {
    build_session_with_workers(path, config, cache, 0)
}

/// [`build_session`] with a shard-worker cap for the ingest (0 = the
/// process-wide `--threads` budget). A server divides its thread budget
/// across concurrent cold builds this way; the cap never changes output
/// bits.
pub fn build_session_with_workers(
    path: &Path,
    config: SessionConfig,
    cache: Option<&Path>,
    workers: usize,
) -> AnalysisSession {
    let mut session = AnalysisSession::new(FileSource::new(path).with_workers(workers), config);
    if let Some(dir) = cache {
        session =
            session.with_store(DiskStore::for_input(path, Some(dir)).with_keep(config.cache_keep));
    }
    session
}

/// [`open_session`] wrapped as a [`QueryEngine`] — what every analysis
/// command talks to.
pub fn open_engine(args: &Args, path: &Path) -> Result<QueryEngine, CliError> {
    Ok(QueryEngine::new(open_session(args, path)?))
}

/// Resolve the cache directory from `--cache` / `OCELOTL_CACHE_DIR` /
/// `--no-cache`.
pub fn cache_dir(args: &Args) -> Result<Option<PathBuf>, CliError> {
    if args.has("no-cache") {
        return Ok(None);
    }
    if let Some(dir) = args.get("cache")? {
        return Ok(Some(PathBuf::from(dir)));
    }
    match std::env::var_os("OCELOTL_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => Ok(Some(PathBuf::from(dir))),
        _ => Ok(None),
    }
}

/// A small deterministic test trace written to a temp file; returns the
/// path (callers clean up). Only compiled for tests.
#[cfg(test)]
pub fn fixture_trace(name: &str) -> std::path::PathBuf {
    use ocelotl::prelude::*;
    let mut b = TraceBuilder::new(Hierarchy::balanced(&[2, 2]));
    let run = b.state("Run");
    let wait = b.state("MPI_Wait");
    for leaf in 0..4u32 {
        for k in 0..10 {
            let t = k as f64;
            let state = if leaf == 3 && (4..7).contains(&k) {
                wait
            } else {
                run
            };
            b.push_state(LeafId(leaf), state, t, t + 1.0);
        }
    }
    b.push_meta("app", "fixture");
    let trace = b.build();
    let path = std::env::temp_dir().join(format!(
        "ocelotl-cli-{}-{}-{name}.btf",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    ocelotl::format::write_trace(&trace, &path).unwrap();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_parses() {
        assert_eq!("states".parse::<Metric>().unwrap(), Metric::States);
        assert_eq!("density".parse::<Metric>().unwrap(), Metric::Density);
        assert!("x".parse::<Metric>().is_err());
    }

    #[test]
    fn load_missing_file_is_invalid() {
        let err = load_trace(Path::new("/nonexistent/zzz.btf")).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)));
    }

    #[test]
    fn open_session_missing_file_is_invalid() {
        let args = Args::parse(&[]).unwrap();
        let Err(err) = open_session(&args, Path::new("/nonexistent/zzz.btf")) else {
            panic!("missing file must fail");
        };
        assert!(matches!(err, CliError::Invalid(_)));
    }

    #[test]
    fn fixture_roundtrips_via_all_formats() {
        let src = fixture_trace("roundtrip");
        let t = load_trace(&src).unwrap();
        for ext in ["ptf", "paje"] {
            let dst = src.with_extension(ext);
            save_trace(&t, &dst).unwrap();
            let back = load_trace(&dst).unwrap();
            assert_eq!(back.intervals.len(), t.intervals.len(), "{ext}");
            std::fs::remove_file(&dst).ok();
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn build_model_both_metrics() {
        let src = fixture_trace("metrics");
        let t = load_trace(&src).unwrap();
        let m1 = build_model(&t, 10, Metric::States).unwrap();
        let m2 = build_model(&t, 10, Metric::Density).unwrap();
        assert_eq!(m1.n_slices(), 10);
        assert_eq!(m2.n_slices(), 10);
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn session_rejects_bad_p() {
        let src = fixture_trace("badp");
        let args = Args::parse(&["--slices".into(), "5".into()]).unwrap();
        let mut session = open_session(&args, &src).unwrap();
        assert!(session.partition_at(1.5, false).is_err());
        assert!(session.partition_at(0.5, true).is_ok());
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn engine_reports_requested_cube_mode() {
        use ocelotl::core::query::{AnalysisReply, AnalysisRequest};
        let src = fixture_trace("cube-modes");
        for (mode, expect) in [("dense", "dense"), ("lazy", "lazy"), ("auto", "dense")] {
            let args = Args::parse(&[
                "--slices".into(),
                "8".into(),
                "--memory".into(),
                mode.into(),
            ])
            .unwrap();
            let mut engine = open_engine(&args, &src).unwrap();
            let AnalysisReply::Describe(d) = engine.execute(&AnalysisRequest::Describe).unwrap()
            else {
                panic!()
            };
            // Tiny model: auto must stay dense.
            assert_eq!(d.backend, expect, "{mode}");
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn cache_keep_flag_and_env_resolve() {
        let args = Args::parse(&["--cache-keep".into(), "2".into()]).unwrap();
        assert_eq!(session_config(&args).unwrap().cache_keep, 2);
        let args = Args::parse(&["--cache-keep".into(), "0".into()]).unwrap();
        assert!(matches!(session_config(&args), Err(CliError::Usage(_))));
        let args = Args::parse(&[]).unwrap();
        assert_eq!(
            session_config(&args).unwrap().cache_keep,
            ocelotl::core::DEFAULT_CACHE_KEEP
        );
    }

    #[test]
    fn cache_flag_round_trips_through_disk() {
        let src = fixture_trace("cache-flag");
        let cache = std::env::temp_dir().join(format!("ocelotl-cli-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let args = Args::parse(&[
            "--slices".into(),
            "10".into(),
            "--cache".into(),
            cache.display().to_string(),
        ])
        .unwrap();

        let mut cold = open_session(&args, &src).unwrap();
        let p_cold = cold.partition_at(0.4, false).unwrap();
        cold.cube().unwrap();
        assert_eq!(cold.cube_source(), Some(ocelotl::core::CubeSource::Cold));

        let mut warm = open_session(&args, &src).unwrap();
        let p_warm = warm.partition_at(0.4, false).unwrap();
        assert_eq!(p_cold, p_warm);
        assert_eq!(warm.dp_runs(), 0, "warm session must serve from .opart");

        // --no-cache wins.
        let args = Args::parse(&[
            "--no-cache".into(),
            "--cache".into(),
            cache.display().to_string(),
        ])
        .unwrap();
        let mut off = open_session(&args, &src).unwrap();
        let _ = off.partition_at(0.4, false).unwrap();
        assert!(off.dp_runs() > 0, "--no-cache must not read artifacts");

        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&src).ok();
    }
}
