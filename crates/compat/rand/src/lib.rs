//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! The workspace builds without network access, so the simulator's
//! randomness needs — `SmallRng::seed_from_u64` and `Rng::random::<T>()` —
//! are provided by a local xoshiro256++ generator seeded through
//! SplitMix64, the same construction the real `rand` ecosystem uses.
//! Streams are deterministic per seed, which is all the MPI simulator
//! requires (reproducible traces), but this is NOT a cryptographic RNG.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from uniform bits (the real crate's `StandardUniform`
/// distribution, folded into one helper trait).
pub trait UniformSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u16 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value (`f64` in `[0, 1)`, full range
    /// for integers, fair coin for `bool`).
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `[low, high)`.
    #[inline]
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + (range.end - range.start) * self.random::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the real crate's trait, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast non-cryptographic generator (xoshiro256++, matching the
    /// real `SmallRng`'s 64-bit-platform choice of algorithm family).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
