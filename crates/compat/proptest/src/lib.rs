//! Offline stand-in for `proptest`.
//!
//! The workspace builds without network access, so the property tests
//! keep their real proptest source shape (`proptest!`, strategies built
//! from ranges / tuples / `prop::collection::vec` / `any::<T>()` /
//! `prop_map`, `prop_assert!`-style assertions) but run on this minimal
//! engine: each test body is executed for `ProptestConfig::cases`
//! deterministic pseudo-random cases. The case RNG is seeded from the
//! test's module path and case index, so failures reproduce exactly
//! across runs.
//!
//! Differences from the real crate: no shrinking (the failing case is
//! reported by index, not minimized), no persisted failure files, and
//! only the strategy combinators this workspace uses.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            x: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner knobs (the `cases` field only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling; panics
    /// after 1000 straight rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i64 - *self.start() as i64) as u64 + 1;
                (*self.start() as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                *self.start() + (*self.end() - *self.start()) * rng.unit_f64() as $t
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (S0.0),
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
);

/// String-pattern strategy: a `&str` literal is interpreted as a tiny
/// regex subset — sequences of literal characters or character classes
/// (`[a-z0-9 ]`), each optionally quantified with `{n}` or `{m,n}`.
/// Covers the patterns this workspace's tests use; anything fancier
/// (alternation, groups, `*`/`+`) panics loudly.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // 1. One atom: a character class or a literal character.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad class range in {self:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '(' | ')' | '|' | '*' | '+' | '?' => {
                    panic!(
                        "unsupported regex feature {:?} in pattern {self:?}",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // 2. Optional {n} / {m,n} quantifier.
            let count = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let (lo, hi) = match body.split_once(',') {
                    Some((l, h)) => (l.trim().parse().unwrap(), h.trim().parse().unwrap()),
                    None => {
                        let n: usize = body.trim().parse().unwrap();
                        (n, n)
                    }
                };
                lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
            } else {
                1
            };
            assert!(!alphabet.is_empty(), "empty character class in {self:?}");
            for _ in 0..count {
                out.push(alphabet[(rng.next_u64() % alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Full-domain strategies for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: property bodies do arithmetic on these.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-domain strategy: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in one import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestRng};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (maps to `assert!`; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(test_id, case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {test_id} failed at case {case} of {} \
                         (deterministic seed; re-run reproduces it)",
                        config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f64..=2.0).sample(&mut rng);
            assert!((-2.0..=2.0).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let strat = prop::collection::vec((0usize..4, 0.0f64..1.0), 2..6);
        let mut rng = TestRng::for_case("compose", 1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn fixed_size_vec() {
        let strat = prop::collection::vec(any::<u8>(), 40);
        let mut rng = TestRng::for_case("fixed", 2);
        assert_eq!(strat.sample(&mut rng).len(), 40);
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1usize..10).prop_map(|n| vec![0u8; n]);
        let mut rng = TestRng::for_case("map", 3);
        let v = strat.sample(&mut rng);
        assert!((1..10).contains(&v.len()));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = (0u64..1_000_000).sample(&mut TestRng::for_case("det", 7));
        let b = (0u64..1_000_000).sample(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0usize..10, 0usize..10), c in 0.0f64..1.0,) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 2.0);
        }
    }
}
