//! Offline stand-in for `rayon`.
//!
//! The workspace builds without network access, so the data-parallel
//! subset the aggregation engine uses — `into_par_iter().map().collect()`,
//! `par_iter().for_each()`, and `par_chunks().fold().reduce()` — is
//! reimplemented here on `std::thread::scope`. Semantics match rayon for
//! that subset: `map`/`collect` preserve input order, `fold` produces one
//! accumulator per worker, `reduce` combines them deterministically
//! (worker order), and panics propagate to the caller.
//!
//! Unlike rayon there is no work-stealing pool: each combinator evaluates
//! eagerly by splitting its input into contiguous slabs over scoped
//! threads. A global token budget bounds the total number of live worker
//! threads so nested parallelism (the DP's fork–join over hierarchy
//! siblings) degrades to sequential execution instead of spawning one
//! thread per tree node.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Items of the canonical prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

static BUDGET: OnceLock<AtomicUsize> = OnceLock::new();
/// Explicit concurrency override (0 = unset): total threads, so the token
/// budget is `override − 1` (the caller's thread is always a worker).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);
/// Capacity the live budget was initialized/adjusted to (worker tokens).
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Tokens still to be reclaimed after a capacity shrink that found them
/// checked out: released tokens pay this debt before refilling the pool,
/// so `budget + outstanding − debt == capacity` holds at all times.
static DEBT: AtomicUsize = AtomicUsize::new(0);

/// Reduce [`DEBT`] by up to `amount`; returns how much was actually paid.
fn pay_debt(amount: usize) -> usize {
    let mut paid = 0;
    let _ = DEBT.fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
        paid = d.min(amount);
        Some(d - paid)
    });
    paid
}

/// Worker-token budget for a configured thread count (pure; unit-tested).
/// `configured` is the total concurrency (`--threads N` / `OCELOTL_THREADS`),
/// so `N = 1` means fully sequential (zero extra workers); unset falls back
/// to two tokens per core (spares keep nested fork–join levels busy).
fn tokens_for(configured: Option<usize>, cores: usize) -> usize {
    match configured {
        Some(n) => n.max(1) - 1,
        None => 2 * cores,
    }
}

fn configured_threads() -> Option<usize> {
    let explicit = CONFIGURED.load(Ordering::Acquire);
    if explicit > 0 {
        return Some(explicit);
    }
    std::env::var("OCELOTL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn budget() -> &'static AtomicUsize {
    BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let tokens = tokens_for(configured_threads(), cores);
        CAPACITY.store(tokens, Ordering::Release);
        AtomicUsize::new(tokens)
    })
}

/// Cap the executor at `n` total threads (`n = 1` disables parallelism).
/// The `OCELOTL_THREADS` environment variable has the same effect; this
/// function takes precedence. Call before issuing parallel work — an
/// adjustment while parallel operations are in flight takes effect as
/// their tokens are released.
pub fn set_max_threads(n: usize) {
    let n = n.max(1);
    CONFIGURED.store(n, Ordering::Release);
    if let Some(b) = BUDGET.get() {
        // Adjust the live pool by the capacity delta so tokens currently
        // checked out stay correctly accounted.
        let new_cap = n - 1;
        let old_cap = CAPACITY.swap(new_cap, Ordering::AcqRel);
        if new_cap >= old_cap {
            // Grow: cancel pending reclamation first, then top up the pool.
            let grow = new_cap - old_cap;
            let canceled = pay_debt(grow);
            b.fetch_add(grow - canceled, Ordering::AcqRel);
        } else {
            // Shrink: drain what the pool has; the remainder becomes debt
            // that released tokens pay off before refilling the pool.
            let mut unpaid = old_cap - new_cap;
            let _ = b.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                let take = cur.min(old_cap - new_cap);
                unpaid = (old_cap - new_cap) - take;
                Some(cur - take)
            });
            if unpaid > 0 {
                DEBT.fetch_add(unpaid, Ordering::AcqRel);
            }
        }
    }
}

/// The configured total concurrency: the explicit/env override if any,
/// else the default sizing for this machine.
pub fn max_threads() -> usize {
    if BUDGET.get().is_some() {
        return CAPACITY.load(Ordering::Acquire) + 1;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    tokens_for(configured_threads(), cores) + 1
}

/// Try to take up to `want` worker tokens; returns how many were granted.
fn acquire_workers(want: usize) -> usize {
    let b = budget();
    let mut cur = b.load(Ordering::Relaxed);
    loop {
        let take = want.min(cur);
        if take == 0 {
            return 0;
        }
        match b.compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

fn release_workers(n: usize) {
    if n > 0 {
        // Pay down any capacity-shrink debt before refilling the pool.
        let paid = pay_debt(n);
        if n > paid {
            budget().fetch_add(n - paid, Ordering::AcqRel);
        }
    }
}

/// RAII handle on acquired worker tokens: releasing on `Drop` keeps the
/// budget intact even when a worker panic unwinds through the caller
/// (e.g. under `#[should_panic]` or `catch_unwind`), so later parallel
/// work is not silently degraded to sequential execution.
struct WorkerTokens(usize);

impl WorkerTokens {
    fn acquire(want: usize) -> Self {
        Self(acquire_workers(want))
    }
}

impl Drop for WorkerTokens {
    fn drop(&mut self) {
        release_workers(self.0);
    }
}

// ---------------------------------------------------------------------------
// Core executor
// ---------------------------------------------------------------------------

/// Split `items` into at most `parts` contiguous slabs (all non-empty).
fn slabs<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    // Drain from the back to avoid repeated shifts; reverse at the end.
    for k in 0..parts {
        let take = base + usize::from(k < extra);
        let at = items.len() - take;
        out.push(items.split_off(at));
    }
    out.reverse();
    out
}

/// Order-preserving parallel map over owned items.
fn run_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let tokens = WorkerTokens::acquire(items.len() - 1);
    if tokens.0 == 0 {
        return items.into_iter().map(f).collect();
    }
    let mut parts = slabs(items, tokens.0 + 1);
    // The caller's thread keeps the first slab; workers get the rest.
    let own = parts.remove(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|slab| s.spawn(move || slab.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out: Vec<R> = own.into_iter().map(f).collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Parallel fold: one accumulator per slab, in slab order.
fn run_fold<T, Acc, Init, F>(items: Vec<T>, init: &Init, f: &F) -> Vec<Acc>
where
    T: Send,
    Acc: Send,
    Init: Fn() -> Acc + Sync,
    F: Fn(Acc, T) -> Acc + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let tokens = WorkerTokens::acquire(items.len().saturating_sub(1));
    let mut parts = slabs(items, tokens.0 + 1);
    let own = parts.remove(0);
    let fold_slab = |slab: Vec<T>| slab.into_iter().fold(init(), f);
    let fold_slab = &fold_slab;
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|slab| s.spawn(move || fold_slab(slab)))
            .collect();
        let mut accs = vec![fold_slab(own)];
        for h in handles {
            match h.join() {
                Ok(acc) => accs.push(acc),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        accs
    })
}

// ---------------------------------------------------------------------------
// Public iterator type
// ---------------------------------------------------------------------------

/// An eager "parallel iterator": the materialized items awaiting a
/// consuming combinator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Consuming combinators, mirroring the used subset of
/// `rayon::iter::ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Into the backing items (implementation detail of the shim).
    fn into_items(self) -> Vec<Self::Item>;

    /// Parallel order-preserving map.
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParIter {
            items: run_map(self.into_items(), &f),
        }
    }

    /// Parallel side-effecting visit.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_map(self.into_items(), &|item| f(item));
    }

    /// Parallel fold into one accumulator per worker slab.
    fn fold<Acc, Init, F>(self, init: Init, f: F) -> ParIter<Acc>
    where
        Acc: Send,
        Init: Fn() -> Acc + Sync,
        F: Fn(Acc, Self::Item) -> Acc + Sync,
    {
        ParIter {
            items: run_fold(self.into_items(), &init, &f),
        }
    }

    /// Combine all items pairwise, starting from `init()` (sequential,
    /// deterministic slab order).
    fn reduce<Init, Op>(self, init: Init, op: Op) -> Self::Item
    where
        Init: Fn() -> Self::Item,
        Op: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_items().into_iter().fold(init(), op)
    }

    /// Collect into any container buildable from a `Vec` (order preserved).
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.into_items())
    }

    /// Sum of the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// By-value conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Start a parallel pipeline over the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;

    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// By-reference conversion (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Start a parallel pipeline over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Chunked slice access (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping chunks of `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::budget;
    use super::prelude::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0usize..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let data: Vec<u32> = (0..1000).collect();
        data.par_iter().for_each(|&x| {
            count.fetch_add(x as usize, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 1000 * 999 / 2);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let data: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let total = data
            .par_chunks(128)
            .fold(|| 0.0f64, |acc, chunk| acc + chunk.iter().sum::<f64>())
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(total, (0..4096).sum::<i64>() as f64);
    }

    #[test]
    fn nested_parallelism_terminates() {
        let out: Vec<Vec<usize>> = (0usize..64)
            .into_par_iter()
            .map(|i| {
                (0usize..64)
                    .into_par_iter()
                    .map(move |j| i * 64 + j)
                    .collect()
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[63][63], 64 * 64 - 1);
    }

    #[test]
    fn budget_survives_worker_panics() {
        // A panic in parallel code must not leak worker tokens: afterwards
        // parallel execution still engages (regression test for the drop
        // guard in run_map/run_fold).
        for _ in 0..8 {
            let caught = std::panic::catch_unwind(|| {
                (0usize..256).into_par_iter().for_each(|i| {
                    if i == 200 {
                        panic!("deliberate");
                    }
                });
            });
            assert!(caught.is_err());
        }
        // All tokens must be back in the pool once the panics unwound.
        // (Other tests run concurrently and borrow tokens transiently, so
        // poll briefly instead of reading one instant.)
        let _ = budget();
        let mut seen = 0;
        for _ in 0..200 {
            seen = budget().load(Ordering::Acquire);
            if seen == super::CAPACITY.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(
            seen,
            super::CAPACITY.load(Ordering::Acquire),
            "worker tokens leaked across panics"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        (0usize..1000).into_par_iter().for_each(|i| {
            if i == 977 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn capacity_shrink_with_outstanding_tokens_never_leaks() {
        // Check out tokens, shrink below what remains, release, restore:
        // the pool must settle back to exactly the configured capacity
        // (the shrink deficit is carried as debt, not dropped).
        let _ = budget();
        let original = super::CAPACITY.load(Ordering::Acquire);
        let got = super::acquire_workers(2);
        super::set_max_threads(1); // capacity -> 0 worker tokens
        super::release_workers(got); // pays the debt first
        super::set_max_threads(original + 1); // restore
        let mut seen = 0;
        for _ in 0..200 {
            seen = budget().load(Ordering::Acquire);
            if seen == super::CAPACITY.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(
            seen,
            super::CAPACITY.load(Ordering::Acquire),
            "budget must settle to capacity after shrink/release/restore"
        );
    }

    #[test]
    fn token_sizing_is_pure_and_clamped() {
        // Explicit N caps at N − 1 worker tokens; N = 0/1 go sequential.
        assert_eq!(super::tokens_for(Some(1), 8), 0);
        assert_eq!(super::tokens_for(Some(0), 8), 0);
        assert_eq!(super::tokens_for(Some(4), 8), 3);
        // Unset: two tokens per core.
        assert_eq!(super::tokens_for(None, 8), 16);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = (0usize..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let total: f64 = Vec::<f64>::new()
            .par_iter()
            .fold(|| 0.0, |a, &b| a + b)
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(total, 0.0);
    }
}
