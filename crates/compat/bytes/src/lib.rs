//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the handful of [`BufMut`] methods the trace format
//! writers rely on are reimplemented here over `Vec<u8>`. The API is
//! call-compatible with the real crate for that subset; swap the path
//! dependency for the real `bytes` when a registry is available.

#![forbid(unsafe_code)]

/// Little-endian append-only buffer operations (the subset of the real
/// `bytes::BufMut` used by the BTF/OMM writers).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16);
    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
    /// Append an `f64` in little-endian IEEE-754 order.
    fn put_f64_le(&mut self, v: f64);
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut b = Vec::new();
        b.put_u32_le(0x0403_0201);
        assert_eq!(b, [1, 2, 3, 4]);
        b.put_u64_le(1);
        assert_eq!(&b[4..], [1, 0, 0, 0, 0, 0, 0, 0]);
        let mut f = Vec::new();
        f.put_f64_le(1.5);
        assert_eq!(f64::from_le_bytes(f[..8].try_into().unwrap()), 1.5);
    }

    #[test]
    fn slices_and_bytes_append() {
        let mut b = Vec::new();
        b.put_u8(7);
        b.put_slice(b"abc");
        b.put_u16_le(0x0201);
        assert_eq!(b, [7, b'a', b'b', b'c', 1, 2]);
    }
}
