//! Offline stand-in for `criterion`.
//!
//! The workspace builds without network access, so the bench files keep
//! the real criterion source shape (`criterion_group!`/`criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`) but run
//! on this minimal harness: each benchmark is warmed up once, then timed
//! over an adaptive number of iterations, and the median/mean wall-clock
//! time is printed to stdout. There is no statistical analysis, HTML
//! report, or regression detection — swap the path dependency for the
//! real crate when a registry is available.
//!
//! Filtering works like libtest: extra CLI arguments are substring
//! filters on the benchmark name (`cargo bench -- dp` runs only ids
//! containing "dp").

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub use std::hint::black_box;

/// Target measuring time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u32 = 200;

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` id, mirroring criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a bare parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `f`, repeating it adaptively (1 warm-up + up to [`MAX_ITERS`]
    /// timed runs or [`TARGET_MEASURE`], whichever stops first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut spent = Duration::ZERO;
        let mut n = 0u32;
        while n < MAX_ITERS && (n == 0 || spent < TARGET_MEASURE) {
            let t0 = Instant::now();
            black_box(f());
            spent += t0.elapsed();
            n += 1;
        }
        self.total = spent;
        self.iters = n;
    }
}

/// The bench context: registry of results plus the name filter.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip flags (cargo bench passes `--bench`); bare words filter.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Self { filters }
    }
}

impl Criterion {
    /// Harness-compat no-op (the real crate parses criterion-specific args).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.selected(id) {
            return;
        }
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters
        } else {
            Duration::ZERO
        };
        println!("bench  {id:<60} {:>12}  ({} iters)", fmt_dur(mean), b.iters);
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named benchmark group (prefixes ids with `group/`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Harness-compat no-op (sampling is adaptive here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Harness-compat no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().name);
        self.c.run_one(&id, &mut f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().name);
        self.c.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; kept for source compatibility).
    pub fn finish(self) {}
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Declare a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, as in the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_closures() {
        let mut c = Criterion { filters: vec![] };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 2, "warm-up + at least one timed iteration");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            filters: vec!["wanted".into()],
        };
        let mut hits = Vec::new();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("wanted", 3), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2));
                hits.push("wanted");
            });
            g.bench_function("skipped", |b| {
                b.iter(|| black_box(1));
                hits.push("skipped");
            });
            g.finish();
        }
        assert_eq!(hits, vec!["wanted"], "filter must select by substring");
    }
}
