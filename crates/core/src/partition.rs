//! Spatiotemporal partitions: the algorithm's output (§III.B, §III.E).
//!
//! A partition of `S × T` is a set of disjoint, covering macroscopic areas,
//! each the Cartesian product of a hierarchy node and a slice interval.

use crate::cube::QualityCube;
use crate::measures::pic;
use ocelotl_trace::{Hierarchy, NodeId};

/// One macroscopic spatiotemporal area `(S_k, T_(i,j))`.
///
/// `first_slice..=last_slice` is inclusive, matching the paper's `T_(i,j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Area {
    /// The hierarchy node `S_k`.
    pub node: NodeId,
    /// First slice of the interval (inclusive).
    pub first_slice: usize,
    /// Last slice of the interval (inclusive).
    pub last_slice: usize,
}

impl Area {
    /// Construct an area; `first_slice` must be ≤ `last_slice`.
    pub fn new(node: NodeId, first_slice: usize, last_slice: usize) -> Self {
        debug_assert!(first_slice <= last_slice);
        Self {
            node,
            first_slice,
            last_slice,
        }
    }

    /// Number of slices spanned.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.last_slice - self.first_slice + 1
    }

    /// Number of microscopic cells `|S_k| × |T_(i,j)|`.
    #[inline]
    pub fn n_cells(&self, hierarchy: &Hierarchy) -> usize {
        hierarchy.n_leaves_under(self.node) * self.n_slices()
    }

    /// True if this area is a single microscopic cell.
    pub fn is_microscopic(&self, hierarchy: &Hierarchy) -> bool {
        self.n_cells(hierarchy) == 1
    }
}

/// A hierarchy-and-order-consistent partition of `S × T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    areas: Vec<Area>,
}

impl Partition {
    /// Wrap a list of areas (sorted canonically for comparability).
    pub fn new(mut areas: Vec<Area>) -> Self {
        areas.sort_unstable();
        Self { areas }
    }

    /// The areas, in canonical (sorted) order.
    #[inline]
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// Number of aggregates (the paper's "representation complexity").
    #[inline]
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// True for the degenerate empty partition.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// The microscopic partition: every `({s}, {t})` cell separate.
    pub fn microscopic(hierarchy: &Hierarchy, n_slices: usize) -> Self {
        let mut areas = Vec::with_capacity(hierarchy.n_leaves() * n_slices);
        for leaf in 0..hierarchy.n_leaves() {
            let node = hierarchy.leaf_node(ocelotl_trace::LeafId(leaf as u32));
            for t in 0..n_slices {
                areas.push(Area::new(node, t, t));
            }
        }
        Self::new(areas)
    }

    /// The full aggregation: one area `(S_root, T_(0,|T|−1))`.
    pub fn full(hierarchy: &Hierarchy, n_slices: usize) -> Self {
        Self::new(vec![Area::new(hierarchy.root(), 0, n_slices - 1)])
    }

    /// Product partition `P(S) × P(T)` from unidimensional partitions
    /// (§III.D): every pair (node, interval).
    pub fn product(spatial: &[NodeId], temporal: &[(usize, usize)]) -> Self {
        let mut areas = Vec::with_capacity(spatial.len() * temporal.len());
        for &n in spatial {
            for &(i, j) in temporal {
                areas.push(Area::new(n, i, j));
            }
        }
        Self::new(areas)
    }

    /// Total pIC of the partition at trade-off `p` (additivity, §III.C).
    pub fn pic<C: QualityCube>(&self, input: &C, p: f64) -> f64 {
        self.areas
            .iter()
            .map(|a| {
                let (g, l) = input.gain_loss(a.node, a.first_slice, a.last_slice);
                pic(p, g, l)
            })
            .sum()
    }

    /// Total gain of the partition.
    pub fn gain<C: QualityCube>(&self, input: &C) -> f64 {
        self.areas
            .iter()
            .map(|a| input.gain(a.node, a.first_slice, a.last_slice))
            .sum()
    }

    /// Total information loss of the partition.
    pub fn loss<C: QualityCube>(&self, input: &C) -> f64 {
        self.areas
            .iter()
            .map(|a| input.loss(a.node, a.first_slice, a.last_slice))
            .sum()
    }

    /// Verify the partition is disjoint and covering w.r.t. the microscopic
    /// grid, and that every area is hierarchy-and-order-consistent by
    /// construction (nodes exist, slice ranges valid).
    pub fn validate(&self, hierarchy: &Hierarchy, n_slices: usize) -> Result<(), String> {
        let n_leaves = hierarchy.n_leaves();
        let mut cover = vec![0u8; n_leaves * n_slices];
        for a in &self.areas {
            if a.node.index() >= hierarchy.len() {
                return Err(format!("area references unknown node {}", a.node));
            }
            if a.first_slice > a.last_slice || a.last_slice >= n_slices {
                return Err(format!(
                    "area has invalid interval [{}, {}]",
                    a.first_slice, a.last_slice
                ));
            }
            for s in hierarchy.leaf_range(a.node) {
                for t in a.first_slice..=a.last_slice {
                    let c = &mut cover[s * n_slices + t];
                    if *c != 0 {
                        return Err(format!("cell ({s}, {t}) covered twice"));
                    }
                    *c = 1;
                }
            }
        }
        if let Some(pos) = cover.iter().position(|&c| c == 0) {
            return Err(format!(
                "cell ({}, {}) not covered",
                pos / n_slices,
                pos % n_slices
            ));
        }
        Ok(())
    }

    /// Group areas by hierarchy node, useful for rendering.
    pub fn areas_of_node(&self, node: NodeId) -> impl Iterator<Item = &Area> {
        self.areas.iter().filter(move |a| a.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelotl_trace::Hierarchy;

    #[test]
    fn microscopic_partition_covers() {
        let h = Hierarchy::balanced(&[2, 3]);
        let p = Partition::microscopic(&h, 4);
        assert_eq!(p.len(), 6 * 4);
        assert!(p.validate(&h, 4).is_ok());
    }

    #[test]
    fn full_partition_covers() {
        let h = Hierarchy::balanced(&[2, 3]);
        let p = Partition::full(&h, 4);
        assert_eq!(p.len(), 1);
        assert!(p.validate(&h, 4).is_ok());
    }

    #[test]
    fn product_partition_covers() {
        let h = Hierarchy::balanced(&[3, 4]);
        let spatial: Vec<NodeId> = h.top_level().to_vec();
        let temporal = vec![(0, 1), (2, 4), (5, 5)];
        let p = Partition::product(&spatial, &temporal);
        assert_eq!(p.len(), 9);
        assert!(p.validate(&h, 6).is_ok());
    }

    #[test]
    fn overlapping_areas_rejected() {
        let h = Hierarchy::balanced(&[2, 2]);
        let a = h.top_level()[0];
        let p = Partition::new(vec![Area::new(h.root(), 0, 1), Area::new(a, 0, 0)]);
        assert!(p.validate(&h, 2).is_err());
    }

    #[test]
    fn hole_rejected() {
        let h = Hierarchy::balanced(&[2]);
        let p = Partition::new(vec![Area::new(h.root(), 0, 0)]);
        assert!(p.validate(&h, 2).is_err());
    }

    #[test]
    fn area_cell_counts() {
        let h = Hierarchy::balanced(&[2, 2]);
        let a = Area::new(h.root(), 0, 2);
        assert_eq!(a.n_slices(), 3);
        assert_eq!(a.n_cells(&h), 12);
        let leaf = h.leaf_node(ocelotl_trace::LeafId(0));
        assert!(Area::new(leaf, 1, 1).is_microscopic(&h));
        assert!(!Area::new(leaf, 0, 1).is_microscopic(&h));
    }

    #[test]
    fn partition_equality_is_order_insensitive() {
        let h = Hierarchy::balanced(&[2]);
        let l0 = h.leaf_node(ocelotl_trace::LeafId(0));
        let l1 = h.leaf_node(ocelotl_trace::LeafId(1));
        let p1 = Partition::new(vec![Area::new(l0, 0, 0), Area::new(l1, 0, 0)]);
        let p2 = Partition::new(vec![Area::new(l1, 0, 0), Area::new(l0, 0, 0)]);
        assert_eq!(p1, p2);
    }
}
