//! Aggregate inspection — the paper's future-work interaction: *"we
//! foresee to use interaction solutions to retrieve data such as the
//! proportion of all the active states"* (§VI).
//!
//! Given a partition, this module answers the questions an analyst asks by
//! hovering/clicking an aggregate: which states are active and in which
//! proportions, how many resources and how much time it spans, and how
//! faithful the aggregate is (its own gain/loss contribution).

use crate::cube::QualityCube;

use crate::partition::{Area, Partition};
use ocelotl_trace::{LeafId, StateId};

/// Everything known about one aggregate of a partition.
#[derive(Debug, Clone)]
pub struct AreaReport {
    /// The area itself.
    pub area: Area,
    /// `/`-separated hierarchy path of the node.
    pub path: String,
    /// Number of underlying resources `|S_k|`.
    pub n_resources: usize,
    /// Number of slices spanned.
    pub n_slices: usize,
    /// All aggregated state proportions `ρ_x` (Eq. 1), indexed by state,
    /// paired with state names, sorted descending.
    pub proportions: Vec<(String, f64)>,
    /// The mode state name, if any state is active.
    pub mode: Option<String>,
    /// Mode confidence `ρ_max/Σρ`.
    pub confidence: f64,
    /// This area's information loss (Eq. 2).
    pub loss: f64,
    /// This area's data-reduction gain (Eq. 3).
    pub gain: f64,
}

/// Inspect one area.
pub fn inspect_area<C: QualityCube>(input: &C, area: &Area) -> AreaReport {
    let h = input.hierarchy();
    let rhos = input.rho_aggregate_all(area.node, area.first_slice, area.last_slice);
    let total: f64 = rhos.iter().sum();
    let mut proportions: Vec<(String, f64)> = rhos
        .iter()
        .enumerate()
        .map(|(x, &r)| (input.states().name(StateId(x as u16)).to_string(), r))
        .collect();
    proportions.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (mode, confidence) = match proportions.first() {
        Some((name, r)) if *r > 0.0 => (Some(name.clone()), r / total),
        _ => (None, 0.0),
    };
    AreaReport {
        area: *area,
        path: h.path(area.node),
        n_resources: h.n_leaves_under(area.node),
        n_slices: area.n_slices(),
        proportions,
        mode,
        confidence,
        loss: input.loss(area.node, area.first_slice, area.last_slice),
        gain: input.gain(area.node, area.first_slice, area.last_slice),
    }
}

/// Find the aggregate of a partition covering a microscopic cell
/// (the hit-test behind hovering a pixel).
pub fn area_at<C: QualityCube>(
    partition: &Partition,
    input: &C,
    leaf: LeafId,
    slice: usize,
) -> Option<Area> {
    let h = input.hierarchy();
    partition
        .areas()
        .iter()
        .find(|a| {
            h.leaf_range(a.node).contains(&leaf.index())
                && (a.first_slice..=a.last_slice).contains(&slice)
        })
        .copied()
}

/// Summarize a whole partition: the `n` largest aggregates by cell count,
/// with their reports — the textual counterpart of the paper's overview.
pub fn summarize<C: QualityCube>(input: &C, partition: &Partition, n: usize) -> Vec<AreaReport> {
    let h = input.hierarchy();
    let mut areas: Vec<Area> = partition.areas().to_vec();
    areas.sort_by_key(|a| std::cmp::Reverse(a.n_cells(h)));
    areas.truncate(n);
    areas.iter().map(|a| inspect_area(input, a)).collect()
}

/// Render a partition summary as fixed-width text (for terminal UIs and
/// the `trace_explorer` example).
pub fn summary_text<C: QualityCube>(input: &C, partition: &Partition, n: usize) -> String {
    let mut out = area_table_header();
    for r in summarize(input, partition, n) {
        out.push_str(&area_table_row(
            &r.path,
            r.n_resources,
            r.area.first_slice,
            r.area.last_slice,
            r.mode.as_deref(),
            r.confidence,
            r.loss,
            r.gain,
        ));
    }
    out
}

/// Fixed-width header line of the aggregate summary table — the **one**
/// definition of this format, shared by [`summary_text`] and the CLI's
/// reply printer so in-process and protocol output cannot drift.
pub fn area_table_header() -> String {
    format!(
        "{:<28} {:>6} {:>7} {:>14} {:>6} {:>9} {:>9}\n",
        "node", "res", "slices", "mode", "conf", "loss", "gain"
    )
}

/// One fixed-width row of the aggregate summary table (newline included).
#[allow(clippy::too_many_arguments)]
pub fn area_table_row(
    path: &str,
    n_resources: usize,
    first_slice: usize,
    last_slice: usize,
    mode: Option<&str>,
    confidence: f64,
    loss: f64,
    gain: f64,
) -> String {
    format!(
        "{:<28} {:>6} {:>7} {:>14} {:>5.0}% {:>9.3} {:>9.3}\n",
        truncate(path, 28),
        n_resources,
        format!("{first_slice}..{last_slice}"),
        mode.unwrap_or("idle"),
        confidence * 100.0,
        loss,
        gain,
    )
}

/// Keep the last `n - 1` *characters* (never slicing mid-UTF-8; paths
/// from Pajé traces may carry non-ASCII container names).
fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        return s.to_string();
    }
    let tail: String = s
        .chars()
        .rev()
        .take(n - 1)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    format!("…{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::aggregate_default;
    use crate::input::AggregationInput;
    use ocelotl_trace::synthetic::fig3_model;

    fn setup() -> (AggregationInput, Partition) {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.5).partition(&input);
        (input, part)
    }

    #[test]
    fn area_report_proportions_sum_to_one_on_fig3() {
        let (input, part) = setup();
        for a in part.areas() {
            let r = inspect_area(&input, a);
            let total: f64 = r.proportions.iter().map(|(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-9, "area {a:?} sums to {total}");
            assert!(r.mode.is_some());
            assert!(r.confidence >= 0.5, "two states: mode covers ≥ half");
            assert!(r.proportions.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn hit_test_finds_the_covering_area() {
        let (input, part) = setup();
        for (leaf, slice) in [(0u32, 0usize), (5, 7), (11, 19)] {
            let area = area_at(&part, &input, LeafId(leaf), slice).expect("covered");
            let h = input.hierarchy();
            assert!(h.leaf_range(area.node).contains(&(leaf as usize)));
            assert!((area.first_slice..=area.last_slice).contains(&slice));
        }
    }

    #[test]
    fn hit_test_misses_out_of_range() {
        let (input, part) = setup();
        assert!(area_at(&part, &input, LeafId(0), 99).is_none());
    }

    #[test]
    fn summary_orders_by_size_and_truncates() {
        let (input, part) = setup();
        let top = summarize(&input, &part, 3);
        assert_eq!(top.len(), 3.min(part.len()));
        let h = input.hierarchy();
        let sizes: Vec<usize> = top.iter().map(|r| r.area.n_cells(h)).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn summary_text_is_tabular() {
        let (input, part) = setup();
        let text = summary_text(&input, &part, 5);
        assert!(text.lines().count() >= 2);
        assert!(text.contains("mode"));
        assert!(text.contains("state1") || text.contains("state2"));
    }

    #[test]
    fn loss_and_gain_match_input_matrices() {
        let (input, part) = setup();
        let a = part.areas()[0];
        let r = inspect_area(&input, &a);
        assert_eq!(r.loss, input.loss(a.node, a.first_slice, a.last_slice));
        assert_eq!(r.gain, input.gain(a.node, a.first_slice, a.last_slice));
    }
}
