//! Cross-checking utilities: exhaustive enumeration of consistent
//! partitions (for small instances) and diagnostics comparing aggregation
//! strategies.

use crate::cube::QualityCube;
use crate::partition::{Area, Partition};
use ocelotl_trace::{Hierarchy, NodeId};

/// Enumerate *every* hierarchy-and-order-consistent partition of the area
/// `(node, [i, j])`. Exponential — use only on tiny instances (tests).
///
/// Partitions reachable through different cut sequences appear once per
/// sequence; callers looking for the optimum simply take a max.
pub fn enumerate_partitions(
    hierarchy: &Hierarchy,
    node: NodeId,
    i: usize,
    j: usize,
) -> Vec<Vec<Area>> {
    let mut out = Vec::new();

    // 1. No cut.
    out.push(vec![Area::new(node, i, j)]);

    // 2. Spatial cut: Cartesian product of the children's partitions.
    let children = hierarchy.children(node);
    if !children.is_empty() {
        let mut combos: Vec<Vec<Area>> = vec![Vec::new()];
        for &c in children {
            let child_parts = enumerate_partitions(hierarchy, c, i, j);
            let mut next = Vec::with_capacity(combos.len() * child_parts.len());
            for base in &combos {
                for cp in &child_parts {
                    let mut v = base.clone();
                    v.extend(cp.iter().copied());
                    next.push(v);
                }
            }
            combos = next;
        }
        out.extend(combos);
    }

    // 3. Temporal cuts: only the *first* cut position is enumerated here and
    // the left part is kept un-recut (the right part recurses), which still
    // reaches every order-consistent interval partition exactly once when
    // combined with deeper recursion on the left... To guarantee coverage we
    // instead enumerate the leftmost interval [i, k] as an uncut-in-time
    // piece (but possibly spatially cut) and recurse on [k+1, j].
    for k in i..j {
        let lefts = enumerate_left_piece(hierarchy, node, i, k);
        let rights = enumerate_partitions(hierarchy, node, k + 1, j);
        for l in &lefts {
            for r in &rights {
                let mut v = l.clone();
                v.extend(r.iter().copied());
                out.push(v);
            }
        }
    }

    out
}

/// Partitions of `(node, [i, k])` whose *top-level* temporal extent is not
/// further cut (the piece is either kept or spatially refined; spatial
/// children may recurse freely).
fn enumerate_left_piece(hierarchy: &Hierarchy, node: NodeId, i: usize, k: usize) -> Vec<Vec<Area>> {
    let mut out = vec![vec![Area::new(node, i, k)]];
    let children = hierarchy.children(node);
    if !children.is_empty() {
        let mut combos: Vec<Vec<Area>> = vec![Vec::new()];
        for &c in children {
            let child_parts = enumerate_partitions(hierarchy, c, i, k);
            let mut next = Vec::with_capacity(combos.len() * child_parts.len());
            for base in &combos {
                for cp in &child_parts {
                    let mut v = base.clone();
                    v.extend(cp.iter().copied());
                    next.push(v);
                }
            }
            combos = next;
        }
        out.extend(combos);
    }
    out
}

/// Brute-force optimum over all consistent partitions (tiny instances only).
pub fn brute_force_best<C: QualityCube>(input: &C, p: f64) -> (f64, Partition) {
    let h = input.hierarchy();
    let all = enumerate_partitions(h, h.root(), 0, input.n_slices() - 1);
    let mut best_pic = f64::NEG_INFINITY;
    let mut best: Option<Partition> = None;
    for areas in all {
        let part = Partition::new(areas);
        let q = part.pic(input, p);
        if q > best_pic {
            best_pic = q;
            best = Some(part);
        }
    }
    (best_pic, best.expect("at least the trivial partition"))
}

/// Spatiotemporal mutual information of one state's proportion mass
/// (§III.D: "the mutual information would be an adequate measure to
/// quantify this information loss" of aggregating the two dimensions
/// independently).
///
/// Treating the normalized proportions `ρ_x(s,t)/Σρ_x` as a joint
/// distribution over `S × T`, returns `I(S;T) = Σ p(s,t)·log₂(p(s,t) /
/// (p(s)·p(t)))` in bits. Zero iff the state's behavior is a product of a
/// spatial and a temporal profile — exactly when the unidimensional
/// aggregations lose nothing.
pub fn mutual_information(model: &ocelotl_trace::MicroModel, x: ocelotl_trace::StateId) -> f64 {
    let n = model.n_leaves();
    let t = model.n_slices();
    let mut joint = vec![0.0f64; n * t];
    let mut total = 0.0;
    for s in 0..n {
        let series = model.series(ocelotl_trace::LeafId(s as u32), x);
        for (ti, &d) in series.iter().enumerate() {
            joint[s * t + ti] = d;
            total += d;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    let mut p_s = vec![0.0f64; n];
    let mut p_t = vec![0.0f64; t];
    for s in 0..n {
        for ti in 0..t {
            let p = joint[s * t + ti] / total;
            joint[s * t + ti] = p;
            p_s[s] += p;
            p_t[ti] += p;
        }
    }
    let mut mi = 0.0;
    for s in 0..n {
        for ti in 0..t {
            let p = joint[s * t + ti];
            if p > 0.0 {
                mi += p * (p / (p_s[s] * p_t[ti])).log2();
            }
        }
    }
    mi.max(0.0)
}

/// Total mutual information over all states, weighted by each state's mass.
pub fn total_mutual_information(model: &ocelotl_trace::MicroModel) -> f64 {
    let mut total_mass = 0.0;
    let mut acc = 0.0;
    for x in 0..model.n_states() {
        let x = ocelotl_trace::StateId(x as u16);
        let mass: f64 = (0..model.n_leaves())
            .map(|s| {
                model
                    .series(ocelotl_trace::LeafId(s as u32), x)
                    .iter()
                    .sum::<f64>()
            })
            .sum();
        acc += mass * mutual_information(model, x);
        total_mass += mass;
    }
    if total_mass > 0.0 {
        acc / total_mass
    } else {
        0.0
    }
}

/// Improvement of the true spatiotemporal optimum over the product of the
/// unidimensional optima (§III.D): `pic_2d − pic_product` evaluated on the
/// full spatiotemporal inputs at the same `p`.
pub fn spatiotemporal_advantage<C: QualityCube>(
    input: &C,
    product: &Partition,
    pic_2d: f64,
    p: f64,
) -> f64 {
    pic_2d - product.pic(input, p)
}

/// Clustering-similarity measures between two partitions of the same
/// `|S| × |T|` grid (each partition read as a clustering of the cells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionComparison {
    /// Variation of information `H(A) + H(B) − 2·I(A;B)` in bits; a metric,
    /// 0 iff the partitions are identical.
    pub variation_of_information: f64,
    /// Normalized mutual information `I(A;B)/max(H(A), H(B))` ∈ [0, 1]
    /// (defined as 1 when both partitions are trivial).
    pub normalized_mutual_information: f64,
    /// Rand index: the fraction of cell pairs on which the partitions agree
    /// (same-cluster vs different-cluster) ∈ [0, 1].
    pub rand_index: f64,
}

/// Compare two partitions of the same grid — e.g. two slider stops of the
/// same trace ("how much does the overview change between p = 0.4 and
/// p = 0.6?") or a clean vs a perturbed run.
///
/// Complexity `O(|S||T| + k_a·k_b)` — fine for screen-sized grids.
///
/// Panics if either partition does not cover the grid exactly.
///
/// ```
/// use ocelotl_core::{compare_partitions, Partition};
/// use ocelotl_trace::Hierarchy;
///
/// let h = Hierarchy::balanced(&[2, 2]);
/// let micro = Partition::microscopic(&h, 5);
/// let full = Partition::full(&h, 5);
/// let same = compare_partitions(&h, 5, &full, &full);
/// assert!((same.rand_index - 1.0).abs() < 1e-12);
/// let diff = compare_partitions(&h, 5, &micro, &full);
/// assert!(diff.variation_of_information > 4.0); // log2(20 cells)
/// ```
pub fn compare_partitions(
    hierarchy: &Hierarchy,
    n_slices: usize,
    a: &Partition,
    b: &Partition,
) -> PartitionComparison {
    let n_cells = hierarchy.n_leaves() * n_slices;
    let label = |p: &Partition| -> Vec<u32> {
        let mut l = vec![u32::MAX; n_cells];
        for (id, area) in p.areas().iter().enumerate() {
            for s in hierarchy.leaf_range(area.node) {
                for t in area.first_slice..=area.last_slice {
                    l[s * n_slices + t] = id as u32;
                }
            }
        }
        assert!(
            l.iter().all(|&x| x != u32::MAX),
            "partition does not cover the grid"
        );
        l
    };
    let (la, lb) = (label(a), label(b));

    // Contingency table over (cluster of A, cluster of B).
    let mut joint: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    let mut ca = vec![0u64; a.len()];
    let mut cb = vec![0u64; b.len()];
    for (&x, &y) in la.iter().zip(&lb) {
        *joint.entry((x, y)).or_default() += 1;
        ca[x as usize] += 1;
        cb[y as usize] += 1;
    }

    let n = n_cells as f64;
    let entropy = |counts: &[u64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    };
    let ha = entropy(&ca);
    let hb = entropy(&cb);
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c as f64 / n;
        let px = ca[x as usize] as f64 / n;
        let py = cb[y as usize] as f64 / n;
        mi += pxy * (pxy / (px * py)).log2();
    }
    // Clamp tiny negative float residue.
    let mi = mi.max(0.0);

    let vi = (ha + hb - 2.0 * mi).max(0.0);
    let hmax = ha.max(hb);
    let nmi = if hmax <= 1e-12 {
        1.0
    } else {
        (mi / hmax).clamp(0.0, 1.0)
    };

    // Rand index from pair counts: pairs co-clustered in both, separated in
    // both, over all pairs.
    let choose2 = |c: u64| (c * c.saturating_sub(1) / 2) as f64;
    let total_pairs = choose2(n_cells as u64);
    let sum_ab: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ca.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = cb.iter().map(|&c| choose2(c)).sum();
    let rand_index = if total_pairs == 0.0 {
        1.0
    } else {
        // agreements = together-in-both + apart-in-both
        (total_pairs + 2.0 * sum_ab - sum_a - sum_b) / total_pairs
    };

    PartitionComparison {
        variation_of_information: vi,
        normalized_mutual_information: nmi,
        rand_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{aggregate, aggregate_default, DpConfig};
    use crate::input::AggregationInput;
    use ocelotl_trace::synthetic::random_model;
    use ocelotl_trace::Hierarchy;

    #[test]
    fn enumeration_counts_match_known_formula_for_flat_time() {
        // 1 leaf, |T| = n: the consistent partitions are the 2^(n−1)
        // compositions of the interval.
        let h = Hierarchy::flat(1, "p");
        for n in 1..=5usize {
            let parts = enumerate_partitions(&h, h.leaf_node(ocelotl_trace::LeafId(0)), 0, n - 1);
            assert_eq!(parts.len(), 1 << (n - 1), "n={n}");
        }
    }

    #[test]
    fn enumerated_partitions_are_valid() {
        // The same partition may arise from different cut sequences (§III.E:
        // "a given partition may be expressed according to different
        // sequences"), so we only check validity and distinct coverage.
        let h = Hierarchy::balanced(&[2]);
        let parts = enumerate_partitions(&h, h.root(), 0, 2);
        let mut seen = std::collections::HashSet::new();
        for areas in &parts {
            let part = Partition::new(areas.clone());
            part.validate(&h, 3).expect("enumerated partition valid");
            seen.insert(format!("{:?}", part.areas()));
        }
        // Distinct consistent partitions: strictly more than the 4 pure
        // temporal ones (spatial refinements must appear too).
        assert!(seen.len() > 4, "only {} distinct partitions", seen.len());
    }

    #[test]
    fn dp_matches_brute_force_on_small_instances() {
        for seed in [1u64, 2, 3, 4, 5] {
            let m = random_model(&[2, 2], 4, 2, seed);
            let input = AggregationInput::build(&m);
            for &p in &[0.0, 0.3, 0.5, 0.8, 1.0] {
                let tree = aggregate(
                    &input,
                    p,
                    &DpConfig {
                        epsilon: 0.0,
                        parallel: false,
                        ..DpConfig::default()
                    },
                );
                let dp_pic = tree.optimal_pic(&input);
                let (bf_pic, _) = brute_force_best(&input, p);
                assert!(
                    (dp_pic - bf_pic).abs() < 1e-9,
                    "seed={seed} p={p}: DP {dp_pic} vs brute force {bf_pic}"
                );
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_deeper_hierarchy() {
        let m = random_model(&[3], 3, 2, 99);
        let input = AggregationInput::build(&m);
        for &p in &[0.1, 0.6, 0.9] {
            let dp_pic = aggregate_default(&input, p).optimal_pic(&input);
            let (bf_pic, _) = brute_force_best(&input, p);
            assert!((dp_pic - bf_pic).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn mutual_information_zero_for_product_structure() {
        use ocelotl_trace::synthetic::{block_model, Block};
        use ocelotl_trace::{Hierarchy, StateRegistry};
        // ρ(s,t) = f(s)·g(t) — a rank-one (product) pattern: here uniform
        // in space, varying in time → MI = 0.
        let h = Hierarchy::flat(4, "p");
        let states = StateRegistry::from_names(["a"]);
        let blocks: Vec<Block> = (0..6)
            .map(|t| Block {
                leaves: 0..4,
                slices: t..t + 1,
                rho: vec![0.1 + 0.1 * t as f64],
            })
            .collect();
        let m = block_model(h, states, 6, &blocks);
        let mi = mutual_information(&m, ocelotl_trace::StateId(0));
        assert!(
            mi.abs() < 1e-9,
            "product structure must have MI 0, got {mi}"
        );
    }

    #[test]
    fn mutual_information_positive_for_checkerboard() {
        use ocelotl_trace::synthetic::{block_model, Block};
        use ocelotl_trace::{Hierarchy, StateRegistry};
        // Checkerboard: behavior depends jointly on (s, t).
        let h = Hierarchy::flat(2, "p");
        let states = StateRegistry::from_names(["a"]);
        let m = block_model(
            h,
            states,
            2,
            &[
                Block {
                    leaves: 0..1,
                    slices: 0..1,
                    rho: vec![0.9],
                },
                Block {
                    leaves: 1..2,
                    slices: 1..2,
                    rho: vec![0.9],
                },
                Block {
                    leaves: 0..1,
                    slices: 1..2,
                    rho: vec![0.1],
                },
                Block {
                    leaves: 1..2,
                    slices: 0..1,
                    rho: vec![0.1],
                },
            ],
        );
        let mi = mutual_information(&m, ocelotl_trace::StateId(0));
        assert!(mi > 0.1, "checkerboard must have positive MI, got {mi}");
    }

    #[test]
    fn fig3_has_positive_total_mi() {
        use ocelotl_trace::synthetic::fig3_model;
        // The designed trace mixes spatial and temporal structure, so the
        // unidimensional aggregations necessarily lose information.
        let mi = total_mutual_information(&fig3_model());
        assert!(mi > 0.005, "fig3 total MI = {mi}");
    }

    #[test]
    fn advantage_is_nonnegative_for_optimal_dp() {
        use crate::onedim::product_aggregation;
        for seed in [10u64, 20, 30] {
            let m = random_model(&[2, 3], 6, 2, seed);
            let input = AggregationInput::build(&m);
            let p = 0.5;
            let prod = product_aggregation(&m, p);
            let pic2d = aggregate_default(&input, p).optimal_pic(&input);
            let adv = spatiotemporal_advantage(&input, &prod.partition, pic2d, p);
            assert!(
                adv >= -1e-9,
                "2-D optimum cannot be worse than the product partition (seed {seed})"
            );
        }
    }

    #[test]
    fn identical_partitions_compare_as_equal() {
        let m = random_model(&[2, 3], 6, 2, 8);
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.5).partition(&input);
        let c = compare_partitions(m.hierarchy(), 6, &part, &part);
        assert!(c.variation_of_information.abs() < 1e-9);
        assert!((c.normalized_mutual_information - 1.0).abs() < 1e-9);
        assert!((c.rand_index - 1.0).abs() < 1e-9);
    }

    #[test]
    fn microscopic_vs_full_are_maximally_different() {
        let h = Hierarchy::balanced(&[2, 2]);
        let micro = Partition::microscopic(&h, 5);
        let full = Partition::full(&h, 5);
        let c = compare_partitions(&h, 5, &micro, &full);
        // VI = H(micro) = log2(20 cells); RI = 0 (no pair agrees).
        assert!((c.variation_of_information - (20.0f64).log2()).abs() < 1e-9);
        assert!(c.rand_index.abs() < 1e-9);
        assert!(c.normalized_mutual_information.abs() < 1e-9);
    }

    #[test]
    fn trivial_partitions_compare_as_equal() {
        let h = Hierarchy::balanced(&[2]);
        let full = Partition::full(&h, 3);
        let c = compare_partitions(&h, 3, &full, &full);
        assert!((c.normalized_mutual_information - 1.0).abs() < 1e-12);
        assert!((c.rand_index - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_is_symmetric() {
        let m = random_model(&[3, 2], 7, 2, 21);
        let input = AggregationInput::build(&m);
        let pa = aggregate_default(&input, 0.2).partition(&input);
        let pb = aggregate_default(&input, 0.7).partition(&input);
        let ab = compare_partitions(m.hierarchy(), 7, &pa, &pb);
        let ba = compare_partitions(m.hierarchy(), 7, &pb, &pa);
        assert!((ab.variation_of_information - ba.variation_of_information).abs() < 1e-12);
        assert!((ab.rand_index - ba.rand_index).abs() < 1e-12);
        assert!(
            (ab.normalized_mutual_information - ba.normalized_mutual_information).abs() < 1e-12
        );
    }

    #[test]
    fn nearby_p_values_are_more_similar_than_distant_ones() {
        let m = random_model(&[3, 3], 10, 3, 4);
        let input = AggregationInput::build(&m);
        let p02 = aggregate_default(&input, 0.2).partition(&input);
        let p03 = aggregate_default(&input, 0.3).partition(&input);
        let p09 = aggregate_default(&input, 0.9).partition(&input);
        let near = compare_partitions(m.hierarchy(), 10, &p02, &p03);
        let far = compare_partitions(m.hierarchy(), 10, &p02, &p09);
        assert!(
            near.variation_of_information <= far.variation_of_information + 1e-9,
            "VI(0.2,0.3) = {} should not exceed VI(0.2,0.9) = {}",
            near.variation_of_information,
            far.variation_of_information
        );
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn non_covering_partition_rejected() {
        let h = Hierarchy::balanced(&[2]);
        let holey = Partition::new(vec![Area::new(h.root(), 0, 0)]);
        let full = Partition::full(&h, 2);
        let _ = compare_partitions(&h, 2, &holey, &full);
    }
}
