//! Enumeration of *significant* trade-off values (the Ocelotl slider).
//!
//! "The analyst can easily choose several levels of details by sliding the
//! aggregation strength among a set of significant values" (§I). The
//! optimal partition is piecewise-constant in `p`; this module locates the
//! boundaries by dichotomic search and returns one representative partition
//! per stability interval.

use crate::cube::QualityCube;
use crate::dp::{aggregate, DpConfig};
use crate::partition::Partition;

/// One stability interval of the trade-off parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct PEntry {
    /// Left end of the interval where `partition` is optimal.
    pub p_low: f64,
    /// Right end (exclusive up to `resolution`).
    pub p_high: f64,
    /// The optimal partition across `[p_low, p_high]`.
    pub partition: Partition,
}

/// All distinct optimal partitions over `p ∈ [0, 1]`, located by dichotomy
/// with the given resolution (boundaries are accurate to ±`resolution`).
///
/// The number of `aggregate` runs is `O(k·log(1/resolution))` for `k`
/// distinct partitions; each run touches only the cached gain/loss matrices
/// (the "instantaneous interaction" property of §V.B).
pub fn significant_partitions<C: QualityCube>(
    input: &C,
    config: &DpConfig,
    resolution: f64,
) -> Vec<PEntry> {
    assert!(resolution > 0.0 && resolution < 1.0);
    let part_at = |p: f64| aggregate(input, p, config).partition(input);

    let p0 = part_at(0.0);
    let p1 = part_at(1.0);

    // Collect (p, partition) change points: each entry is the smallest probed
    // p at which its partition was observed.
    let mut changes: Vec<(f64, Partition)> = vec![(0.0, p0.clone())];
    explore(&part_at, 0.0, &p0, 1.0, &p1, resolution, &mut changes);
    changes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    changes.dedup_by(|b, a| a.1 == b.1);

    let mut entries = Vec::with_capacity(changes.len());
    for (idx, (p, part)) in changes.iter().enumerate() {
        let p_high = changes.get(idx + 1).map(|(q, _)| *q).unwrap_or(1.0);
        entries.push(PEntry {
            p_low: *p,
            p_high,
            partition: part.clone(),
        });
    }
    entries
}

fn explore(
    part_at: &impl Fn(f64) -> Partition,
    lo: f64,
    plo: &Partition,
    hi: f64,
    phi: &Partition,
    resolution: f64,
    out: &mut Vec<(f64, Partition)>,
) {
    if plo == phi {
        return;
    }
    if hi - lo <= resolution {
        out.push((hi, phi.clone()));
        return;
    }
    let mid = 0.5 * (lo + hi);
    let pmid = part_at(mid);
    explore(part_at, lo, plo, mid, &pmid, resolution, out);
    explore(part_at, mid, &pmid, hi, phi, resolution, out);
}

/// Convenience: the representative `p` values (midpoints of stability
/// intervals), suitable for a UI slider.
pub fn significant_ps(entries: &[PEntry]) -> Vec<f64> {
    entries.iter().map(|e| 0.5 * (e.p_low + e.p_high)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggregationInput;
    use ocelotl_trace::synthetic::{fig3_model, random_model};

    #[test]
    fn fig3_has_multiple_levels_of_detail() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
        assert!(
            entries.len() >= 3,
            "fig3 should expose several levels, got {}",
            entries.len()
        );
        // Entries are ordered and contiguous in p.
        for w in entries.windows(2) {
            assert!(w[0].p_high <= w[1].p_low + 1e-12);
            assert!(w[0].p_low < w[0].p_high);
        }
        // Area counts decrease along the slider.
        let counts: Vec<usize> = entries.iter().map(|e| e.partition.len()).collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "counts should be non-increasing: {counts:?}");
        }
    }

    #[test]
    fn partitions_differ_between_entries() {
        let m = random_model(&[3, 3], 8, 2, 6060);
        let input = AggregationInput::build(&m);
        let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
        for w in entries.windows(2) {
            assert_ne!(w[0].partition, w[1].partition);
        }
    }

    #[test]
    fn representative_ps_reproduce_their_partition() {
        let m = random_model(&[2, 2], 6, 2, 42);
        let input = AggregationInput::build(&m);
        let cfg = DpConfig::default();
        let entries = significant_partitions(&input, &cfg, 1e-4);
        for (e, p) in entries.iter().zip(significant_ps(&entries)) {
            let part = aggregate(&input, p, &cfg).partition(&input);
            assert_eq!(
                part, e.partition,
                "representative p={p} does not reproduce its interval's partition"
            );
        }
    }

    #[test]
    fn uniform_model_has_single_entry() {
        use ocelotl_trace::synthetic::{block_model, Block};
        use ocelotl_trace::{Hierarchy, StateRegistry};
        let m = block_model(
            Hierarchy::balanced(&[2, 2]),
            StateRegistry::from_names(["a"]),
            4,
            &[Block {
                leaves: 0..4,
                slices: 0..4,
                rho: vec![0.5],
            }],
        );
        let input = AggregationInput::build(&m);
        let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
        assert_eq!(entries.len(), 1, "uniform data has one optimal partition");
        assert_eq!(entries[0].partition.len(), 1);
    }
}
