//! Quality measures of an aggregated representation (criterion G5,
//! "Fidelity": tell the user how far the representation is from the
//! microscopic model).
//!
//! Ocelotl presents, for each candidate `p`, the *complexity reduction* and
//! *information loss* of the corresponding partition, normalized against
//! the two extreme representations (microscopic ↔ fully aggregated).

use crate::cube::QualityCube;
use crate::partition::Partition;

/// Normalized quality figures of one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Number of aggregates in the partition.
    pub n_areas: usize,
    /// Number of microscopic cells `|S|·|T|`.
    pub n_cells: usize,
    /// `1 − n_areas / n_cells` ∈ [0, 1]: the entity-budget saving (G1).
    pub complexity_reduction: f64,
    /// Absolute information loss (bits).
    pub loss: f64,
    /// Absolute data-reduction gain (bits).
    pub gain: f64,
    /// Loss normalized by the loss of the full aggregation ∈ [0, 1]
    /// (the full aggregation maximizes loss among consistent partitions).
    pub loss_ratio: f64,
    /// Gain normalized by the gain of the full aggregation (may exceed 1:
    /// Eq. 3 gain is not monotone under coarsening).
    pub gain_ratio: f64,
}

/// Evaluate a partition's quality against the cached inputs.
pub fn quality<C: QualityCube>(input: &C, partition: &Partition) -> QualityReport {
    let h = input.hierarchy();
    let n_slices = input.n_slices();
    let n_cells = h.n_leaves() * n_slices;
    let full = Partition::full(h, n_slices);
    let full_loss = full.loss(input);
    let full_gain = full.gain(input);
    let loss = partition.loss(input);
    let gain = partition.gain(input);
    QualityReport {
        n_areas: partition.len(),
        n_cells,
        complexity_reduction: 1.0 - partition.len() as f64 / n_cells as f64,
        loss,
        gain,
        loss_ratio: if full_loss > 0.0 {
            loss / full_loss
        } else {
            0.0
        },
        gain_ratio: if full_gain.abs() > 0.0 {
            gain / full_gain
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::aggregate_default;
    use crate::input::AggregationInput;
    use ocelotl_trace::synthetic::fig3_model;

    #[test]
    fn extremes_have_expected_quality() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();

        let micro = Partition::microscopic(h, 20);
        let qm = quality(&input, &micro);
        assert_eq!(qm.n_areas, 240);
        assert!(qm.loss.abs() < 1e-12, "microscopic partition loses nothing");
        assert!(qm.complexity_reduction.abs() < 1e-12);

        let full = Partition::full(h, 20);
        let qf = quality(&input, &full);
        assert_eq!(qf.n_areas, 1);
        assert!((qf.loss_ratio - 1.0).abs() < 1e-12);
        assert!(qf.complexity_reduction > 0.99);
    }

    #[test]
    fn optimal_partitions_interpolate() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.5).partition(&input);
        let q = quality(&input, &part);
        assert!(q.n_areas > 1 && q.n_areas < q.n_cells);
        assert!((0.0..=1.0 + 1e-9).contains(&q.loss_ratio));
        assert!(q.complexity_reduction > 0.0);
    }

    #[test]
    fn loss_is_monotone_under_p() {
        // Larger p → coarser optimal partition → no less loss.
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let mut prev = -1.0;
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let part = aggregate_default(&input, p).partition(&input);
            let l = quality(&input, &part).loss;
            assert!(
                l >= prev - 1e-9,
                "loss should not decrease with p (p={p}: {l} < {prev})"
            );
            prev = l;
        }
    }
}
