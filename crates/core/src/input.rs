//! Input stage of the aggregation algorithm (§III.E "Data Input").
//!
//! For every node `S_k` of the hierarchy and every interval `T_(i,j)`, the
//! algorithm needs `gain(S_k, T_(i,j))` and `loss(S_k, T_(i,j))`. Both
//! derive from three **additive** per-state quantities (sum of durations,
//! sum of proportions, sum of Shannon information), which are prefix-summed
//! over time per node; each triangular cell then evaluates in `O(1)` per
//! state. The machinery lives in [`crate::cube`]; this module keeps the
//! historical [`AggregationInput`] name as the *dense* backend.
//!
//! # Dense vs. lazy: the memory trade-off
//!
//! [`AggregationInput`] (= [`DenseCube`]) materializes
//! two `O(|T|²)` triangular matrices per hierarchy node — the paper's
//! §III.E data structure. That costs `O(|S|·|T|²)` resident floats but
//! makes every `gain`/`loss` query a single array read, so re-running the
//! optimizer when the analyst slides the trade-off `p` never touches the
//! microscopic data again: the paper's "instantaneous interaction"
//! property (§V.B). At |S| ≈ 1500 nodes and |T| = 4096 slices, however,
//! those matrices are ~200 GB — a hard wall.
//!
//! [`LazyCube`](crate::LazyCube) keeps only the `O(|S|·|T|·|X|)` prefix
//! sums and evaluates each queried cell on demand in `O(|X|)`: memory
//! drops from quadratic to **linear** in `|T|`, at the price of an
//! `O(|X|)` loop per query. Rule of thumb: stay dense while
//! [`dense_matrix_bytes`](crate::cube::dense_matrix_bytes) fits your RAM
//! budget (the CLI's `--memory auto` uses a 1 GiB default), go lazy
//! beyond. Both backends answer bit-identically — see the
//! `backend_equivalence` test suite.

pub use crate::cube::DenseCube;

/// Cached per-node aggregation inputs for a microscopic model.
///
/// Historical name for the dense quality-cube backend; `AggregationInput`
/// in existing code, docs, and the paper-facing API is exactly
/// [`DenseCube`]. Prefer writing new consumers against the
/// [`QualityCube`](crate::QualityCube) trait so they also accept
/// [`LazyCube`](crate::LazyCube) and [`CubeBackend`](crate::CubeBackend).
pub type AggregationInput = DenseCube;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::AreaSums;
    use ocelotl_trace::synthetic::{fig3_model, random_model};
    use ocelotl_trace::{Hierarchy, LeafId, MicroModel, NodeId, StateId, StateRegistry, TimeGrid};

    /// Direct (slow) evaluation of gain/loss for cross-checking.
    fn direct_gain_loss(model: &MicroModel, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        let h = model.hierarchy();
        let w = model.grid().slice_duration();
        let n_res = h.n_leaves_under(node);
        let period = (j - i + 1) as f64 * w;
        let mut g = 0.0;
        let mut l = 0.0;
        for x in 0..model.n_states() {
            let mut sums = AreaSums::default();
            for s in h.leaf_range(node) {
                for t in i..=j {
                    sums.add_cell(model.duration(LeafId(s as u32), StateId(x as u16), t), w);
                }
            }
            g += sums.gain(n_res, period);
            l += sums.loss(n_res, period);
        }
        (g, l)
    }

    #[test]
    fn matches_direct_evaluation_on_fig3() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for node in [h.root(), h.top_level()[0], h.leaf_node(LeafId(5))] {
            for &(i, j) in &[(0, 0), (0, 19), (3, 11), (8, 19), (7, 7)] {
                let (g, l) = direct_gain_loss(&m, node, i, j);
                assert!(
                    (input.gain(node, i, j) - g).abs() < 1e-9,
                    "gain mismatch at {node} [{i},{j}]: {} vs {g}",
                    input.gain(node, i, j)
                );
                assert!(
                    (input.loss(node, i, j) - l).abs() < 1e-9,
                    "loss mismatch at {node} [{i},{j}]: {} vs {l}",
                    input.loss(node, i, j)
                );
            }
        }
    }

    #[test]
    fn matches_direct_evaluation_on_random() {
        let m = random_model(&[3, 2], 9, 3, 1234);
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for node in h.node_ids() {
            for i in 0..9 {
                for j in i..9 {
                    let (g, l) = direct_gain_loss(&m, node, i, j);
                    assert!((input.gain(node, i, j) - g).abs() < 1e-9);
                    assert!((input.loss(node, i, j) - l).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn loss_is_nonnegative_everywhere() {
        let m = random_model(&[4, 3], 12, 4, 99);
        let input = AggregationInput::build(&m);
        for node in m.hierarchy().node_ids() {
            for i in 0..12 {
                for j in i..12 {
                    assert!(input.loss(node, i, j) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn single_cell_areas_are_neutral() {
        // A leaf over a single slice is a microscopic cell: gain = loss = 0.
        let m = random_model(&[5], 6, 2, 3);
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for leaf in 0..5 {
            let node = h.leaf_node(LeafId(leaf));
            for t in 0..6 {
                assert!(input.gain(node, t, t).abs() < 1e-12);
                assert!(input.loss(node, t, t).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rho_aggregate_is_mean_over_cells() {
        // Uniform model: every aggregate must report the same proportion.
        let h = Hierarchy::balanced(&[2, 2]);
        let states = StateRegistry::from_names(["a"]);
        let grid = TimeGrid::new(0.0, 8.0, 8);
        let rho = vec![0.25; 4 * 8];
        let m = MicroModel::from_proportions(h, states, grid, rho);
        let input = AggregationInput::build(&m);
        for node in m.hierarchy().node_ids() {
            for i in 0..8 {
                for j in i..8 {
                    let r = input.rho_aggregate(node, StateId(0), i, j);
                    assert!((r - 0.25).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn homogeneous_region_has_zero_loss_and_positive_gain() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        // Slice 7 is fully homogeneous (ρ = 0.5 everywhere).
        assert!(input.loss(h.root(), 7, 7).abs() < 1e-9);
        assert!(input.gain(h.root(), 7, 7) > 0.0);
    }
}
