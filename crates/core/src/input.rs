//! Input stage of the aggregation algorithm (§III.E "Data Input").
//!
//! For every node `S_k` of the hierarchy and every interval `T_(i,j)`, the
//! algorithm needs `gain(S_k, T_(i,j))` and `loss(S_k, T_(i,j))`. Both
//! derive from three **additive** per-state quantities (sum of durations,
//! sum of proportions, sum of Shannon information), which we prefix-sum over
//! time per node: leaves read the microscopic model directly, internal nodes
//! sum their children. Each triangular cell is then O(1) per state, giving
//! the paper's `O(|S||T|²)` input complexity (per state).
//!
//! The per-node gain/loss matrices are *cached* in [`AggregationInput`]:
//! re-running the optimization for a new trade-off `p` (the analyst sliding
//! the aggregation strength) does not touch the microscopic data again —
//! this is the paper's "instantaneous interaction" property (§V.B).

use crate::measures::{xlog2x, AreaSums};
use crate::tri::TriMatrix;
use ocelotl_trace::{Hierarchy, LeafId, MicroModel, NodeId, StateId, StateRegistry};
use rayon::prelude::*;

/// Cached per-node aggregation inputs for a microscopic model.
#[derive(Debug, Clone)]
pub struct AggregationInput {
    hierarchy: Hierarchy,
    states: StateRegistry,
    n_slices: usize,
    slice_duration: f64,
    /// Per node: `gain(S_k, T_(i,j))` summed over states.
    gain: Vec<TriMatrix<f64>>,
    /// Per node: `loss(S_k, T_(i,j))` summed over states.
    loss: Vec<TriMatrix<f64>>,
    /// Per node: prefix sums over slices of `Σ_s d_x(s,t)`,
    /// laid out `[state × (n_slices + 1)]`.
    prefix_duration: Vec<Vec<f64>>,
}

impl AggregationInput {
    /// Build the cached inputs from a microscopic model.
    ///
    /// Leaf prefix sums and all per-node triangular matrices are computed in
    /// parallel (each node only reads its own prefix sums).
    pub fn build(model: &MicroModel) -> Self {
        let hierarchy = model.hierarchy().clone();
        let states = model.states().clone();
        let n_slices = model.n_slices();
        let n_states = model.n_states();
        let n_nodes = hierarchy.len();
        let slice_duration = model.grid().slice_duration();
        assert!(n_states >= 1, "need at least one state");

        let stride = n_slices + 1;

        // 1. Per-node prefix sums of Σ_s d_x(s,t) and Σ_s ρ·log₂ρ.
        //    (Σ_s ρ is prefix_duration / slice_duration, not stored.)
        let mut prefix_duration: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        let mut prefix_info: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];

        // Leaves in parallel.
        let leaf_prefixes: Vec<(usize, Vec<f64>, Vec<f64>)> = (0..hierarchy.n_leaves())
            .into_par_iter()
            .map(|leaf| {
                let node = hierarchy.leaf_node(LeafId(leaf as u32));
                let mut pd = vec![0.0; n_states * stride];
                let mut pi = vec![0.0; n_states * stride];
                for x in 0..n_states {
                    let series = model.series(LeafId(leaf as u32), StateId(x as u16));
                    let (pd_row, pi_row) = (x * stride, x * stride);
                    let mut acc_d = 0.0;
                    let mut acc_i = 0.0;
                    for (t, &d) in series.iter().enumerate() {
                        acc_d += d;
                        acc_i += xlog2x(d / slice_duration);
                        pd[pd_row + t + 1] = acc_d;
                        pi[pi_row + t + 1] = acc_i;
                    }
                }
                (node.index(), pd, pi)
            })
            .collect();
        for (idx, pd, pi) in leaf_prefixes {
            prefix_duration[idx] = pd;
            prefix_info[idx] = pi;
        }

        // Internal nodes: sum of children, in post-order (children ready first).
        for &node in hierarchy.post_order() {
            if hierarchy.is_leaf(node) {
                continue;
            }
            let mut pd = vec![0.0; n_states * stride];
            let mut pi = vec![0.0; n_states * stride];
            for &c in hierarchy.children(node) {
                let (cpd, cpi) = (&prefix_duration[c.index()], &prefix_info[c.index()]);
                for (a, &b) in pd.iter_mut().zip(cpd) {
                    *a += b;
                }
                for (a, &b) in pi.iter_mut().zip(cpi) {
                    *a += b;
                }
            }
            prefix_duration[node.index()] = pd;
            prefix_info[node.index()] = pi;
        }

        // 2. Triangular gain/loss matrices, parallel over nodes.
        let matrices: Vec<(TriMatrix<f64>, TriMatrix<f64>)> = (0..n_nodes)
            .into_par_iter()
            .map(|idx| {
                let node = NodeId(idx as u32);
                let n_res = hierarchy.n_leaves_under(node);
                let pd = &prefix_duration[idx];
                let pi = &prefix_info[idx];
                let mut gain = TriMatrix::<f64>::new(n_slices);
                let mut loss = TriMatrix::<f64>::new(n_slices);
                for i in 0..n_slices {
                    for j in i..n_slices {
                        let period = (j - i + 1) as f64 * slice_duration;
                        let mut g = 0.0;
                        let mut l = 0.0;
                        for x in 0..n_states {
                            let row = x * stride;
                            let sums = AreaSums {
                                sum_duration: pd[row + j + 1] - pd[row + i],
                                sum_rho: (pd[row + j + 1] - pd[row + i]) / slice_duration,
                                sum_rho_log_rho: pi[row + j + 1] - pi[row + i],
                            };
                            g += sums.gain(n_res, period);
                            l += sums.loss(n_res, period);
                        }
                        gain.set(i, j, g);
                        loss.set(i, j, l);
                    }
                }
                (gain, loss)
            })
            .collect();

        let mut gain = Vec::with_capacity(n_nodes);
        let mut loss = Vec::with_capacity(n_nodes);
        for (g, l) in matrices {
            gain.push(g);
            loss.push(l);
        }

        Self {
            hierarchy,
            states,
            n_slices,
            slice_duration,
            gain,
            loss,
            prefix_duration,
        }
    }

    /// The spatial hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The state registry.
    #[inline]
    pub fn states(&self) -> &StateRegistry {
        &self.states
    }

    /// `|T|`: number of time slices.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.n_slices
    }

    /// `|X|`: number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// `d(t)`: duration of one slice.
    #[inline]
    pub fn slice_duration(&self) -> f64 {
        self.slice_duration
    }

    /// `gain(S_k, T_(i,j))` summed over states.
    #[inline]
    pub fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.gain[node.index()].get(i, j)
    }

    /// `loss(S_k, T_(i,j))` summed over states.
    #[inline]
    pub fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.loss[node.index()].get(i, j)
    }

    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1.
    pub fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        let stride = self.n_slices + 1;
        let pd = &self.prefix_duration[node.index()];
        let row = x.index() * stride;
        let sum_d = pd[row + j + 1] - pd[row + i];
        let n_res = self.hierarchy.n_leaves_under(node) as f64;
        let period = (j - i + 1) as f64 * self.slice_duration;
        sum_d / (n_res * period)
    }

    /// All aggregated proportions of an area, indexed by state.
    pub fn rho_aggregate_all(&self, node: NodeId, i: usize, j: usize) -> Vec<f64> {
        (0..self.n_states())
            .map(|x| self.rho_aggregate(node, StateId(x as u16), i, j))
            .collect()
    }

    /// Estimated resident size in bytes (diagnostic; the paper's space bound
    /// is `O(|S||T|²)`).
    pub fn memory_bytes(&self) -> usize {
        let tri = self.gain.iter().map(|m| m.len()).sum::<usize>()
            + self.loss.iter().map(|m| m.len()).sum::<usize>();
        let pref = self
            .prefix_duration
            .iter()
            .map(|v| v.len())
            .sum::<usize>();
        (tri + pref) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelotl_trace::synthetic::{fig3_model, random_model};
    use ocelotl_trace::TimeGrid;

    /// Direct (slow) evaluation of gain/loss for cross-checking.
    fn direct_gain_loss(
        model: &MicroModel,
        node: NodeId,
        i: usize,
        j: usize,
    ) -> (f64, f64) {
        let h = model.hierarchy();
        let w = model.grid().slice_duration();
        let n_res = h.n_leaves_under(node);
        let period = (j - i + 1) as f64 * w;
        let mut g = 0.0;
        let mut l = 0.0;
        for x in 0..model.n_states() {
            let mut sums = AreaSums::default();
            for s in h.leaf_range(node) {
                for t in i..=j {
                    sums.add_cell(model.duration(LeafId(s as u32), StateId(x as u16), t), w);
                }
            }
            g += sums.gain(n_res, period);
            l += sums.loss(n_res, period);
        }
        (g, l)
    }

    #[test]
    fn matches_direct_evaluation_on_fig3() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for node in [h.root(), h.top_level()[0], h.leaf_node(LeafId(5))] {
            for &(i, j) in &[(0, 0), (0, 19), (3, 11), (8, 19), (7, 7)] {
                let (g, l) = direct_gain_loss(&m, node, i, j);
                assert!(
                    (input.gain(node, i, j) - g).abs() < 1e-9,
                    "gain mismatch at {node} [{i},{j}]: {} vs {g}",
                    input.gain(node, i, j)
                );
                assert!(
                    (input.loss(node, i, j) - l).abs() < 1e-9,
                    "loss mismatch at {node} [{i},{j}]: {} vs {l}",
                    input.loss(node, i, j)
                );
            }
        }
    }

    #[test]
    fn matches_direct_evaluation_on_random() {
        let m = random_model(&[3, 2], 9, 3, 1234);
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for node in h.node_ids() {
            for i in 0..9 {
                for j in i..9 {
                    let (g, l) = direct_gain_loss(&m, node, i, j);
                    assert!((input.gain(node, i, j) - g).abs() < 1e-9);
                    assert!((input.loss(node, i, j) - l).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn loss_is_nonnegative_everywhere() {
        let m = random_model(&[4, 3], 12, 4, 99);
        let input = AggregationInput::build(&m);
        for node in m.hierarchy().node_ids() {
            for i in 0..12 {
                for j in i..12 {
                    assert!(input.loss(node, i, j) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn single_cell_areas_are_neutral() {
        // A leaf over a single slice is a microscopic cell: gain = loss = 0.
        let m = random_model(&[5], 6, 2, 3);
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for leaf in 0..5 {
            let node = h.leaf_node(LeafId(leaf));
            for t in 0..6 {
                assert!(input.gain(node, t, t).abs() < 1e-12);
                assert!(input.loss(node, t, t).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rho_aggregate_is_mean_over_cells() {
        // Uniform model: every aggregate must report the same proportion.
        let h = Hierarchy::balanced(&[2, 2]);
        let states = StateRegistry::from_names(["a"]);
        let grid = TimeGrid::new(0.0, 8.0, 8);
        let rho = vec![0.25; 4 * 8];
        let m = MicroModel::from_proportions(h, states, grid, rho);
        let input = AggregationInput::build(&m);
        for node in m.hierarchy().node_ids() {
            for i in 0..8 {
                for j in i..8 {
                    let r = input.rho_aggregate(node, StateId(0), i, j);
                    assert!((r - 0.25).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn homogeneous_region_has_zero_loss_and_positive_gain() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        // Slice 7 is fully homogeneous (ρ = 0.5 everywhere).
        assert!(input.loss(h.root(), 7, 7).abs() < 1e-9);
        assert!(input.gain(h.root(), 7, 7) > 0.0);
    }
}
