//! Algorithm 1: the spatiotemporal aggregation dynamic program (§III.E).
//!
//! For each node of the hierarchy (post-order) and each interval `[i, j]`
//! (outer loop `i` descending, inner loop `j` ascending), the algorithm
//! compares:
//!
//! 1. **no cut** — the pIC of keeping `(S_k, T_(i,j))` as one aggregate;
//! 2. **spatial cut** — the sum of the children's optimal pICs on `[i, j]`;
//! 3. **temporal cuts** — for every `k ∈ [i, j)`, the sum of the node's own
//!    optimal pICs on `[i, k]` and `[k+1, j]`.
//!
//! The best choice is recorded as a *cut value* (`j` = no cut, `−1` =
//! spatial, `k` = temporal after slice `k`); the sequence of cuts uniquely
//! determines a hierarchy-and-order-consistent partition maximizing the
//! criterion. Time `O(|S||T|³)`, space `O(|S||T|²)`.
//!
//! Deviations from the paper's pseudocode, both documented in DESIGN.md:
//! the pseudocode's inner comparison uses a strict `>`, which is kept, but a
//! small tolerance `epsilon` biases ties toward the coarser representation
//! under floating-point noise; and the pseudocode's `pIC[i, cut]` is read as
//! `pIC[i, cutt]` (obvious typo fix).

use crate::cube::QualityCube;
use crate::partition::{Area, Partition};
use crate::tri::TriMatrix;
use ocelotl_trace::NodeId;
use rayon::prelude::*;
use std::sync::OnceLock;

/// Decoded cut decision for one spatiotemporal area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cut {
    /// `(S_k, T_(i,j))` is an aggregate of the partition.
    Keep,
    /// Partitioned into the children of `S_k` over the same interval.
    Spatial,
    /// Partitioned into `T_(i,k)` and `T_(k+1,j)` on the same node.
    Temporal(usize),
}

/// Raw cut encoding, exactly as in the paper.
#[inline]
fn decode(cut: i32, j: usize) -> Cut {
    if cut == -1 {
        Cut::Spatial
    } else if cut as usize == j {
        Cut::Keep
    } else {
        Cut::Temporal(cut as usize)
    }
}

/// Tunable knobs of the optimizer.
#[derive(Debug, Clone, Copy)]
pub struct DpConfig {
    /// Tie tolerance: a cut is adopted only if it improves the pIC by more
    /// than this amount (biases ties toward coarser aggregates).
    pub epsilon: f64,
    /// Process hierarchy siblings in parallel with rayon.
    pub parallel: bool,
    /// Among pIC-equal choices (within `epsilon`), prefer the cut whose
    /// optimal subpartition uses *fewer aggregates*.
    ///
    /// The paper's pseudocode adopts the first strictly-better cut, which on
    /// degenerate data (all `ρ_x ∈ {0, 1}`, hence zero gain everywhere)
    /// returns the *finest* zero-loss partition. Enabling this picks the
    /// coarsest optimum instead — the partition a human expects and the one
    /// that honors the entity-budget criterion G1. Off by default to stay
    /// faithful to Algorithm 1.
    pub prefer_coarse_ties: bool,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            epsilon: 1e-9,
            parallel: true,
            prefer_coarse_ties: false,
        }
    }
}

impl DpConfig {
    /// Default configuration with [`DpConfig::prefer_coarse_ties`] enabled.
    pub fn coarse_ties() -> Self {
        Self {
            prefer_coarse_ties: true,
            ..Self::default()
        }
    }
}

/// Result of Algorithm 1 for one trade-off value `p`: per-node cut and pIC
/// matrices, from which optimal partitions of any area can be recovered.
#[derive(Debug, Clone)]
pub struct CutTree {
    p: f64,
    /// Per node (arena order): cut values.
    cuts: Vec<TriMatrix<i32>>,
    /// Per node: optimal-partition pIC values.
    pic: Vec<TriMatrix<f64>>,
    /// Per node: aggregate count of the optimal subpartition.
    counts: Vec<TriMatrix<u32>>,
    n_slices: usize,
}

impl CutTree {
    /// The trade-off parameter this tree was computed for.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Optimal pIC over the whole trace (root node, full interval).
    pub fn optimal_pic<C: QualityCube>(&self, input: &C) -> f64 {
        self.pic[input.hierarchy().root().index()].get(0, self.n_slices - 1)
    }

    /// Cut decision for an area.
    pub fn cut(&self, node: NodeId, i: usize, j: usize) -> Cut {
        decode(self.cuts[node.index()].get(i, j), j)
    }

    /// pIC of the optimal partition of an area.
    pub fn pic(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.pic[node.index()].get(i, j)
    }

    /// Number of aggregates in the optimal subpartition of an area (without
    /// extracting it).
    pub fn n_areas(&self, node: NodeId, i: usize, j: usize) -> usize {
        self.counts[node.index()].get(i, j) as usize
    }

    /// Number of aggregates in the optimal partition of the whole trace.
    pub fn optimal_n_areas<C: QualityCube>(&self, input: &C) -> usize {
        self.n_areas(input.hierarchy().root(), 0, self.n_slices - 1)
    }

    /// Recover the optimal partition of the whole trace by following the
    /// sequence of cuts from `(S_root, T_(0,|T|−1))`.
    pub fn partition<C: QualityCube>(&self, input: &C) -> Partition {
        let mut areas = Vec::new();
        let mut stack = vec![Area::new(input.hierarchy().root(), 0, self.n_slices - 1)];
        while let Some(area) = stack.pop() {
            let (i, j) = (area.first_slice, area.last_slice);
            match self.cut(area.node, i, j) {
                Cut::Keep => areas.push(area),
                Cut::Spatial => {
                    for &c in input.hierarchy().children(area.node) {
                        stack.push(Area::new(c, i, j));
                    }
                }
                Cut::Temporal(k) => {
                    stack.push(Area::new(area.node, i, k));
                    stack.push(Area::new(area.node, k + 1, j));
                }
            }
        }
        Partition::new(areas)
    }
}

/// Run Algorithm 1 on any quality cube for trade-off `p`.
pub fn aggregate<C: QualityCube>(input: &C, p: f64, config: &DpConfig) -> CutTree {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    let h = input.hierarchy();
    let n_nodes = h.len();
    let n_slices = input.n_slices();

    type NodeResult = (TriMatrix<i32>, TriMatrix<f64>, TriMatrix<u32>);

    if config.parallel {
        // Children of a node are independent subproblems: solve them with a
        // parallel fork–join recursion. Results land in per-node OnceLocks
        // (each node is written exactly once, after its children).
        let solved: Vec<OnceLock<NodeResult>> = (0..n_nodes).map(|_| OnceLock::new()).collect();

        fn solve<C: QualityCube>(
            node: NodeId,
            input: &C,
            p: f64,
            config: &DpConfig,
            solved: &[OnceLock<NodeResult>],
        ) {
            let children = input.hierarchy().children(node);
            children
                .par_iter()
                .for_each(|&c| solve(c, input, p, config, solved));
            let child_results: Vec<&NodeResult> = children
                .iter()
                .map(|c| solved[c.index()].get().expect("child solved"))
                .collect();
            let child_pics: Vec<&TriMatrix<f64>> = child_results.iter().map(|r| &r.1).collect();
            let child_counts: Vec<&TriMatrix<u32>> = child_results.iter().map(|r| &r.2).collect();
            let result = solve_node(input, node, p, config, &child_pics, &child_counts);
            solved[node.index()].set(result).expect("node solved once");
        }

        solve(h.root(), input, p, config, &solved);

        let mut cuts = Vec::with_capacity(n_nodes);
        let mut pic = Vec::with_capacity(n_nodes);
        let mut counts = Vec::with_capacity(n_nodes);
        for cell in solved {
            let (c, q, n) = cell.into_inner().unwrap();
            cuts.push(c);
            pic.push(q);
            counts.push(n);
        }
        CutTree {
            p,
            cuts,
            pic,
            counts,
            n_slices,
        }
    } else {
        let mut results: Vec<Option<NodeResult>> = vec![None; n_nodes];
        for &node in h.post_order() {
            let child_results: Vec<_> = h
                .children(node)
                .iter()
                .map(|c| results[c.index()].as_ref().expect("post-order"))
                .collect();
            let child_pics: Vec<&TriMatrix<f64>> = child_results.iter().map(|r| &r.1).collect();
            let child_counts: Vec<&TriMatrix<u32>> = child_results.iter().map(|r| &r.2).collect();
            let result = solve_node(input, node, p, config, &child_pics, &child_counts);
            results[node.index()] = Some(result);
        }
        let mut cuts = Vec::with_capacity(n_nodes);
        let mut pic = Vec::with_capacity(n_nodes);
        let mut counts = Vec::with_capacity(n_nodes);
        for cell in results {
            let (c, q, n) = cell.unwrap();
            cuts.push(c);
            pic.push(q);
            counts.push(n);
        }
        CutTree {
            p,
            cuts,
            pic,
            counts,
            n_slices,
        }
    }
}

/// Convenience wrapper with default configuration.
pub fn aggregate_default<C: QualityCube>(input: &C, p: f64) -> CutTree {
    aggregate(input, p, &DpConfig::default())
}

/// The per-node DP (cell iteration of Algorithm 1).
///
/// Also tracks, per cell, the aggregate count of the chosen subpartition;
/// when [`DpConfig::prefer_coarse_ties`] is set, pIC-equal cuts (within
/// `epsilon`) with a lower count displace the current choice.
fn solve_node<C: QualityCube>(
    input: &C,
    node: NodeId,
    p: f64,
    config: &DpConfig,
    child_pics: &[&TriMatrix<f64>],
    child_counts: &[&TriMatrix<u32>],
) -> (TriMatrix<i32>, TriMatrix<f64>, TriMatrix<u32>) {
    let n = input.n_slices();
    let eps = config.epsilon;
    let coarse = config.prefer_coarse_ties;
    let mut cut = TriMatrix::<i32>::new(n);
    let mut pic_m = TriMatrix::<f64>::new(n);
    let mut cnt_m = TriMatrix::<u32>::new(n);

    for i in (0..n).rev() {
        for j in i..n {
            // No cut: the area itself as one aggregate. `gain_loss` lets a
            // lazy cube evaluate the cell in a single pass over the states.
            let (g, l) = input.gain_loss(node, i, j);
            let mut best_cut = j as i32;
            let mut best = p * g - (1.0 - p) * l;
            let mut best_cnt = 1u32;

            // Spatial cut?
            if !child_pics.is_empty() {
                let pic_s: f64 = child_pics.iter().map(|m| m.get(i, j)).sum();
                let cnt_s: u32 = child_counts.iter().map(|m| m.get(i, j)).sum();
                let better = pic_s > best + eps;
                let coarser_tie = coarse && cnt_s < best_cnt && (pic_s - best).abs() <= eps;
                if better || coarser_tie {
                    best_cut = -1;
                    best = best.max(pic_s);
                    best_cnt = cnt_s;
                }
            }

            // Temporal cut?
            for k in i..j {
                let pic_t = pic_m.get(i, k) + pic_m.get(k + 1, j);
                let better = pic_t > best + eps;
                let coarser_tie = coarse
                    && pic_t > best - eps
                    && cnt_m.get(i, k) + cnt_m.get(k + 1, j) < best_cnt;
                if better || coarser_tie {
                    best_cut = k as i32;
                    best = best.max(pic_t);
                    best_cnt = cnt_m.get(i, k) + cnt_m.get(k + 1, j);
                }
            }

            cut.set(i, j, best_cut);
            pic_m.set(i, j, best);
            cnt_m.set(i, j, best_cnt);
        }
    }
    (cut, pic_m, cnt_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggregationInput;
    use ocelotl_trace::synthetic::{block_model, fig3_model, random_model, Block};
    use ocelotl_trace::{Hierarchy, StateRegistry};

    fn seq_and_par(input: &AggregationInput, p: f64) -> (CutTree, CutTree) {
        let seq = aggregate(
            input,
            p,
            &DpConfig {
                parallel: false,
                ..DpConfig::default()
            },
        );
        let par = aggregate(
            input,
            p,
            &DpConfig {
                parallel: true,
                ..DpConfig::default()
            },
        );
        (seq, par)
    }

    #[test]
    fn parallel_matches_sequential() {
        let m = random_model(&[3, 4], 11, 3, 2024);
        let input = AggregationInput::build(&m);
        for &p in &[0.0, 0.2, 0.5, 0.8, 1.0] {
            let (seq, par) = seq_and_par(&input, p);
            assert_eq!(seq.partition(&input), par.partition(&input), "p = {p}");
            assert!((seq.optimal_pic(&input) - par.optimal_pic(&input)).abs() < 1e-12);
        }
    }

    #[test]
    fn partition_is_always_valid() {
        let m = random_model(&[2, 3, 2], 9, 2, 7);
        let input = AggregationInput::build(&m);
        for &p in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let tree = aggregate_default(&input, p);
            let part = tree.partition(&input);
            part.validate(m.hierarchy(), 9)
                .unwrap_or_else(|e| panic!("invalid partition at p={p}: {e}"));
        }
    }

    #[test]
    fn dp_pic_matches_extracted_partition_pic() {
        let m = random_model(&[4, 2], 8, 3, 55);
        let input = AggregationInput::build(&m);
        for &p in &[0.0, 0.3, 0.6, 1.0] {
            let tree = aggregate_default(&input, p);
            let part = tree.partition(&input);
            let expected = tree.optimal_pic(&input);
            let actual = part.pic(&input, p);
            assert!(
                (expected - actual).abs() < 1e-9,
                "p={p}: DP pIC {expected} vs partition pIC {actual}"
            );
        }
    }

    #[test]
    fn dp_beats_reference_partitions() {
        let m = random_model(&[3, 3], 10, 2, 31);
        let input = AggregationInput::build(&m);
        let h = m.hierarchy();
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let tree = aggregate_default(&input, p);
            let best = tree.optimal_pic(&input);
            for reference in [
                Partition::microscopic(h, 10),
                Partition::full(h, 10),
                Partition::product(h.top_level(), &[(0, 4), (5, 9)]),
            ] {
                let q = reference.pic(&input, p);
                assert!(
                    best >= q - 1e-9,
                    "p={p}: DP {best} worse than reference {q}"
                );
            }
        }
    }

    #[test]
    fn p_zero_yields_zero_loss_partition() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let tree = aggregate_default(&input, 0.0);
        let part = tree.partition(&input);
        assert!(part.loss(&input) < 1e-9, "p=0 partition must lose nothing");
        // And it should still aggregate the homogeneous cells (slice 7 is
        // globally homogeneous, so the partition is far from microscopic).
        assert!(part.len() < 12 * 20);
    }

    #[test]
    fn p_one_yields_full_aggregation_on_uniform_model() {
        // On a uniform model every partition has loss 0; at p=1 the DP must
        // find the gain-maximal partition, which for uniform data is the
        // full aggregation.
        let h = Hierarchy::balanced(&[2, 2]);
        let states = StateRegistry::from_names(["a", "b"]);
        let m = block_model(
            h,
            states,
            6,
            &[Block {
                leaves: 0..4,
                slices: 0..6,
                rho: vec![0.4, 0.6],
            }],
        );
        let input = AggregationInput::build(&m);
        let tree = aggregate_default(&input, 1.0);
        let part = tree.partition(&input);
        assert_eq!(part.len(), 1, "uniform data fully aggregates at p=1");
    }

    #[test]
    fn block_structure_recovered_at_intermediate_p() {
        // Two clusters with different behavior, switching at slice 5:
        // the optimal partition at moderate p should cut exactly there.
        let h = Hierarchy::balanced(&[2, 4]);
        let states = StateRegistry::from_names(["a", "b"]);
        let m = block_model(
            h,
            states,
            10,
            &[
                Block {
                    leaves: 0..4,
                    slices: 0..10,
                    rho: vec![0.9, 0.1],
                },
                Block {
                    leaves: 4..8,
                    slices: 0..5,
                    rho: vec![0.1, 0.9],
                },
                Block {
                    leaves: 4..8,
                    slices: 5..10,
                    rho: vec![0.8, 0.2],
                },
            ],
        );
        let input = AggregationInput::build(&m);
        let tree = aggregate_default(&input, 0.5);
        let part = tree.partition(&input);
        part.validate(m.hierarchy(), 10).unwrap();
        // Zero loss is achievable with 3 aggregates; the optimum cannot lose
        // information nor use more areas than the blocks require.
        assert!(part.loss(&input) < 1e-9);
        assert!(
            part.len() <= 4,
            "expected ≤4 aggregates, got {}",
            part.len()
        );
        // The second cluster must have a temporal cut at slice 4/5 boundary.
        let c2 = m.hierarchy().top_level()[1];
        let has_cut = part
            .areas()
            .iter()
            .any(|a| a.node == c2 && a.last_slice == 4);
        assert!(
            has_cut,
            "missing temporal cut at the block boundary: {part:?}"
        );
    }

    #[test]
    fn monotone_area_count_in_p_on_fig3() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let mut prev = usize::MAX;
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = aggregate_default(&input, p).partition(&input).len();
            assert!(
                n <= prev,
                "area count should not increase with p (p={p}: {n} > {prev})"
            );
            prev = n;
        }
    }

    #[test]
    fn single_slice_trace_only_spatial_cuts() {
        let m = random_model(&[3, 2], 1, 2, 11);
        let input = AggregationInput::build(&m);
        let tree = aggregate_default(&input, 0.0);
        let part = tree.partition(&input);
        part.validate(m.hierarchy(), 1).unwrap();
        for a in part.areas() {
            assert_eq!(a.first_slice, 0);
            assert_eq!(a.last_slice, 0);
        }
    }

    #[test]
    fn single_child_chain_nodes_do_not_change_the_optimum() {
        // Inserting a chain of single-child intermediate nodes leaves the
        // achievable pIC unchanged: a chain node's aggregate carries exactly
        // its only child's data, so keep-vs-spatial-cut through it is a tie
        // and the optimum value is preserved.
        use ocelotl_trace::{HierarchyBuilder, MicroModel, StateRegistry, TimeGrid};
        let slices = 6;
        let states = StateRegistry::from_names(["a", "b"]);
        let grid = TimeGrid::new(0.0, slices as f64, slices);

        // Flat: root → 4 leaves.
        let flat = ocelotl_trace::Hierarchy::flat(4, "p");
        // Chained: root → chain → chain → {4 leaves}.
        let mut b = HierarchyBuilder::new("root", "root");
        let c1 = b.add_child(b.root(), "chain1", "x");
        let c2 = b.add_child(c1, "chain2", "x");
        for i in 0..4 {
            b.add_child(c2, &format!("p{i}"), "leaf");
        }
        let chained = b.build().unwrap();

        let mut rng = ocelotl_trace::synthetic::SplitMix64(77);
        let mut rho = vec![0.0f64; 4 * 2 * slices];
        for v in rho.iter_mut() {
            *v = 0.5 * rng.next_f64();
        }
        let m_flat = MicroModel::from_proportions(flat, states.clone(), grid, rho.clone());
        let m_chain = MicroModel::from_proportions(chained, states, grid, rho);
        let in_flat = AggregationInput::build(&m_flat);
        let in_chain = AggregationInput::build(&m_chain);
        for p in [0.0, 0.3, 0.7, 1.0] {
            let a = aggregate_default(&in_flat, p).optimal_pic(&in_flat);
            let b = aggregate_default(&in_chain, p).optimal_pic(&in_chain);
            assert!((a - b).abs() < 1e-9, "p={p}: flat {a} vs chained {b}");
        }
    }

    #[test]
    fn cut_decoding() {
        assert_eq!(decode(-1, 5), Cut::Spatial);
        assert_eq!(decode(5, 5), Cut::Keep);
        assert_eq!(decode(3, 5), Cut::Temporal(3));
    }

    /// A degenerate model where all proportions are exactly 0 or 1: every
    /// zero-loss partition has pIC = 0 (gain vanishes on pure cells), so
    /// everything ties and tie-breaking decides the output's shape.
    fn pure_block_model() -> ocelotl_trace::MicroModel {
        let h = Hierarchy::balanced(&[2, 4]);
        let states = StateRegistry::from_names(["a", "b"]);
        block_model(
            h,
            states,
            10,
            &[
                // Cluster 0: state a throughout.
                Block {
                    leaves: 0..4,
                    slices: 0..10,
                    rho: vec![1.0, 0.0],
                },
                // Cluster 1: state a, except leaves 4..6 flip to b in [4, 7).
                Block {
                    leaves: 4..8,
                    slices: 0..4,
                    rho: vec![1.0, 0.0],
                },
                Block {
                    leaves: 4..6,
                    slices: 4..7,
                    rho: vec![0.0, 1.0],
                },
                Block {
                    leaves: 6..8,
                    slices: 4..7,
                    rho: vec![1.0, 0.0],
                },
                Block {
                    leaves: 4..8,
                    slices: 7..10,
                    rho: vec![1.0, 0.0],
                },
            ],
        )
    }

    #[test]
    fn coarse_ties_find_minimal_zero_loss_partition() {
        let m = pure_block_model();
        let input = AggregationInput::build(&m);
        let cfg = DpConfig::coarse_ties();
        let tree = aggregate(&input, 0.35, &cfg);
        let part = tree.partition(&input);
        part.validate(m.hierarchy(), 10).unwrap();
        assert!(part.loss(&input) < 1e-9);
        // Minimal zero-loss partition: cluster0 whole-range; cluster1 splits
        // at slices 4 and 7, and within [4,7) splits into two 2-leaf halves
        // (machines are leaves here, so per-leaf areas): the best achievable
        // is well below the paper-faithful first-cut chain.
        let faithful = aggregate_default(&input, 0.35).partition(&input);
        assert!(
            part.len() < faithful.len(),
            "coarse ties ({}) must beat first-cut ties ({})",
            part.len(),
            faithful.len()
        );
        assert!(
            part.len() <= 8,
            "expected a handful of areas, got {}",
            part.len()
        );
        // Identical optimality.
        assert!(
            (tree.optimal_pic(&input) - aggregate_default(&input, 0.35).optimal_pic(&input)).abs()
                < 1e-9
        );
    }

    #[test]
    fn area_counts_match_extracted_partition() {
        for seed in [3u64, 17, 99] {
            let m = random_model(&[3, 3], 8, 2, seed);
            let input = AggregationInput::build(&m);
            for &p in &[0.0, 0.4, 0.8, 1.0] {
                for cfg in [DpConfig::default(), DpConfig::coarse_ties()] {
                    let tree = aggregate(&input, p, &cfg);
                    let part = tree.partition(&input);
                    assert_eq!(
                        tree.optimal_n_areas(&input),
                        part.len(),
                        "seed={seed} p={p} coarse={}",
                        cfg.prefer_coarse_ties
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_ties_never_lose_pic() {
        for seed in [5u64, 6, 7] {
            let m = random_model(&[2, 2, 2], 7, 3, seed);
            let input = AggregationInput::build(&m);
            for &p in &[0.0, 0.3, 0.7, 1.0] {
                let plain = aggregate_default(&input, p).optimal_pic(&input);
                let coarse = aggregate(&input, p, &DpConfig::coarse_ties());
                assert!(
                    coarse.optimal_pic(&input) >= plain - 1e-6,
                    "seed={seed} p={p}"
                );
                assert!(
                    coarse.optimal_n_areas(&input)
                        <= aggregate_default(&input, p).optimal_n_areas(&input),
                    "coarse ties must not increase the area count (seed={seed} p={p})"
                );
            }
        }
    }
}
