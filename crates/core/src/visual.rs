//! Visual aggregation (§IV, Fig. 3.f) and mode selection.
//!
//! When the number of resources exceeds the pixel budget, small data
//! aggregates cannot be drawn individually (criterion G1). The paper's
//! rule: *"if an aggregate has a visual height inferior to a threshold, its
//! parent is drawn instead"*, with a distinguishing mark (G4):
//! a **diagonal** when the underlying resources share the same temporal
//! data partitioning, a **cross** otherwise.
//!
//! This lives in `ocelotl-core` (not the rendering crate) because the pass
//! is *data* work — it consumes the quality cube and a partition and emits
//! backend-agnostic drawable items. The [`query`](crate::query) engine runs
//! it server-side so a [`RenderOverview`](crate::query::AnalysisRequest)
//! reply is complete: any client (SVG, ASCII, a browser) can draw it
//! without access to the cube. `ocelotl-viz` re-exports everything here
//! under its historical names.
//!
//! Implementation: every area whose node is too short promotes the nearest
//! tall-enough ancestor into a *collapse set*; all areas under a collapsed
//! node are absorbed and re-emitted as visual aggregates over the union of
//! their temporal boundaries.

use crate::cube::QualityCube;
use crate::partition::{Area, Partition};
use ocelotl_trace::{Hierarchy, NodeId, StateId};
// BTreeMap, not HashMap: bucket iteration order feeds straight into the
// emitted item list, which replies and goldens pin byte-for-byte.
use std::collections::BTreeMap;

/// The mode state of an aggregate and its display transparency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// `argmax_x ρ_x`, `None` when every proportion is zero (idle area).
    pub state: Option<StateId>,
    /// `α = ρ_max / Σ_x ρ_x`; 0 for idle areas.
    pub alpha: f64,
    /// The winning proportion itself.
    pub rho_max: f64,
}

/// Compute the mode of a set of per-state aggregated proportions (Eq. 1
/// output), per §IV.
pub fn mode(rhos: &[f64]) -> Mode {
    let mut best: Option<(usize, f64)> = None;
    let mut total = 0.0;
    for (x, &r) in rhos.iter().enumerate() {
        total += r;
        if r > best.map_or(0.0, |(_, b)| b) {
            best = Some((x, r));
        }
    }
    match best {
        Some((x, r)) if total > 0.0 => Mode {
            state: Some(StateId(x as u16)),
            alpha: r / total,
            rho_max: r,
        },
        _ => Mode {
            state: None,
            alpha: 0.0,
            rho_max: 0.0,
        },
    }
}

/// Mark distinguishing visual aggregates from data aggregates (G4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisualMark {
    /// Underlying resources share the same temporal partitioning.
    Diagonal,
    /// Underlying resources have differing temporal partitionings.
    Cross,
}

impl VisualMark {
    /// Stable protocol tag (`diagonal` / `cross`).
    pub fn tag(self) -> &'static str {
        match self {
            VisualMark::Diagonal => "diagonal",
            VisualMark::Cross => "cross",
        }
    }

    /// Inverse of [`VisualMark::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "diagonal" => Some(VisualMark::Diagonal),
            "cross" => Some(VisualMark::Cross),
            _ => None,
        }
    }
}

/// One drawable item of the overview.
#[derive(Debug, Clone)]
pub struct Item {
    /// The hierarchy node whose rows this item spans.
    pub node: NodeId,
    /// First slice (inclusive).
    pub first_slice: usize,
    /// Last slice (inclusive).
    pub last_slice: usize,
    /// Mode state + transparency for rendering.
    pub mode: Mode,
    /// `None` for a data aggregate, `Some(mark)` for a visual aggregate.
    pub mark: Option<VisualMark>,
}

/// Result of the visual aggregation pass.
#[derive(Debug, Clone)]
pub struct VisualAggregation {
    /// Drawable items (data + visual aggregates).
    pub items: Vec<Item>,
    /// Number of data aggregates kept as-is.
    pub n_data: usize,
    /// Number of visual aggregates produced.
    pub n_visual: usize,
}

/// Apply visual aggregation to a partition.
///
/// `min_rows` is the pixel threshold expressed in *leaf rows*: a node
/// spanning fewer than `min_rows` leaves is too short to draw (for a canvas
/// of height `H` px and threshold `θ` px, pass `θ / (H / |S|)`).
pub fn visually_aggregate<C: QualityCube>(
    input: &C,
    partition: &Partition,
    min_rows: f64,
) -> VisualAggregation {
    let h = input.hierarchy();

    // 1. Collapse set: nearest tall-enough ancestor of every short node.
    let mut collapse: Vec<NodeId> = Vec::new();
    for a in partition.areas() {
        if (h.n_leaves_under(a.node) as f64) < min_rows {
            let mut p = a.node;
            while (h.n_leaves_under(p) as f64) < min_rows {
                match h.parent(p) {
                    Some(q) => p = q,
                    None => break,
                }
            }
            collapse.push(p);
        }
    }
    collapse.sort_unstable();
    collapse.dedup();
    // Keep only the highest nodes (drop descendants of other collapsed nodes).
    let collapse: Vec<NodeId> = collapse
        .iter()
        .copied()
        .filter(|&c| {
            !collapse
                .iter()
                .any(|&other| other != c && h.is_ancestor(other, c))
        })
        .collect();

    // 2. Partition areas into data items and per-collapse buckets.
    let mut items = Vec::new();
    let mut buckets: BTreeMap<NodeId, Vec<Area>> = BTreeMap::new();
    let mut n_data = 0;
    'areas: for a in partition.areas() {
        for &c in &collapse {
            if h.is_ancestor(c, a.node) {
                buckets.entry(c).or_default().push(*a);
                continue 'areas;
            }
        }
        items.push(Item {
            node: a.node,
            first_slice: a.first_slice,
            last_slice: a.last_slice,
            mode: mode(&input.rho_aggregate_all(a.node, a.first_slice, a.last_slice)),
            mark: None,
        });
        n_data += 1;
    }

    // 3. Emit visual aggregates per collapsed node, segmented by the union
    // of the absorbed areas' temporal boundaries.
    let mut n_visual = 0;
    for (&c, areas) in &buckets {
        let mut bounds: Vec<usize> = areas
            .iter()
            .flat_map(|a| [a.first_slice, a.last_slice + 1])
            .collect();
        bounds.sort_unstable();
        bounds.dedup();

        // Per-leaf boundary signature decides diagonal vs cross.
        let same_partitioning = uniform_temporal_partitioning(h, areas);

        for w in bounds.windows(2) {
            let (i, j) = (w[0], w[1] - 1);
            // A segment may fall into a hole of the bucket's coverage when
            // an *ancestor* area (spanning all of `c`'s rows) covers the
            // middle of the timeline — skip those, they are already drawn.
            let covered = areas
                .iter()
                .any(|a| a.first_slice <= i && j <= a.last_slice);
            if !covered {
                continue;
            }
            items.push(Item {
                node: c,
                first_slice: i,
                last_slice: j,
                mode: mode(&input.rho_aggregate_all(c, i, j)),
                mark: Some(if same_partitioning {
                    VisualMark::Diagonal
                } else {
                    VisualMark::Cross
                }),
            });
            n_visual += 1;
        }
    }

    VisualAggregation {
        items,
        n_data,
        n_visual,
    }
}

/// True if every leaf under the absorbed areas sees the same sequence of
/// temporal boundaries (the paper's "same temporal data partitioning").
fn uniform_temporal_partitioning(h: &Hierarchy, areas: &[Area]) -> bool {
    let mut per_leaf: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for a in areas {
        for leaf in h.leaf_range(a.node) {
            per_leaf
                .entry(leaf)
                .or_default()
                .push((a.first_slice, a.last_slice));
        }
    }
    let mut signatures: Vec<Vec<(usize, usize)>> = per_leaf.into_values().collect();
    for s in &mut signatures {
        s.sort_unstable();
    }
    signatures.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AggregationInput;
    use crate::{aggregate_default, Partition};
    use ocelotl_trace::synthetic::{block_model, fig3_model, Block};
    use ocelotl_trace::{Hierarchy, StateRegistry};

    #[test]
    fn mode_picks_argmax() {
        let m = mode(&[0.1, 0.6, 0.3]);
        assert_eq!(m.state, Some(StateId(1)));
        assert!((m.alpha - 0.6).abs() < 1e-12);
        assert!((m.rho_max - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mode_alpha_bounds() {
        // Uniform proportions → α = 1/|X| (the paper's lower bound).
        let m = mode(&[0.25, 0.25, 0.25, 0.25]);
        assert!((m.alpha - 0.25).abs() < 1e-12);
        // Single active state → α = 1.
        let m = mode(&[0.0, 0.7, 0.0]);
        assert!((m.alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_area_has_no_mode() {
        let m = mode(&[0.0, 0.0]);
        assert_eq!(m.state, None);
        assert_eq!(m.alpha, 0.0);
    }

    #[test]
    fn mark_tags_round_trip() {
        for m in [VisualMark::Diagonal, VisualMark::Cross] {
            assert_eq!(VisualMark::from_tag(m.tag()), Some(m));
        }
        assert_eq!(VisualMark::from_tag("zigzag"), None);
    }

    #[test]
    fn no_aggregation_when_threshold_is_low() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.3).partition(&input);
        let va = visually_aggregate(&input, &part, 1.0);
        assert_eq!(va.n_visual, 0);
        assert_eq!(va.n_data, part.len());
        assert_eq!(va.items.len(), part.len());
    }

    #[test]
    fn small_areas_get_absorbed() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        // p = 0 keeps many per-leaf areas (height 1 < threshold 2).
        let part = aggregate_default(&input, 0.0).partition(&input);
        let va = visually_aggregate(&input, &part, 2.0);
        assert!(va.n_visual > 0, "leaf-level areas must be visually merged");
        assert!(va.n_data + va.n_visual == va.items.len());
        // Every item is now at least 2 leaves tall... unless it is the
        // marked visual aggregate itself (which is, by construction).
        for item in &va.items {
            if item.mark.is_none() {
                assert!(m.hierarchy().n_leaves_under(item.node) >= 2);
            }
        }
    }

    #[test]
    fn items_still_tile_the_grid() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        for &p in &[0.0, 0.3, 0.6] {
            for &thr in &[1.0, 2.0, 4.0, 12.0] {
                let part = aggregate_default(&input, p).partition(&input);
                let va = visually_aggregate(&input, &part, thr);
                // Items must cover each (leaf, slice) cell exactly once.
                let mut cover = vec![0u8; 12 * 20];
                for item in &va.items {
                    for leaf in m.hierarchy().leaf_range(item.node) {
                        for t in item.first_slice..=item.last_slice {
                            cover[leaf * 20 + t] += 1;
                        }
                    }
                }
                assert!(
                    cover.iter().all(|&c| c == 1),
                    "p={p} thr={thr}: coverage {:?}",
                    cover.iter().filter(|&&c| c != 1).count()
                );
            }
        }
    }

    #[test]
    fn diagonal_for_uniform_children_cross_otherwise() {
        // Cluster 0: both leaves share the same temporal cut (uniform);
        // cluster 1: leaves cut at different places.
        let h = Hierarchy::balanced(&[2, 2]);
        let states = StateRegistry::from_names(["a", "b"]);
        let m = block_model(
            h,
            states,
            8,
            &[
                // cluster 0 (leaves 0,1): same phase change at t=4.
                Block {
                    leaves: 0..2,
                    slices: 0..4,
                    rho: vec![0.9, 0.1],
                },
                Block {
                    leaves: 0..2,
                    slices: 4..8,
                    rho: vec![0.1, 0.9],
                },
                // cluster 1: leaf 2 changes at t=2, leaf 3 at t=6.
                Block {
                    leaves: 2..3,
                    slices: 0..2,
                    rho: vec![0.9, 0.1],
                },
                Block {
                    leaves: 2..3,
                    slices: 2..8,
                    rho: vec![0.2, 0.8],
                },
                Block {
                    leaves: 3..4,
                    slices: 0..6,
                    rho: vec![0.8, 0.2],
                },
                Block {
                    leaves: 3..4,
                    slices: 6..8,
                    rho: vec![0.1, 0.9],
                },
            ],
        );
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.05).partition(&input);
        // Threshold of 2 rows: leaf-level areas collapse to their clusters.
        let va = visually_aggregate(&input, &part, 2.0);
        let h = m.hierarchy();
        let c0 = h.top_level()[0];
        let c1 = h.top_level()[1];
        let marks_of = |node| {
            va.items
                .iter()
                .filter(|i| i.node == node)
                .filter_map(|i| i.mark)
                .collect::<Vec<_>>()
        };
        let m0 = marks_of(c0);
        let m1 = marks_of(c1);
        // Cluster 0's leaves were likely aggregated at cluster level already
        // (uniform), so it may have no marks; if it has, they are diagonal.
        assert!(m0.iter().all(|&m| m == VisualMark::Diagonal), "{m0:?}");
        // Cluster 1 must be marked cross (differing partitionings).
        assert!(!m1.is_empty());
        assert!(m1.iter().all(|&m| m == VisualMark::Cross), "{m1:?}");
    }

    #[test]
    fn counts_are_consistent() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let part = aggregate_default(&input, 0.15).partition(&input);
        let va = visually_aggregate(&input, &part, 3.0);
        assert_eq!(va.items.len(), va.n_data + va.n_visual);
        // Visual aggregation never increases the item count beyond the
        // refined union of boundaries, and data items are a subset of areas.
        assert!(va.n_data <= part.len());
    }

    #[test]
    fn full_collapse_to_root() {
        let m = fig3_model();
        let input = AggregationInput::build(&m);
        let part = Partition::microscopic(m.hierarchy(), 20);
        // Threshold taller than the whole tree: everything collapses to root.
        let va = visually_aggregate(&input, &part, 100.0);
        assert_eq!(va.n_data, 0);
        assert!(va.items.iter().all(|i| i.node == m.hierarchy().root()));
        // Microscopic partition has identical boundaries on every leaf.
        assert!(va
            .items
            .iter()
            .all(|i| i.mark == Some(VisualMark::Diagonal)));
    }
}
