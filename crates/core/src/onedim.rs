//! Unidimensional aggregation baselines (§III.D "Spatial and Temporal
//! Aggregation").
//!
//! These are the algorithms of the paper's prior work that the
//! spatiotemporal algorithm generalizes:
//!
//! - **spatial-only** ([Lamarche-Perrin et al.], Viva): partition the
//!   hierarchy applied to the *temporally-aggregated* trace `S × {T}`;
//!   a depth-first search computes the optimal hierarchy-consistent
//!   partition in `O(|S|)`;
//! - **temporal-only** (Ocelotl 1-D, Jackson et al.): partition time applied
//!   to the *spatially-aggregated* trace `{S} × T`; dynamic programming
//!   computes the optimal order-consistent partition in `O(|T|²)`.
//!
//! Their Cartesian product (`Fig. 3.c`) is the baseline the paper argues is
//! strictly weaker than the true spatiotemporal optimum (`Fig. 3.d`).

use crate::cube::QualityCube;
use crate::measures::pic;
use crate::partition::Partition;
use ocelotl_trace::{Hierarchy, HierarchyBuilder, LeafId, MicroModel, NodeId, StateId, TimeGrid};

/// Collapse the temporal dimension: the whole trace becomes one slice, so
/// the spatial algorithm sees micro cells `(s, T)` with
/// `ρ_x(s, T) = Σ_t d_x(s,t) / Σ_t d(t)`.
pub fn collapse_time(model: &MicroModel) -> MicroModel {
    let h = model.hierarchy().clone();
    let states = model.states().clone();
    let grid = TimeGrid::new(model.grid().start(), model.grid().end(), 1);
    let n = model.n_leaves();
    let x = model.n_states();
    let mut durations = vec![0.0f64; n * x];
    for s in 0..n {
        for xi in 0..x {
            durations[s * x + xi] = model
                .series(LeafId(s as u32), StateId(xi as u16))
                .iter()
                .sum();
        }
    }
    MicroModel::from_dense(h, states, grid, durations)
}

/// Collapse the spatial dimension: a single virtual resource whose
/// proportions are the Eq. 1 average over all leaves,
/// `ρ_x(S, t) = (1/|S|)·Σ_s ρ_x(s,t)`.
pub fn collapse_space(model: &MicroModel) -> MicroModel {
    let states = model.states().clone();
    let grid = *model.grid();
    let n = model.n_leaves();
    let x = model.n_states();
    let t = model.n_slices();
    let h = HierarchyBuilder::new("S", "root")
        .build()
        .expect("single node");
    let mut durations = vec![0.0f64; x * t];
    for s in 0..n {
        for xi in 0..x {
            for (ti, &d) in model
                .series(LeafId(s as u32), StateId(xi as u16))
                .iter()
                .enumerate()
            {
                durations[xi * t + ti] += d / n as f64;
            }
        }
    }
    MicroModel::from_dense(h, states, grid, durations)
}

/// Result of the spatial-only algorithm: the nodes forming the optimal
/// hierarchy-consistent partition of `S`, plus its pIC on `S × {T}`.
#[derive(Debug, Clone)]
pub struct SpatialPartition {
    /// Nodes forming the hierarchy-consistent partition of `S`.
    pub nodes: Vec<NodeId>,
    /// Its pIC on the temporally-collapsed trace.
    pub pic: f64,
}

/// Optimal hierarchy-consistent partition of the temporally-aggregated
/// trace, by post-order DFS (`O(|S|)` comparisons).
///
/// `input` must be built on a 1-slice model (see [`collapse_time`]).
pub fn spatial_partition<C: QualityCube>(input: &C, p: f64) -> SpatialPartition {
    assert_eq!(
        input.n_slices(),
        1,
        "spatial algorithm expects a temporally-collapsed model"
    );
    let h = input.hierarchy();
    let n = h.len();
    // best pIC of the optimal partition of each subtree; cut = true when the
    // node is split into its children.
    let mut best = vec![0.0f64; n];
    let mut split = vec![false; n];
    for &node in h.post_order() {
        let (g, l) = input.gain_loss(node, 0, 0);
        let own = pic(p, g, l);
        if h.is_leaf(node) {
            best[node.index()] = own;
        } else {
            let children_sum: f64 = h.children(node).iter().map(|c| best[c.index()]).sum();
            if children_sum > own + 1e-9 {
                best[node.index()] = children_sum;
                split[node.index()] = true;
            } else {
                best[node.index()] = own;
            }
        }
    }
    // Extract: walk down from the root, stopping at unsplit nodes.
    let mut nodes = Vec::new();
    let mut stack = vec![h.root()];
    while let Some(nd) = stack.pop() {
        if split[nd.index()] {
            stack.extend(h.children(nd).iter().copied());
        } else {
            nodes.push(nd);
        }
    }
    nodes.sort_unstable();
    SpatialPartition {
        nodes,
        pic: best[h.root().index()],
    }
}

/// Result of the temporal-only algorithm: interval boundaries (inclusive)
/// of the optimal order-consistent partition, plus its pIC on `{S} × T`.
#[derive(Debug, Clone)]
pub struct TemporalPartition {
    /// Inclusive `(first, last)` slice intervals, in order.
    pub intervals: Vec<(usize, usize)>,
    /// Its pIC on the spatially-collapsed trace.
    pub pic: f64,
}

/// Optimal order-consistent partition of the spatially-aggregated trace, by
/// the classic `O(|T|²)` interval dynamic program (Jackson et al. \[20\]).
///
/// `input` must be built on a 1-leaf model (see [`collapse_space`]).
pub fn temporal_partition<C: QualityCube>(input: &C, p: f64) -> TemporalPartition {
    assert_eq!(
        input.hierarchy().n_leaves(),
        1,
        "temporal algorithm expects a spatially-collapsed model"
    );
    let root = input.hierarchy().root();
    let n = input.n_slices();
    let q = |i: usize, j: usize| {
        let (g, l) = input.gain_loss(root, i, j);
        pic(p, g, l)
    };

    // best[j]: optimal pIC of a partition of slices 0..=j;
    // back[j]: start index of the last interval of that optimum.
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut back = vec![0usize; n];
    for j in 0..n {
        // Last interval is [0, j].
        let mut b = q(0, j);
        let mut bk = 0usize;
        // Last interval is [k, j] for k ≥ 1.
        for k in 1..=j {
            let cand = best[k - 1] + q(k, j);
            if cand > b + 1e-9 {
                b = cand;
                bk = k;
            }
        }
        best[j] = b;
        back[j] = bk;
    }

    // Reconstruct intervals right-to-left.
    let mut intervals = Vec::new();
    let mut j = n - 1;
    loop {
        let k = back[j];
        intervals.push((k, j));
        if k == 0 {
            break;
        }
        j = k - 1;
    }
    intervals.reverse();
    TemporalPartition {
        intervals,
        pic: best[n - 1],
    }
}

/// Convenience: run both unidimensional algorithms on a model and build the
/// product partition `P(S) × P(T)` of §III.D / Fig. 3.c.
pub struct ProductAggregation {
    /// The spatial-only optimum `P(S)`.
    pub spatial: SpatialPartition,
    /// The temporal-only optimum `P(T)`.
    pub temporal: TemporalPartition,
    /// Their Cartesian product `P(S) × P(T)` as a 2-D partition.
    pub partition: Partition,
}

/// Run both unidimensional algorithms at trade-off `p` and combine them.
///
/// The collapsed models are tiny (one slice, resp. one leaf), so the
/// dense cube is always the right backend here.
pub fn product_aggregation(model: &MicroModel, p: f64) -> ProductAggregation {
    let time_collapsed = crate::cube::DenseCube::build(&collapse_time(model));
    let space_collapsed = crate::cube::DenseCube::build(&collapse_space(model));
    let spatial = spatial_partition(&time_collapsed, p);
    let temporal = temporal_partition(&space_collapsed, p);
    let partition = Partition::product(&spatial.nodes, &temporal.intervals);
    ProductAggregation {
        spatial,
        temporal,
        partition,
    }
}

/// Validate that spatial nodes form a hierarchy-consistent partition of `S`.
pub fn validate_spatial(h: &Hierarchy, nodes: &[NodeId]) -> Result<(), String> {
    let mut cover = vec![false; h.n_leaves()];
    for &nd in nodes {
        for leaf in h.leaf_range(nd) {
            if cover[leaf] {
                return Err(format!("leaf {leaf} covered twice"));
            }
            cover[leaf] = true;
        }
    }
    if let Some(i) = cover.iter().position(|&c| !c) {
        return Err(format!("leaf {i} not covered"));
    }
    Ok(())
}

/// Validate that intervals form an order-consistent partition of `0..n`.
pub fn validate_temporal(intervals: &[(usize, usize)], n: usize) -> Result<(), String> {
    let mut expected = 0usize;
    for &(i, j) in intervals {
        if i != expected {
            return Err(format!("interval starts at {i}, expected {expected}"));
        }
        if j < i || j >= n {
            return Err(format!("bad interval ({i}, {j})"));
        }
        expected = j + 1;
    }
    if expected != n {
        return Err(format!("intervals end at {expected}, expected {n}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregationInput;
    use ocelotl_trace::synthetic::{block_model, fig3_model, random_model, Block};
    use ocelotl_trace::StateRegistry;

    #[test]
    fn collapse_time_preserves_totals() {
        let m = random_model(&[2, 3], 7, 2, 5);
        let c = collapse_time(&m);
        assert_eq!(c.n_slices(), 1);
        assert!((c.grand_total() - m.grand_total()).abs() < 1e-9);
    }

    #[test]
    fn collapse_space_averages() {
        let m = random_model(&[4], 5, 2, 9);
        let c = collapse_space(&m);
        assert_eq!(c.n_leaves(), 1);
        assert_eq!(c.n_slices(), 5);
        // Average of 4 resources.
        for t in 0..5 {
            for x in 0..2 {
                let avg: f64 = (0..4).map(|s| m.rho(LeafId(s), StateId(x), t)).sum::<f64>() / 4.0;
                assert!((c.rho(LeafId(0), StateId(x), t) - avg).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spatial_partition_is_consistent() {
        let m = random_model(&[3, 2, 2], 6, 2, 17);
        let input = AggregationInput::build(&collapse_time(&m));
        for &p in &[0.0, 0.5, 1.0] {
            let sp = spatial_partition(&input, p);
            validate_spatial(m.hierarchy(), &sp.nodes).unwrap();
        }
    }

    #[test]
    fn temporal_partition_is_consistent() {
        let m = random_model(&[4], 12, 3, 23);
        let input = AggregationInput::build(&collapse_space(&m));
        for &p in &[0.0, 0.5, 1.0] {
            let tp = temporal_partition(&input, p);
            validate_temporal(&tp.intervals, 12).unwrap();
        }
    }

    #[test]
    fn spatial_detects_heterogeneous_cluster() {
        // Cluster 0 homogeneous, cluster 1 heterogeneous: at moderate p the
        // spatial partition should keep cluster 0 whole and split cluster 1.
        let h = Hierarchy::balanced(&[2, 4]);
        let states = StateRegistry::from_names(["a", "b"]);
        let mut blocks = vec![Block {
            leaves: 0..4,
            slices: 0..4,
            rho: vec![0.5, 0.5],
        }];
        for k in 0..4 {
            blocks.push(Block {
                leaves: 4 + k..5 + k,
                slices: 0..4,
                rho: vec![0.1 + 0.2 * k as f64, 0.05],
            });
        }
        let m = block_model(h, states, 4, &blocks);
        let input = AggregationInput::build(&collapse_time(&m));
        // Small p: accuracy-leaning, so the heterogeneous cluster must split.
        let sp = spatial_partition(&input, 0.05);
        validate_spatial(m.hierarchy(), &sp.nodes).unwrap();
        let c0 = m.hierarchy().top_level()[0];
        assert!(sp.nodes.contains(&c0), "homogeneous cluster kept whole");
        assert!(
            sp.nodes.len() > 2,
            "heterogeneous cluster should split: {:?}",
            sp.nodes
        );
    }

    #[test]
    fn temporal_detects_phase_change() {
        let h = Hierarchy::flat(2, "p");
        let states = StateRegistry::from_names(["a", "b"]);
        let m = block_model(
            h,
            states,
            10,
            &[
                Block {
                    leaves: 0..2,
                    slices: 0..6,
                    rho: vec![0.9, 0.1],
                },
                Block {
                    leaves: 0..2,
                    slices: 6..10,
                    rho: vec![0.1, 0.9],
                },
            ],
        );
        let input = AggregationInput::build(&collapse_space(&m));
        let tp = temporal_partition(&input, 0.5);
        assert_eq!(
            tp.intervals,
            vec![(0, 5), (6, 9)],
            "should cut exactly at the phase change"
        );
    }

    #[test]
    fn temporal_dp_matches_2d_dp_on_collapsed_model() {
        // On a 1-leaf model the O(T²) DP and the full Algorithm 1 must agree.
        let m = random_model(&[5], 9, 2, 77);
        let collapsed = collapse_space(&m);
        let input = AggregationInput::build(&collapsed);
        for &p in &[0.0, 0.3, 0.7, 1.0] {
            let tp = temporal_partition(&input, p);
            let tree = crate::dp::aggregate_default(&input, p);
            let part = tree.partition(&input);
            let dp_pic = tree.optimal_pic(&input);
            assert!(
                (tp.pic - dp_pic).abs() < 1e-9,
                "p={p}: 1-D pIC {} vs 2-D pIC {dp_pic}",
                tp.pic
            );
            assert_eq!(part.len(), tp.intervals.len(), "p={p}");
        }
    }

    #[test]
    fn product_aggregation_on_fig3_is_valid() {
        let m = fig3_model();
        let prod = product_aggregation(&m, 0.5);
        validate_spatial(m.hierarchy(), &prod.spatial.nodes).unwrap();
        validate_temporal(&prod.temporal.intervals, 20).unwrap();
        prod.partition.validate(m.hierarchy(), 20).unwrap();
    }

    #[test]
    fn validate_temporal_rejects_bad_partitions() {
        assert!(validate_temporal(&[(0, 1), (3, 4)], 5).is_err()); // gap
        assert!(validate_temporal(&[(0, 4)], 4).is_err()); // overflow
        assert!(validate_temporal(&[(0, 1), (1, 3)], 4).is_err()); // overlap
        assert!(validate_temporal(&[(0, 3)], 5).is_err()); // short
        assert!(validate_temporal(&[(0, 4)], 5).is_ok());
    }
}
