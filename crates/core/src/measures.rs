//! Information-theoretic measures of the aggregation trade-off (§III.C).
//!
//! For a macroscopic area `A = (S_k, T_(i,j))` and a state `x`:
//!
//! - **information loss** (Eq. 2, Kullback–Leibler form):
//!   `loss_x(A) = Σ_{(s,t)∈A} ρ_x(s,t) · log₂(ρ_x(s,t) / ρ_x(A))`
//! - **data-reduction gain** (Eq. 3, Shannon-entropy reduction):
//!   `gain_x(A) = ρ_x(A)·log₂ ρ_x(A) − Σ_{(s,t)∈A} ρ_x(s,t)·log₂ ρ_x(s,t)`
//! - **parametrized information criterion** (Eq. 4):
//!   `pIC_x = p·gain_x − (1−p)·loss_x`, `p ∈ [0,1]`.
//!
//! All measures are additive over the areas of a partition and over states,
//! which is what makes the dynamic programs of this crate correct.
//!
//! Numerical conventions: `0·log₂0 = 0`; `loss` is clamped to `≥ 0` (its
//! analytic value is non-negative by convexity of `x·log x`, so any negative
//! residue is floating-point noise).

/// `x·log₂(x)` with the continuous extension `0·log₂0 = 0`.
#[inline]
pub fn xlog2x(x: f64) -> f64 {
    if x > 0.0 {
        x * x.log2()
    } else {
        0.0
    }
}

/// Accumulated per-(area, state) sums needed by Eq. 1–3.
///
/// These are exactly the "data input" fields the paper lists in §III.E:
/// the sum of underlying durations, the sum of the state proportions, and
/// the sum of their Shannon information.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaSums {
    /// `Σ_{(s,t)∈A} d_x(s,t)` — total time spent in the state.
    pub sum_duration: f64,
    /// `Σ_{(s,t)∈A} ρ_x(s,t)`.
    pub sum_rho: f64,
    /// `Σ_{(s,t)∈A} ρ_x(s,t)·log₂ ρ_x(s,t)`.
    pub sum_rho_log_rho: f64,
}

impl AreaSums {
    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1:
    /// total state time divided by (`|S_k|` × total period duration).
    #[inline]
    pub fn rho_aggregate(&self, n_resources: usize, period_duration: f64) -> f64 {
        if period_duration <= 0.0 || n_resources == 0 {
            return 0.0;
        }
        self.sum_duration / (n_resources as f64 * period_duration)
    }

    /// Eq. 2 information loss for this state on this area.
    #[inline]
    pub fn loss(&self, n_resources: usize, period_duration: f64) -> f64 {
        let rho_agg = self.rho_aggregate(n_resources, period_duration);
        if rho_agg <= 0.0 {
            // All microscopic proportions are 0 too: no information to lose.
            return 0.0;
        }
        let raw = self.sum_rho_log_rho - self.sum_rho * rho_agg.log2();
        raw.max(0.0)
    }

    /// Eq. 3 data-reduction gain for this state on this area.
    ///
    /// May be negative: replacing microscopic values by their average can
    /// *increase* Shannon information when the average falls closer to the
    /// entropy-maximizing proportion than the originals.
    #[inline]
    pub fn gain(&self, n_resources: usize, period_duration: f64) -> f64 {
        let rho_agg = self.rho_aggregate(n_resources, period_duration);
        xlog2x(rho_agg) - self.sum_rho_log_rho
    }

    /// Merge with another accumulator (additivity over disjoint cell sets).
    #[inline]
    pub fn merge(&mut self, other: &AreaSums) {
        self.sum_duration += other.sum_duration;
        self.sum_rho += other.sum_rho;
        self.sum_rho_log_rho += other.sum_rho_log_rho;
    }

    /// Accumulate one microscopic cell with duration `d` inside a slice of
    /// duration `slice_duration`.
    #[inline]
    pub fn add_cell(&mut self, d: f64, slice_duration: f64) {
        let rho = d / slice_duration;
        self.sum_duration += d;
        self.sum_rho += rho;
        self.sum_rho_log_rho += xlog2x(rho);
    }
}

/// Eq. 4: the parametrized information criterion.
#[inline]
pub fn pic(p: f64, gain: f64, loss: f64) -> f64 {
    p * gain - (1.0 - p) * loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xlog2x_conventions() {
        assert_eq!(xlog2x(0.0), 0.0);
        assert_eq!(xlog2x(1.0), 0.0);
        assert!((xlog2x(0.5) + 0.5).abs() < 1e-12);
        assert!(xlog2x(0.25) < 0.0);
    }

    fn sums_from_rhos(rhos: &[f64], slice_duration: f64) -> AreaSums {
        let mut s = AreaSums::default();
        for &r in rhos {
            s.add_cell(r * slice_duration, slice_duration);
        }
        s
    }

    #[test]
    fn homogeneous_area_has_zero_loss() {
        // 4 cells, all ρ = 0.3, one resource × 4 slices of duration 2.
        let s = sums_from_rhos(&[0.3; 4], 2.0);
        let loss = s.loss(1, 8.0);
        assert!(
            loss.abs() < 1e-12,
            "homogeneous loss should be 0, got {loss}"
        );
        let rho = s.rho_aggregate(1, 8.0);
        assert!((rho - 0.3).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_area_has_positive_loss() {
        let s = sums_from_rhos(&[1.0, 0.0], 1.0);
        // 2 resources × 1 slice of duration 1.
        let loss = s.loss(2, 1.0);
        assert!((loss - 1.0).abs() < 1e-12, "loss = {loss}");
    }

    #[test]
    fn gain_matches_entropy_reduction() {
        // Two cells ρ = 0.5 each → micro info = 2·(0.5·log2 0.5) = −1,
        // aggregate ρ = 0.5 → macro info = −0.5; gain = −0.5 − (−1) = 0.5.
        let s = sums_from_rhos(&[0.5, 0.5], 1.0);
        let gain = s.gain(2, 1.0);
        assert!((gain - 0.5).abs() < 1e-12, "gain = {gain}");
    }

    #[test]
    fn gain_can_be_negative() {
        // ρ = {1, 0}: micro info 0, aggregate 0.5 → gain = −0.5.
        let s = sums_from_rhos(&[1.0, 0.0], 1.0);
        let gain = s.gain(2, 1.0);
        assert!((gain + 0.5).abs() < 1e-12, "gain = {gain}");
    }

    #[test]
    fn all_zero_area_is_neutral() {
        let s = sums_from_rhos(&[0.0, 0.0, 0.0], 1.0);
        assert_eq!(s.loss(3, 1.0), 0.0);
        assert_eq!(s.gain(3, 1.0), 0.0);
        assert_eq!(s.rho_aggregate(3, 1.0), 0.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = sums_from_rhos(&[0.2, 0.4], 1.0);
        let b = sums_from_rhos(&[0.6], 1.0);
        a.merge(&b);
        let whole = sums_from_rhos(&[0.2, 0.4, 0.6], 1.0);
        assert!((a.sum_duration - whole.sum_duration).abs() < 1e-12);
        assert!((a.sum_rho - whole.sum_rho).abs() < 1e-12);
        assert!((a.sum_rho_log_rho - whole.sum_rho_log_rho).abs() < 1e-12);
    }

    #[test]
    fn pic_endpoints() {
        assert_eq!(pic(0.0, 3.0, 2.0), -2.0);
        assert_eq!(pic(1.0, 3.0, 2.0), 3.0);
        assert!((pic(0.5, 3.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loss_decomposition_matches_direct_kl() {
        // Direct evaluation of Eq. 2 against the accumulator formula.
        let rhos = [0.1, 0.9, 0.4, 0.6];
        let s = sums_from_rhos(&rhos, 1.0);
        let rho_agg = s.rho_aggregate(4, 1.0);
        let direct: f64 = rhos
            .iter()
            .map(|&r| {
                if r > 0.0 {
                    r * (r / rho_agg).log2()
                } else {
                    0.0
                }
            })
            .sum();
        assert!((s.loss(4, 1.0) - direct).abs() < 1e-12);
        assert!(direct >= 0.0);
    }
}
