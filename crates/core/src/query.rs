//! The typed query protocol: one public surface for every analysis.
//!
//! The paper's workflow is interactive — an analyst repeatedly re-queries
//! partitions at different `p`, zooms, inspects and re-renders over one
//! trace — so the analysis surface is modeled as an explicit, serializable
//! request/reply protocol instead of ad-hoc function calls:
//!
//! * [`AnalysisRequest`] — every question a client can ask, one enum;
//! * [`AnalysisReply`] — every answer, fully self-contained (a reply can
//!   be printed, rendered or diffed without access to the trace, the model
//!   or the cube);
//! * [`QueryError`] — every way a request can fail;
//! * [`QueryEngine`] — executes any request against an
//!   [`AnalysisSession`], inheriting all of its memoization (warm sessions
//!   answer repeated queries with zero DP runs and zero trace reads).
//!
//! The CLI's analysis commands, the `ocelotl serve` server and the
//! `ocelotl query` client are all thin clients of this one protocol; the
//! JSON codec lives in `ocelotl-format::json`.
//!
//! **Determinism.** Every reply field is a pure function of the trace
//! bytes and the request parameters — no wall-clock timings, no
//! cold/warm provenance. That is what makes the cold CLI path, a warm
//! cached run and a long-lived server answer byte-identically.
//!
//! ```
//! use ocelotl_core::query::{AnalysisRequest, AnalysisReply, QueryEngine};
//! use ocelotl_core::{AnalysisSession, OwnedSource, SessionConfig};
//! use ocelotl_trace::synthetic::fig3_model;
//!
//! let model = fig3_model(); // 12 resources × 20 slices
//! let session = AnalysisSession::new(
//!     OwnedSource::new(model, 42),
//!     SessionConfig { n_slices: 20, ..SessionConfig::default() },
//! );
//! let mut engine = QueryEngine::new(session);
//!
//! let reply = engine
//!     .execute(&AnalysisRequest::Aggregate {
//!         p: 0.5,
//!         coarse: false,
//!         compare: false,
//!         diff_p: None,
//!     })
//!     .unwrap();
//! let AnalysisReply::Aggregate(agg) = reply else { unreachable!() };
//! assert!(agg.summary.n_areas < 240, "fewer aggregates than cells");
//! assert_eq!(agg.areas.len(), agg.summary.n_areas);
//! ```

use crate::analysis::compare_partitions;
use crate::cube::{CubeBackend, MemoryMode, QualityCube};
use crate::inspect::{area_at, inspect_area};
use crate::onedim::product_aggregation;
use crate::partition::Partition;
use crate::pvalues::{significant_ps, PEntry};
use crate::quality::quality;
use crate::session::{AnalysisSession, SessionError};
use crate::visual::{visually_aggregate, VisualMark};
use ocelotl_trace::LeafId;
use std::fmt;

/// Version of the request/reply protocol. Bumped on any incompatible
/// change; the JSON codec rejects envelopes carrying a different version.
pub const PROTOCOL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Every question a client can ask about one analyzed trace.
///
/// Requests are deliberately *analysis-level*: presentation concerns
/// (column widths, SVG geometry, top-N truncation) stay client-side, so
/// one reply serves any front end.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisRequest {
    /// Shape of the analyzed model: dimensions, states, time extent.
    Describe,
    /// The optimal partition at trade-off `p` (Algorithm 1) with quality
    /// measures and one row per aggregate.
    Aggregate {
        /// Trade-off parameter in `[0, 1]`.
        p: f64,
        /// Prefer the coarsest partition among pIC ties.
        coarse: bool,
        /// Also score the §III.D baselines at the same `p`.
        compare: bool,
        /// Also quantify the overview change towards a second `p`.
        diff_p: Option<f64>,
    },
    /// The significant trade-off levels (the slider stops) with per-level
    /// quality columns.
    Significant {
        /// Dichotomy resolution on `p`, in `(0, 1)`.
        resolution: f64,
    },
    /// The §V.B interaction loop: significant levels plus re-aggregations
    /// across an even `p` grid.
    Sweep {
        /// Dichotomy resolution on `p`, in `(0, 1)`.
        resolution: f64,
        /// Grid points are `k / steps` for `k in 0..=steps` (0: skip).
        steps: usize,
    },
    /// Just the significant `p` boundary values.
    PValues {
        /// Dichotomy resolution on `p`, in `(0, 1)`.
        resolution: f64,
    },
    /// The aggregate of the optimal partition covering one microscopic
    /// cell (the paper's §VI "retrieve the data behind a rectangle").
    Inspect {
        /// Leaf resource index.
        leaf: usize,
        /// Time slice index.
        slice: usize,
        /// Trade-off parameter in `[0, 1]`.
        p: f64,
        /// Prefer the coarsest partition among pIC ties.
        coarse: bool,
    },
    /// A fully drawable overview at `p`: partition + visual aggregation +
    /// everything a renderer needs (states, clusters, leaf spans).
    RenderOverview {
        /// Trade-off parameter in `[0, 1]`.
        p: f64,
        /// Prefer the coarsest partition among pIC ties.
        coarse: bool,
        /// Visual-aggregation threshold in leaf rows (0: draw every data
        /// aggregate as-is). For a canvas of height `H` px and a pixel
        /// threshold `θ`, pass `θ / (H / |S|)`.
        min_rows: f64,
        /// `Some(resolution)`: draw the partition of the *significant
        /// level* whose stability interval contains `p` (computed at that
        /// dichotomy resolution) instead of running a point DP — how a
        /// report renders its levels with zero extra DP. Falls back to
        /// the point DP when `p` lies outside every interval.
        level_resolution: Option<f64>,
    },
    /// Ingestion telemetry of the trace (events, bytes, peak footprint,
    /// ingest mode, fingerprint) plus the model shape.
    Stats,
    /// Switch the session's slicing resolution — optionally zooming into
    /// a time window snapped to the hi-res grid — and report the new
    /// model shape. Served from the resident super-resolution model with
    /// **zero trace disk reads** whenever the target resolution lies in
    /// the hi-res grid's dyadic family (or a warm artifact covers it).
    ///
    /// In-process, subsequent requests on the engine answer at the new
    /// resolution/window. Over `ocelotl serve`, wire requests are
    /// self-contained: every request pins the pooled session to its own
    /// config's (full-grid) resolution first, so a remote `--slices`
    /// change takes effect through the config while a zoom window
    /// applies to the carrying `Reslice` request only (its reply
    /// describes the zoomed model).
    Reslice {
        /// The new `|T|`.
        n_slices: usize,
        /// Optional zoom window `[t0, t1]` (snapped to hi-res slice
        /// edges; the snapped span must divide into `n_slices` equal
        /// bins).
        range: Option<(f64, f64)>,
    },
    /// Stream refreshed answers to one carried request as a live session
    /// advances. Only `ocelotl serve` can answer it: the server re-runs
    /// the inner request after every append batch and writes one
    /// [`WatchReply`] line per refresh over the same connection, ordered
    /// by generation. In-process engines report it as `Unsupported` —
    /// there is no connection to stream over.
    Subscribe {
        /// The request to re-answer on every refresh. `Reslice` and
        /// nested `Subscribe` are rejected (they mutate the session or
        /// recurse).
        inner: Box<AnalysisRequest>,
    },
}

impl AnalysisRequest {
    /// Stable protocol tag of this request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisRequest::Describe => "describe",
            AnalysisRequest::Aggregate { .. } => "aggregate",
            AnalysisRequest::Significant { .. } => "significant",
            AnalysisRequest::Sweep { .. } => "sweep",
            AnalysisRequest::PValues { .. } => "pvalues",
            AnalysisRequest::Inspect { .. } => "inspect",
            AnalysisRequest::RenderOverview { .. } => "render-overview",
            AnalysisRequest::Stats => "stats",
            AnalysisRequest::Reslice { .. } => "reslice",
            AnalysisRequest::Subscribe { .. } => "subscribe",
        }
    }

    /// All request kind tags, in protocol order.
    pub const KINDS: [&'static str; 10] = [
        "describe",
        "aggregate",
        "significant",
        "sweep",
        "pvalues",
        "inspect",
        "render-overview",
        "stats",
        "reslice",
        "subscribe",
    ];

    /// Validate a `Subscribe` payload: the inner request must be
    /// re-answerable from the read path on every refresh, so `Reslice`
    /// (mutates the session) and nested `Subscribe` (recursive stream)
    /// are rejected. Shared by the engine and the server.
    pub fn validate_subscribe_inner(inner: &AnalysisRequest) -> Result<(), QueryError> {
        match inner {
            AnalysisRequest::Reslice { .. } => Err(QueryError::InvalidRequest(
                "subscribe cannot carry a reslice request (it mutates the session)".into(),
            )),
            AnalysisRequest::Subscribe { .. } => Err(QueryError::InvalidRequest(
                "subscribe cannot nest another subscribe".into(),
            )),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way a request can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The request parameters are out of range or inconsistent.
    InvalidRequest(String),
    /// The trace/model source could not be read or derived.
    Source(String),
    /// The request is well-formed but this source cannot answer it
    /// (e.g. `Stats` on a source reporting no ingestion telemetry).
    Unsupported(String),
    /// The request could not be decoded (malformed envelope, unknown
    /// kind, protocol version mismatch) — produced by codecs and servers.
    Protocol(String),
    /// The server's admission budget is exhausted (every build worker is
    /// busy cold-building other sessions); the request was not queued and
    /// can simply be retried. Produced by servers, never by an in-process
    /// engine.
    Busy(String),
}

impl QueryError {
    /// Stable protocol tag of this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryError::InvalidRequest(_) => "invalid-request",
            QueryError::Source(_) => "source",
            QueryError::Unsupported(_) => "unsupported",
            QueryError::Protocol(_) => "protocol",
            QueryError::Busy(_) => "busy",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            QueryError::InvalidRequest(m)
            | QueryError::Source(m)
            | QueryError::Unsupported(m)
            | QueryError::Protocol(m)
            | QueryError::Busy(m) => m,
        }
    }

    /// Rebuild an error from its protocol tag and message (the codec's
    /// inverse of [`QueryError::kind`]); unknown tags map to `Protocol`.
    pub fn from_parts(kind: &str, message: String) -> Self {
        match kind {
            "invalid-request" => QueryError::InvalidRequest(message),
            "source" => QueryError::Source(message),
            "unsupported" => QueryError::Unsupported(message),
            "busy" => QueryError::Busy(message),
            _ => QueryError::Protocol(message),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for QueryError {}

impl From<SessionError> for QueryError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::InvalidParam(m) => QueryError::InvalidRequest(m),
            SessionError::Source(m) => QueryError::Source(m),
        }
    }
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

/// Every answer, one per request kind.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisReply {
    /// Answer to [`AnalysisRequest::Describe`].
    Describe(DescribeReply),
    /// Answer to [`AnalysisRequest::Aggregate`].
    Aggregate(AggregateReply),
    /// Answer to [`AnalysisRequest::Significant`].
    Significant(SignificantReply),
    /// Answer to [`AnalysisRequest::Sweep`].
    Sweep(SweepReply),
    /// Answer to [`AnalysisRequest::PValues`].
    PValues(PValuesReply),
    /// Answer to [`AnalysisRequest::Inspect`].
    Inspect(InspectReply),
    /// Answer to [`AnalysisRequest::RenderOverview`].
    Overview(OverviewReply),
    /// Answer to [`AnalysisRequest::Stats`].
    Stats(StatsReply),
    /// Answer to [`AnalysisRequest::Reslice`].
    Reslice(ResliceReply),
    /// One refresh of an [`AnalysisRequest::Subscribe`] stream.
    Watch(WatchReply),
}

impl AnalysisReply {
    /// Stable protocol tag, matching the request kind that produced it
    /// (`render-overview` answers carry the `overview` tag).
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisReply::Describe(_) => "describe",
            AnalysisReply::Aggregate(_) => "aggregate",
            AnalysisReply::Significant(_) => "significant",
            AnalysisReply::Sweep(_) => "sweep",
            AnalysisReply::PValues(_) => "pvalues",
            AnalysisReply::Inspect(_) => "inspect",
            AnalysisReply::Overview(_) => "overview",
            AnalysisReply::Stats(_) => "stats",
            AnalysisReply::Reslice(_) => "reslice",
            AnalysisReply::Watch(_) => "watch",
        }
    }
}

/// Shape of the analyzed model (shared header of several replies).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelShape {
    /// `|S|`: leaf resources.
    pub n_leaves: usize,
    /// `|T|`: time slices.
    pub n_slices: usize,
    /// `|X|`: states.
    pub n_states: usize,
    /// Metric tag (`states` / `density`).
    pub metric: String,
    /// Trace time extent covered by the grid.
    pub t_start: f64,
    /// Trace time extent covered by the grid.
    pub t_end: f64,
}

/// Answer to [`AnalysisRequest::Describe`].
#[derive(Debug, Clone, PartialEq)]
pub struct DescribeReply {
    /// Model dimensions and extent.
    pub shape: ModelShape,
    /// Total hierarchy nodes (internal + leaves).
    pub hierarchy_nodes: usize,
    /// Hierarchy depth.
    pub hierarchy_depth: u64,
    /// State names, in registry order.
    pub states: Vec<String>,
    /// The gain/loss backend this session's configuration *resolves* to
    /// for this problem size (`dense` / `lazy`; `auto` resolved). A tag,
    /// not a measurement — `Describe` never builds the cube.
    pub backend: String,
}

/// One aggregate of a partition, fully described.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Hierarchy path of the node (`root/cluster0/m3`).
    pub path: String,
    /// First slice (inclusive).
    pub first_slice: usize,
    /// Last slice (inclusive).
    pub last_slice: usize,
    /// Start time of the interval.
    pub t0: f64,
    /// End time of the interval.
    pub t1: f64,
    /// Leaf resources under the node.
    pub n_resources: usize,
    /// Mode state name (`None` when idle).
    pub mode: Option<String>,
    /// Mode confidence `α = ρ_max / Σρ`.
    pub confidence: f64,
    /// Information gain of the aggregate (bits).
    pub gain: f64,
    /// Information loss of the aggregate (bits).
    pub loss: f64,
}

impl AreaRow {
    /// Microscopic cells covered.
    pub fn n_cells(&self) -> usize {
        self.n_resources * (self.last_slice - self.first_slice + 1)
    }
}

/// Quality summary of one partition (the `quality` module's report plus
/// the partition's own pIC).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSummary {
    /// Aggregate count.
    pub n_areas: usize,
    /// Microscopic cell count `|S| × |T|`.
    pub n_cells: usize,
    /// `1 − n_areas / n_cells`.
    pub complexity_reduction: f64,
    /// Total information loss (bits).
    pub loss: f64,
    /// Total information gain (bits).
    pub gain: f64,
    /// Loss normalized by the microscopic partition's.
    pub loss_ratio: f64,
    /// Gain normalized by the full partition's.
    pub gain_ratio: f64,
    /// `pIC = p·gain − (1−p)·loss`.
    pub pic: f64,
}

/// One §III.D baseline scored at the query's `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Baseline name.
    pub name: String,
    /// Aggregate count of the baseline partition.
    pub n_areas: usize,
    /// Its total pIC at the query's `p`.
    pub pic: f64,
}

/// Similarity block of an `Aggregate { diff_p: Some(_) }` query.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReply {
    /// The second trade-off value.
    pub p_other: f64,
    /// Aggregate count at the second value.
    pub n_areas_other: usize,
    /// Variation of information (bits).
    pub variation_of_information: f64,
    /// Normalized mutual information.
    pub normalized_mutual_information: f64,
    /// Rand index.
    pub rand_index: f64,
}

/// Answer to [`AnalysisRequest::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReply {
    /// The queried trade-off.
    pub p: f64,
    /// Tie-breaking used.
    pub coarse: bool,
    /// Model dimensions and extent.
    pub shape: ModelShape,
    /// Gain/loss cube backend tag (`dense` / `lazy`).
    pub backend: String,
    /// Resident bytes of the cube.
    pub backend_bytes: u64,
    /// Partition quality.
    pub summary: PartitionSummary,
    /// One row per aggregate, in canonical partition order.
    pub areas: Vec<AreaRow>,
    /// §III.D baselines (empty unless `compare` was set).
    pub baselines: Vec<BaselineRow>,
    /// Similarity towards `diff_p` (when requested).
    pub diff: Option<DiffReply>,
}

/// One significant level with its quality columns.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReply {
    /// Stability interval of `p` (low end).
    pub p_low: f64,
    /// Stability interval of `p` (high end).
    pub p_high: f64,
    /// Aggregate count of the level's partition.
    pub n_areas: usize,
    /// Normalized information loss.
    pub loss_ratio: f64,
    /// Normalized information gain.
    pub gain_ratio: f64,
    /// Complexity reduction.
    pub complexity_reduction: f64,
}

/// Answer to [`AnalysisRequest::Significant`].
#[derive(Debug, Clone, PartialEq)]
pub struct SignificantReply {
    /// Dichotomy resolution queried.
    pub resolution: f64,
    /// One entry per stability interval, ascending in `p`.
    pub levels: Vec<LevelReply>,
}

/// One grid point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The grid `p` value.
    pub p: f64,
    /// Aggregate count of the optimal partition there.
    pub n_areas: usize,
    /// Its total pIC.
    pub pic: f64,
}

/// Answer to [`AnalysisRequest::Sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReply {
    /// Dichotomy resolution queried.
    pub resolution: f64,
    /// The significant levels (same as [`SignificantReply`]).
    pub levels: Vec<LevelReply>,
    /// Re-aggregations across the even grid (empty when `steps == 0`).
    pub points: Vec<SweepPoint>,
}

/// Answer to [`AnalysisRequest::PValues`].
#[derive(Debug, Clone, PartialEq)]
pub struct PValuesReply {
    /// Dichotomy resolution queried.
    pub resolution: f64,
    /// The significant boundary values of `p`, ascending.
    pub ps: Vec<f64>,
}

/// Answer to [`AnalysisRequest::Inspect`].
#[derive(Debug, Clone, PartialEq)]
pub struct InspectReply {
    /// The queried leaf.
    pub leaf: usize,
    /// The queried slice.
    pub slice: usize,
    /// The queried trade-off.
    pub p: f64,
    /// Tie-breaking used.
    pub coarse: bool,
    /// The covering aggregate.
    pub area: AreaRow,
    /// Slices spanned by the aggregate.
    pub n_slices_spanned: usize,
    /// Aggregated state proportions (Eq. 1), one per state.
    pub proportions: Vec<(String, f64)>,
}

/// One top-level cluster band (for y-axis labels and separators).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReply {
    /// Cluster name.
    pub name: String,
    /// First leaf row (inclusive).
    pub leaf_start: usize,
    /// One past the last leaf row.
    pub leaf_end: usize,
}

/// One drawable item of an overview reply — a data or visual aggregate
/// with its leaf span resolved, so renderers need no hierarchy access.
#[derive(Debug, Clone, PartialEq)]
pub struct OverviewItem {
    /// Hierarchy path of the node.
    pub path: String,
    /// First leaf row (inclusive).
    pub leaf_start: usize,
    /// One past the last leaf row.
    pub leaf_end: usize,
    /// First slice (inclusive).
    pub first_slice: usize,
    /// Last slice (inclusive).
    pub last_slice: usize,
    /// Mode state index into [`OverviewReply::states`] (`None`: idle).
    pub state: Option<usize>,
    /// Mode confidence `α`.
    pub alpha: f64,
    /// `None` for data aggregates, the G4 mark for visual aggregates.
    pub mark: Option<VisualMark>,
}

/// Answer to [`AnalysisRequest::RenderOverview`]: a complete drawable
/// scene.
#[derive(Debug, Clone, PartialEq)]
pub struct OverviewReply {
    /// The queried trade-off.
    pub p: f64,
    /// Aggregates in the underlying data partition.
    pub n_areas: usize,
    /// Data aggregates drawn as-is.
    pub n_data: usize,
    /// Visual aggregates produced by the G1/G4 pass.
    pub n_visual: usize,
    /// Leaf rows of the canvas.
    pub n_leaves: usize,
    /// Slice columns of the canvas.
    pub n_slices: usize,
    /// Time extent for axis labels.
    pub t_start: f64,
    /// Time extent for axis labels.
    pub t_end: f64,
    /// State names, in registry order (palette/legend input).
    pub states: Vec<String>,
    /// Top-level cluster bands, in leaf order.
    pub clusters: Vec<ClusterReply>,
    /// Drawable items.
    pub items: Vec<OverviewItem>,
}

impl OverviewReply {
    /// Build the drawable scene from a cube and a partition: runs the
    /// visual-aggregation pass at `min_rows` and resolves every leaf span,
    /// state name and cluster band. This is the one construction path —
    /// the engine and any in-process renderer share it, so they cannot
    /// drift.
    pub fn from_partition<C: QualityCube>(
        cube: &C,
        partition: &Partition,
        p: f64,
        min_rows: f64,
        time_range: (f64, f64),
    ) -> Self {
        let va = visually_aggregate(cube, partition, min_rows);
        Self::from_visual(cube, partition.len(), &va, p, time_range)
    }

    /// Build the scene from an already-computed visual aggregation (the
    /// legacy `Overview` path in `ocelotl-viz`). `time_range` fills the
    /// reply's `t_start`/`t_end` (the `QualityCube` trait carries no time
    /// grid; sessions read it from the cube core).
    pub fn from_visual<C: QualityCube>(
        cube: &C,
        n_areas: usize,
        va: &crate::visual::VisualAggregation,
        p: f64,
        time_range: (f64, f64),
    ) -> Self {
        let h = cube.hierarchy();
        let items = va
            .items
            .iter()
            .map(|item| {
                let leaves = h.leaf_range(item.node);
                OverviewItem {
                    path: h.path(item.node),
                    leaf_start: leaves.start,
                    leaf_end: leaves.end,
                    first_slice: item.first_slice,
                    last_slice: item.last_slice,
                    state: item.mode.state.map(|s| s.index()),
                    alpha: item.mode.alpha,
                    mark: item.mark,
                }
            })
            .collect();
        let clusters = h
            .top_level()
            .iter()
            .map(|&c| {
                let r = h.leaf_range(c);
                ClusterReply {
                    name: h.name(c).to_string(),
                    leaf_start: r.start,
                    leaf_end: r.end,
                }
            })
            .collect();
        OverviewReply {
            p,
            n_areas,
            n_data: va.n_data,
            n_visual: va.n_visual,
            n_leaves: h.n_leaves(),
            n_slices: cube.n_slices(),
            t_start: time_range.0,
            t_end: time_range.1,
            states: cube.states().iter().map(|(_, n)| n.to_string()).collect(),
            clusters,
            items,
        }
    }
}

/// Answer to [`AnalysisRequest::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Model dimensions and extent.
    pub shape: ModelShape,
    /// Total hierarchy nodes.
    pub hierarchy_nodes: usize,
    /// Hierarchy depth.
    pub hierarchy_depth: u64,
    /// Events decoded (2 per interval + 1 per point).
    pub events: u64,
    /// Interval records decoded.
    pub intervals: u64,
    /// Point records decoded.
    pub points: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Peak resident footprint of the streaming accumulator (bytes).
    pub peak_bytes: u64,
    /// Ingestion strategy tag (`single-pass` / `two-pass`).
    pub mode: String,
    /// Trace format tag (`+gzip` suffix for compressed inputs).
    pub format: String,
    /// Content fingerprint of the trace bytes, as 16 hex digits.
    pub fingerprint: String,
    /// Shard count of the ingest (1 for sequential).
    pub shard_count: u64,
    /// Input bytes per shard, in shard order — content-derived, never a
    /// function of the worker count.
    pub shard_bytes: Vec<u64>,
    /// Chunks in the columnar source's index (zero for non-chunked
    /// formats).
    pub chunks_total: u64,
    /// Chunks actually decoded (fewer than `chunks_total` when predicate
    /// pushdown skipped some).
    pub chunks_read: u64,
    /// Payload bytes predicate pushdown left unread on disk.
    pub bytes_skipped: u64,
}

/// Answer to [`AnalysisRequest::Reslice`]: the session's new active
/// resolution. Every field is deterministic — `hi_slices` is the
/// *resolved* super-resolution grid for this configuration (the sizing
/// formula applied to the reply's model shape), a tag like `Describe`'s
/// backend, not a measurement of what happens to be resident.
#[derive(Debug, Clone, PartialEq)]
pub struct ResliceReply {
    /// The new active `|T|`.
    pub n_slices: usize,
    /// The hi-res grid this configuration resolves to:
    /// [`crate::hires::hi_res_slices`] over the reply's shape. For the
    /// density metric the shape's state count includes merged
    /// pseudo-states, so in the (narrow) regime where the cell-budget
    /// clamp binds this can name a finer bound than the ingest grid —
    /// it is a deterministic sizing indicator, not the resident `H`.
    pub hi_slices: usize,
    /// The snapped zoom window, when one was requested.
    pub window: Option<(f64, f64)>,
    /// Shape of the newly active model.
    pub shape: ModelShape,
}

/// One refresh of an [`AnalysisRequest::Subscribe`] stream: the inner
/// request's reply wrapped with the live session's progress marker. Reply
/// lines on a subscription are strictly ordered by `seq`; each line is a
/// complete self-identifying answer (the stream can be cut anywhere and
/// every received line still stands alone).
///
/// The wrapped `reply` is deterministic per `(events, request)` — it is a
/// pure function of the event prefix folded so far, byte-identical to a
/// post-mortem session over the same prefix. The *pacing* (which prefixes
/// get a refresh line) is the server's batching choice, not part of the
/// data contract.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchReply {
    /// Refresh generation, strictly increasing per subscription starting
    /// at 1. Gaps are legal: a subscriber that lags simply skips to the
    /// newest generation instead of replaying stale ones.
    pub seq: u64,
    /// `true` on the final refresh: the feeder has finished and no
    /// further lines follow.
    pub done: bool,
    /// Events folded into the live model when this refresh was taken.
    pub events: u64,
    /// The inner request's answer over those events.
    pub reply: Box<AnalysisReply>,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Why the `&self` read path could not produce a reply.
enum Miss {
    /// A pipeline stage the request needs is not materialized yet; only
    /// the `&mut` path (which can build it) can answer.
    NotPrepared,
    /// The request failed for real — re-running it on the write path
    /// would fail identically, so the error is final.
    Failed(QueryError),
}

impl Miss {
    /// The error an already-prepared engine reports: after
    /// [`QueryEngine::prepare`], `NotPrepared` is an internal invariant
    /// violation, not a user condition.
    fn into_error(self) -> QueryError {
        match self {
            Miss::Failed(e) => e,
            Miss::NotPrepared => {
                QueryError::Source("internal: request not answerable after preparation".into())
            }
        }
    }
}

impl From<QueryError> for Miss {
    fn from(e: QueryError) -> Self {
        Miss::Failed(e)
    }
}

impl From<SessionError> for Miss {
    fn from(e: SessionError) -> Self {
        Miss::Failed(e.into())
    }
}

/// Result of one `&self` reply builder.
type Shared<T> = Result<T, Miss>;

/// `None` → the needed stage is not resident (fall back to `&mut`).
fn ready<T>(v: Option<T>) -> Shared<T> {
    v.ok_or(Miss::NotPrepared)
}

/// Executes any [`AnalysisRequest`] against an [`AnalysisSession`].
///
/// The engine owns the session, so all of the session's memoization
/// carries across requests: the first query pays the trace read and cube
/// build, every later query is served from memory (or from `.ocube` /
/// `.opart` artifacts when the session has a store).
///
/// ## Read/write split
///
/// Execution is two-phase. [`QueryEngine::prepare`] (`&mut self`)
/// materializes whatever stages a request needs — model, cube, partition
/// table; [`QueryEngine::execute_shared`] (`&self`) then builds the reply
/// from the resident pipeline, running any still-missing DP through the
/// session's lock-guarded memo table. [`QueryEngine::execute`] chains the
/// two, so a single-threaded caller sees the classic one-call interface —
/// and because *every* path funnels through the same `&self` builders,
/// replies are byte-identical whether they were served exclusively or
/// concurrently. A server keeps warm engines behind an `RwLock`, answers
/// from the read side via `execute_shared`, and only takes the write lock
/// when `execute_shared` declines (returns `None`).
pub struct QueryEngine {
    session: AnalysisSession,
}

impl QueryEngine {
    /// Wrap a session.
    pub fn new(session: AnalysisSession) -> Self {
        Self { session }
    }

    /// The underlying session, read-only (pool introspection, warm
    /// checks).
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// The underlying session (escape hatch for host-side work the
    /// protocol does not cover, like persisting an `.omm` model cache).
    pub fn session_mut(&mut self) -> &mut AnalysisSession {
        &mut self.session
    }

    /// Unwrap the session.
    pub fn into_session(self) -> AnalysisSession {
        self.session
    }

    /// Materialize every pipeline stage `request` needs so that
    /// [`QueryEngine::execute_shared`] can answer it. Cheap when already
    /// prepared (all stages are memoized). Validates request parameters
    /// up front — the same checks, producing the same messages, as the
    /// execution paths themselves.
    pub fn prepare(&mut self, request: &AnalysisRequest) -> Result<(), QueryError> {
        use crate::session::{validate_p, validate_resolution};
        match request {
            AnalysisRequest::Describe => self.ensure_dims(),
            AnalysisRequest::Stats => {
                self.session.ingest_stats()?;
                self.ensure_dims()
            }
            AnalysisRequest::Aggregate {
                p,
                coarse: _,
                compare,
                diff_p,
            } => {
                validate_p(*p)?;
                if let Some(p2) = diff_p {
                    validate_p(*p2)?;
                }
                self.session.prepare()?;
                if *compare {
                    // §III.D baselines score against the raw model.
                    self.session.model_and_cube()?;
                }
                Ok(())
            }
            AnalysisRequest::Significant { resolution }
            | AnalysisRequest::Sweep { resolution, .. } => {
                validate_resolution(*resolution)?;
                self.session.prepare()?;
                Ok(())
            }
            AnalysisRequest::PValues { resolution } => {
                // Boundary values alone never need the cube when the
                // table is warm at this resolution.
                self.session.prepare_points(*resolution)?;
                Ok(())
            }
            AnalysisRequest::Inspect { p, .. } => {
                validate_p(*p)?;
                self.session.prepare()?;
                Ok(())
            }
            AnalysisRequest::RenderOverview {
                p,
                level_resolution,
                ..
            } => {
                validate_p(*p)?;
                if let Some(res) = level_resolution {
                    validate_resolution(*res)?;
                }
                self.session.prepare()?;
                Ok(())
            }
            // Reslice mutates the session by definition; it has no shared
            // path to prepare for.
            AnalysisRequest::Reslice { .. } => Ok(()),
            // A subscription's refreshes execute the *inner* request, so
            // preparing it is preparing the subscription.
            AnalysisRequest::Subscribe { inner } => {
                AnalysisRequest::validate_subscribe_inner(inner)?;
                self.prepare(inner)
            }
        }
    }

    /// Warm the session end to end (table + cube, ingesting the trace if
    /// nothing is cached) — what a server runs once under its build
    /// budget before publishing the engine to concurrent readers.
    pub fn warm_up(&mut self) -> Result<(), QueryError> {
        self.session.prepare()?;
        Ok(())
    }

    /// Execute one request; the reply variant always matches the request
    /// kind.
    pub fn execute(&mut self, request: &AnalysisRequest) -> Result<AnalysisReply, QueryError> {
        if let AnalysisRequest::Reslice { n_slices, range } = request {
            self.session.reslice(*n_slices, *range)?;
            let shape = self.shape()?;
            return Ok(AnalysisReply::Reslice(ResliceReply {
                n_slices: *n_slices,
                hi_slices: crate::hires::hi_res_slices(*n_slices, shape.n_leaves, shape.n_states),
                window: self.session.window(),
                shape,
            }));
        }
        self.prepare(request)?;
        self.shared_reply(request).map_err(Miss::into_error)
    }

    /// The `&self` execution path: answer `request` from the resident
    /// pipeline, or return `None` when a stage it needs is not
    /// materialized (the caller must fall back to
    /// [`QueryEngine::execute`], which can build it). `Some(Err(_))` is a
    /// *final* answer — re-running on the write path would fail the same
    /// way.
    ///
    /// Point DPs over the resident cube run fine on this path (they only
    /// append to the session's lock-guarded memo table), so concurrent
    /// readers exploring new `p` values never serialize on a session-wide
    /// lock.
    pub fn execute_shared(
        &self,
        request: &AnalysisRequest,
    ) -> Option<Result<AnalysisReply, QueryError>> {
        match self.shared_reply(request) {
            Ok(reply) => Some(Ok(reply)),
            Err(Miss::Failed(e)) => Some(Err(e)),
            Err(Miss::NotPrepared) => None,
        }
    }

    /// One reply builder per request kind, all `&self`: the single
    /// implementation both [`QueryEngine::execute`] and
    /// [`QueryEngine::execute_shared`] funnel through — byte parity
    /// between the exclusive and the concurrent path holds by
    /// construction.
    fn shared_reply(&self, request: &AnalysisRequest) -> Shared<AnalysisReply> {
        match request {
            AnalysisRequest::Describe => self.describe_shared().map(AnalysisReply::Describe),
            AnalysisRequest::Aggregate {
                p,
                coarse,
                compare,
                diff_p,
            } => self
                .aggregate_shared(*p, *coarse, *compare, *diff_p)
                .map(AnalysisReply::Aggregate),
            AnalysisRequest::Significant { resolution } => {
                Ok(AnalysisReply::Significant(SignificantReply {
                    resolution: *resolution,
                    levels: self.levels_shared(*resolution)?,
                }))
            }
            AnalysisRequest::Sweep { resolution, steps } => self
                .sweep_shared(*resolution, *steps)
                .map(AnalysisReply::Sweep),
            AnalysisRequest::PValues { resolution } => {
                let entries = ready(self.session.significant_shared(*resolution)?)?;
                Ok(AnalysisReply::PValues(PValuesReply {
                    resolution: *resolution,
                    ps: significant_ps(&entries),
                }))
            }
            AnalysisRequest::Inspect {
                leaf,
                slice,
                p,
                coarse,
            } => self
                .inspect_shared(*leaf, *slice, *p, *coarse)
                .map(AnalysisReply::Inspect),
            AnalysisRequest::RenderOverview {
                p,
                coarse,
                min_rows,
                level_resolution,
            } => {
                let partition = match level_resolution {
                    // Render a significant level's stored partition — the
                    // report path, zero extra DP runs (both cold and warm
                    // compute the same significant set, so the answer is
                    // deterministic either way).
                    Some(res) => {
                        let entries = ready(self.session.significant_shared(*res)?)?;
                        match entries.iter().find(|e| e.p_low <= *p && *p <= e.p_high) {
                            Some(e) => e.partition.clone(),
                            None => self.partition_shared(*p, *coarse)?,
                        }
                    }
                    None => self.partition_shared(*p, *coarse)?,
                };
                let grid = ready(self.session.grid_if_built())?;
                let cube = ready(self.session.cube_if_built())?;
                Ok(AnalysisReply::Overview(OverviewReply::from_partition(
                    cube,
                    &partition,
                    *p,
                    *min_rows,
                    (grid.start(), grid.end()),
                )))
            }
            AnalysisRequest::Stats => self.stats_shared().map(AnalysisReply::Stats),
            // Reslicing mutates the session: never answerable from `&self`.
            AnalysisRequest::Reslice { .. } => Err(Miss::NotPrepared),
            // A subscription needs a connection to stream over; only
            // `ocelotl serve` (which intercepts the kind before execution)
            // can honor it.
            AnalysisRequest::Subscribe { inner } => {
                AnalysisRequest::validate_subscribe_inner(inner)?;
                Err(Miss::Failed(QueryError::Unsupported(
                    "subscribe streams refreshed replies over an `ocelotl serve` connection; \
                     it has no in-process answer"
                        .into(),
                )))
            }
        }
    }

    /// Make *some* dimension source available, cheapest first: an
    /// already-built cube or model, then a warm `.ocube` artifact (no
    /// trace read), then the streaming model build. Never builds a cube —
    /// dimension-only queries (`Describe`, `Stats`) must stay O(model).
    fn ensure_dims(&mut self) -> Result<(), QueryError> {
        if self.session.cube_if_built().is_some() || self.session.model_if_built().is_some() {
            return Ok(());
        }
        if self.session.try_warm_cube()?.is_some() {
            return Ok(());
        }
        self.session.model()?;
        Ok(())
    }

    fn shape(&mut self) -> Result<ModelShape, QueryError> {
        self.ensure_dims()?;
        self.shape_shared().map_err(Miss::into_error)
    }

    fn partition_shared(&self, p: f64, coarse: bool) -> Shared<Partition> {
        ready(self.session.partition_shared(p, coarse)?)
    }

    fn shape_shared(&self) -> Shared<ModelShape> {
        let metric = self.session.config().metric.tag().to_string();
        if let Some(cube) = self.session.cube_if_built() {
            let grid = cube.core().grid();
            Ok(ModelShape {
                n_leaves: cube.hierarchy().n_leaves(),
                n_slices: cube.n_slices(),
                n_states: cube.n_states(),
                metric,
                t_start: grid.start(),
                t_end: grid.end(),
            })
        } else {
            let m = ready(self.session.model_if_built())?;
            Ok(ModelShape {
                n_leaves: m.n_leaves(),
                n_slices: m.n_slices(),
                n_states: m.n_states(),
                metric,
                t_start: m.grid().start(),
                t_end: m.grid().end(),
            })
        }
    }

    /// Hierarchy summary + state names from whatever dimension source is
    /// resident (cube preferred, model otherwise).
    fn hierarchy_info_shared(&self) -> Shared<(usize, u64, Vec<String>)> {
        let (h, states) = if let Some(cube) = self.session.cube_if_built() {
            (cube.hierarchy(), cube.states())
        } else {
            let m = ready(self.session.model_if_built())?;
            (m.hierarchy(), m.states())
        };
        Ok((
            h.len(),
            h.max_depth() as u64,
            states.iter().map(|(_, n)| n.to_string()).collect(),
        ))
    }

    fn backend_info(cube: &CubeBackend) -> (String, u64) {
        let tag = match cube.mode() {
            MemoryMode::Dense => "dense",
            MemoryMode::Lazy => "lazy",
            MemoryMode::Auto => unreachable!("a built cube has a fixed mode"),
        };
        (tag.to_string(), cube.memory_bytes() as u64)
    }

    fn describe_shared(&self) -> Shared<DescribeReply> {
        let shape = self.shape_shared()?;
        let (hierarchy_nodes, hierarchy_depth, states) = self.hierarchy_info_shared()?;
        // The backend is *resolved*, not built: Describe must stay
        // O(model) (it is the `describe` preprocessing command's reply),
        // and the tag must not depend on what earlier queries happened to
        // materialize in this session.
        let backend = self
            .session
            .config()
            .memory
            .resolve(hierarchy_nodes, shape.n_slices)
            .tag()
            .to_string();
        Ok(DescribeReply {
            shape,
            hierarchy_nodes,
            hierarchy_depth,
            states,
            backend,
        })
    }

    fn area_row<C: QualityCube>(
        cube: &C,
        grid: &ocelotl_trace::TimeGrid,
        area: &crate::partition::Area,
    ) -> AreaRow {
        let r = inspect_area(cube, area);
        let (t0, _) = grid.slice_bounds(area.first_slice);
        let (_, t1) = grid.slice_bounds(area.last_slice);
        AreaRow {
            path: r.path,
            first_slice: area.first_slice,
            last_slice: area.last_slice,
            t0,
            t1,
            n_resources: r.n_resources,
            mode: r.mode,
            confidence: r.confidence,
            gain: r.gain,
            loss: r.loss,
        }
    }

    fn aggregate_shared(
        &self,
        p: f64,
        coarse: bool,
        compare: bool,
        diff_p: Option<f64>,
    ) -> Shared<AggregateReply> {
        let partition = self.partition_shared(p, coarse)?;
        let diffed = match diff_p {
            Some(p2) => Some((p2, self.partition_shared(p2, coarse)?)),
            None => None,
        };
        let shape = self.shape_shared()?;
        let grid = ready(self.session.grid_if_built())?;

        // §III.D: spatial-and-temporal is not spatiotemporal — score the
        // unidimensional optima and their product against Algorithm 1.
        let baselines = if compare {
            let model = ready(self.session.model_if_built())?;
            let cube = ready(self.session.cube_if_built())?;
            let h = model.hierarchy();
            let t = model.n_slices();
            let prod = product_aggregation(model, p);
            let spatial_2d = Partition::product(&prod.spatial.nodes, &[(0, t - 1)]);
            let temporal_2d = Partition::product(&[h.root()], &prod.temporal.intervals);
            [
                ("spatiotemporal (Algorithm 1)", &partition),
                ("product P(S) x P(T)", &prod.partition),
                ("spatial-only x full time", &spatial_2d),
                ("temporal-only x full space", &temporal_2d),
                ("microscopic", &Partition::microscopic(h, t)),
                ("full aggregation", &Partition::full(h, t)),
            ]
            .into_iter()
            .map(|(name, part)| BaselineRow {
                name: name.to_string(),
                n_areas: part.len(),
                pic: part.pic(cube, p),
            })
            .collect()
        } else {
            Vec::new()
        };

        let cube = ready(self.session.cube_if_built())?;
        let q = quality(cube, &partition);
        let (backend, backend_bytes) = Self::backend_info(cube);
        let diff = diffed.map(|(p2, other)| {
            let c = compare_partitions(cube.hierarchy(), cube.n_slices(), &partition, &other);
            DiffReply {
                p_other: p2,
                n_areas_other: other.len(),
                variation_of_information: c.variation_of_information,
                normalized_mutual_information: c.normalized_mutual_information,
                rand_index: c.rand_index,
            }
        });
        let areas = partition
            .areas()
            .iter()
            .map(|a| Self::area_row(cube, &grid, a))
            .collect();
        Ok(AggregateReply {
            p,
            coarse,
            shape,
            backend,
            backend_bytes,
            summary: PartitionSummary {
                n_areas: partition.len(),
                n_cells: q.n_cells,
                complexity_reduction: q.complexity_reduction,
                loss: q.loss,
                gain: q.gain,
                loss_ratio: q.loss_ratio,
                gain_ratio: q.gain_ratio,
                pic: partition.pic(cube, p),
            },
            areas,
            baselines,
            diff,
        })
    }

    fn levels_shared(&self, resolution: f64) -> Shared<Vec<LevelReply>> {
        let entries: Vec<PEntry> = ready(self.session.significant_shared(resolution)?)?;
        let cube = ready(self.session.cube_if_built())?;
        Ok(entries
            .iter()
            .map(|e| {
                let q = quality(cube, &e.partition);
                LevelReply {
                    p_low: e.p_low,
                    p_high: e.p_high,
                    n_areas: e.partition.len(),
                    loss_ratio: q.loss_ratio,
                    gain_ratio: q.gain_ratio,
                    complexity_reduction: q.complexity_reduction,
                }
            })
            .collect())
    }

    fn sweep_shared(&self, resolution: f64, steps: usize) -> Shared<SweepReply> {
        let levels = self.levels_shared(resolution)?;
        let mut points = Vec::new();
        if steps > 0 {
            for k in 0..=steps {
                let p = k as f64 / steps as f64;
                let partition = self.partition_shared(p, false)?;
                let cube = ready(self.session.cube_if_built())?;
                points.push(SweepPoint {
                    p,
                    n_areas: partition.len(),
                    pic: partition.pic(cube, p),
                });
            }
        }
        Ok(SweepReply {
            resolution,
            levels,
            points,
        })
    }

    fn inspect_shared(
        &self,
        leaf: usize,
        slice: usize,
        p: f64,
        coarse: bool,
    ) -> Shared<InspectReply> {
        // Validate the cell against the cube's shape before paying for the
        // DP: an out-of-range leaf/slice must fail fast.
        let cube = ready(self.session.cube_if_built())?;
        if leaf >= cube.hierarchy().n_leaves() {
            return Err(Miss::Failed(QueryError::InvalidRequest(format!(
                "leaf {leaf} out of range (trace has {})",
                cube.hierarchy().n_leaves()
            ))));
        }
        if slice >= cube.n_slices() {
            return Err(Miss::Failed(QueryError::InvalidRequest(format!(
                "slice {slice} out of range (model has {})",
                cube.n_slices()
            ))));
        }
        let partition = self.partition_shared(p, coarse)?;
        let grid = ready(self.session.grid_if_built())?;
        let area = area_at(&partition, cube, LeafId(leaf as u32), slice).ok_or_else(|| {
            Miss::Failed(QueryError::Source(
                "cell not covered by the partition (internal error)".into(),
            ))
        })?;
        let report = inspect_area(cube, &area);
        Ok(InspectReply {
            leaf,
            slice,
            p,
            coarse,
            area: Self::area_row(cube, &grid, &area),
            n_slices_spanned: report.n_slices,
            proportions: report.proportions,
        })
    }

    fn stats_shared(&self) -> Shared<StatsReply> {
        // `None`: no telemetry probe ran yet — only the `&mut` path
        // (ingest_stats) may force the trace read.
        let stats = match self.session.ingest_stats_cached() {
            None => return Err(Miss::NotPrepared),
            Some(None) => {
                return Err(Miss::Failed(QueryError::Unsupported(
                    "this model source reports no ingestion telemetry".into(),
                )))
            }
            Some(Some(s)) => s.clone(),
        };
        // The probe materialized the model; shape/hierarchy read it
        // directly — a Stats query never builds the quality cube (its
        // whole point is measuring the O(model) ingestion path).
        let shape = self.shape_shared()?;
        let (hierarchy_nodes, hierarchy_depth, _) = self.hierarchy_info_shared()?;
        Ok(StatsReply {
            shape,
            hierarchy_nodes,
            hierarchy_depth,
            events: stats.events(),
            intervals: stats.intervals,
            points: stats.points,
            bytes_read: stats.bytes_read,
            peak_bytes: stats.peak_bytes,
            mode: stats.mode,
            format: stats.format,
            fingerprint: format!("{:016x}", stats.fingerprint),
            shard_count: stats.shards.len() as u64,
            shard_bytes: stats.shards,
            chunks_total: stats.chunks_total,
            chunks_read: stats.chunks_read,
            bytes_skipped: stats.bytes_skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{IngestStats, Metric, ModelSource, OwnedSource, SessionConfig};
    use ocelotl_trace::synthetic::fig3_model;
    use ocelotl_trace::MicroModel;

    fn engine() -> QueryEngine {
        let model = fig3_model();
        let n_slices = model.n_slices();
        QueryEngine::new(AnalysisSession::new(
            OwnedSource::new(model, 7),
            SessionConfig {
                n_slices,
                ..SessionConfig::default()
            },
        ))
    }

    #[test]
    fn every_reply_matches_its_request_kind() {
        let mut e = engine();
        let requests = [
            AnalysisRequest::Describe,
            AnalysisRequest::Aggregate {
                p: 0.5,
                coarse: false,
                compare: true,
                diff_p: Some(0.2),
            },
            AnalysisRequest::Significant { resolution: 1e-2 },
            AnalysisRequest::Sweep {
                resolution: 1e-2,
                steps: 4,
            },
            AnalysisRequest::PValues { resolution: 1e-2 },
            AnalysisRequest::Inspect {
                leaf: 0,
                slice: 0,
                p: 0.5,
                coarse: false,
            },
            AnalysisRequest::RenderOverview {
                p: 0.5,
                coarse: false,
                min_rows: 0.0,
                level_resolution: None,
            },
            AnalysisRequest::Reslice {
                n_slices: 20,
                range: None,
            },
        ];
        for req in &requests {
            let reply = e.execute(req).unwrap();
            let want = match req.kind() {
                "render-overview" => "overview",
                k => k,
            };
            assert_eq!(reply.kind(), want, "{req:?}");
        }
    }

    #[test]
    fn aggregate_reply_is_self_consistent() {
        let mut e = engine();
        let AnalysisReply::Aggregate(a) = e
            .execute(&AnalysisRequest::Aggregate {
                p: 0.4,
                coarse: false,
                compare: true,
                diff_p: Some(0.4),
            })
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(a.areas.len(), a.summary.n_areas);
        assert_eq!(a.shape.n_leaves, 12);
        assert_eq!(a.shape.n_slices, 20);
        assert_eq!(a.summary.n_cells, 12 * 20);
        let cells: usize = a.areas.iter().map(|r| r.n_cells()).sum();
        assert_eq!(cells, a.summary.n_cells, "areas tile the grid");
        // Algorithm 1 tops the baseline table.
        let best = a.baselines[0].pic;
        for b in &a.baselines {
            assert!(best >= b.pic - 1e-9, "{} beats Algorithm 1", b.name);
        }
        // diff against itself is identity.
        let d = a.diff.unwrap();
        assert!((d.rand_index - 1.0).abs() < 1e-12);
        assert_eq!(d.n_areas_other, a.summary.n_areas);
    }

    #[test]
    fn memoization_carries_across_requests() {
        let mut e = engine();
        let _ = e
            .execute(&AnalysisRequest::Aggregate {
                p: 0.5,
                coarse: false,
                compare: false,
                diff_p: None,
            })
            .unwrap();
        let dp_after_first = e.session_mut().dp_runs();
        // Inspect and overview at the same p reuse the memoized partition.
        let _ = e
            .execute(&AnalysisRequest::Inspect {
                leaf: 0,
                slice: 0,
                p: 0.5,
                coarse: false,
            })
            .unwrap();
        let _ = e
            .execute(&AnalysisRequest::RenderOverview {
                p: 0.5,
                coarse: false,
                min_rows: 0.0,
                level_resolution: None,
            })
            .unwrap();
        assert_eq!(e.session_mut().dp_runs(), dp_after_first);
    }

    #[test]
    fn invalid_parameters_are_invalid_request() {
        let mut e = engine();
        for req in [
            AnalysisRequest::Aggregate {
                p: 1.5,
                coarse: false,
                compare: false,
                diff_p: None,
            },
            AnalysisRequest::Significant { resolution: 0.0 },
            AnalysisRequest::Inspect {
                leaf: 999,
                slice: 0,
                p: 0.5,
                coarse: false,
            },
            AnalysisRequest::Inspect {
                leaf: 0,
                slice: 999,
                p: 0.5,
                coarse: false,
            },
        ] {
            assert!(
                matches!(e.execute(&req), Err(QueryError::InvalidRequest(_))),
                "{req:?}"
            );
        }
    }

    #[test]
    fn subscribe_is_unsupported_in_process_and_validated() {
        let mut e = engine();
        let sub = AnalysisRequest::Subscribe {
            inner: Box::new(AnalysisRequest::Describe),
        };
        // prepare succeeds (it warms the inner request)...
        e.prepare(&sub).unwrap();
        // ...but execution needs a serve connection to stream over.
        assert!(matches!(e.execute(&sub), Err(QueryError::Unsupported(_))));
        assert!(e.execute_shared(&sub).is_some_and(|r| r.is_err()));
        // Reslice and nested Subscribe payloads are rejected outright.
        for bad in [
            AnalysisRequest::Reslice {
                n_slices: 10,
                range: None,
            },
            sub.clone(),
        ] {
            let wrapped = AnalysisRequest::Subscribe {
                inner: Box::new(bad),
            };
            assert!(matches!(
                e.execute(&wrapped),
                Err(QueryError::InvalidRequest(_))
            ));
        }
    }

    #[test]
    fn stats_unsupported_without_telemetry() {
        let mut e = engine();
        assert!(matches!(
            e.execute(&AnalysisRequest::Stats),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn stats_surfaces_source_telemetry() {
        struct WithStats(MicroModel);
        impl ModelSource for WithStats {
            fn fingerprint(&self) -> Result<u64, SessionError> {
                Ok(0xabcd)
            }
            fn model(&self, _n: usize, _m: Metric) -> Result<MicroModel, SessionError> {
                Ok(self.0.clone())
            }
            fn model_with_stats(
                &self,
                n: usize,
                m: Metric,
            ) -> Result<(MicroModel, Option<IngestStats>), SessionError> {
                Ok((
                    self.model(n, m)?,
                    Some(IngestStats {
                        fingerprint: 0xabcd,
                        bytes_read: 100,
                        intervals: 40,
                        points: 3,
                        peak_bytes: 512,
                        mode: "single-pass".into(),
                        format: "btf".into(),
                        gzip: false,
                        shards: vec![60, 40],
                        chunks_total: 8,
                        chunks_read: 3,
                        bytes_skipped: 55,
                    }),
                ))
            }
        }
        let model = fig3_model();
        let n_slices = model.n_slices();
        let mut e = QueryEngine::new(AnalysisSession::new(
            WithStats(model),
            SessionConfig {
                n_slices,
                ..SessionConfig::default()
            },
        ));
        let AnalysisReply::Stats(s) = e.execute(&AnalysisRequest::Stats).unwrap() else {
            panic!()
        };
        assert_eq!(s.events, 83);
        assert_eq!(s.fingerprint, "000000000000abcd");
        assert_eq!(s.shape.n_leaves, 12);
        assert_eq!(s.shard_count, 2);
        assert_eq!(s.shard_bytes, vec![60, 40]);
        assert_eq!(s.chunks_total, 8);
        assert_eq!(s.chunks_read, 3);
        assert_eq!(s.bytes_skipped, 55);
    }

    #[test]
    fn overview_reply_is_drawable_standalone() {
        let mut e = engine();
        let AnalysisReply::Overview(ov) = e
            .execute(&AnalysisRequest::RenderOverview {
                p: 0.4,
                coarse: false,
                min_rows: 2.0,
                level_resolution: None,
            })
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(ov.n_leaves, 12);
        assert_eq!(ov.n_slices, 20);
        assert!(!ov.states.is_empty());
        assert!(!ov.clusters.is_empty());
        assert_eq!(ov.items.len(), ov.n_data + ov.n_visual);
        // Items tile the grid without any hierarchy access.
        let mut cover = vec![0u8; ov.n_leaves * ov.n_slices];
        for it in &ov.items {
            assert!(it.leaf_end <= ov.n_leaves);
            for leaf in it.leaf_start..it.leaf_end {
                for t in it.first_slice..=it.last_slice {
                    cover[leaf * ov.n_slices + t] += 1;
                }
            }
            if let Some(s) = it.state {
                assert!(s < ov.states.len());
            }
        }
        assert!(cover.iter().all(|&c| c == 1));
    }

    #[test]
    fn request_and_error_tags_are_stable() {
        assert_eq!(AnalysisRequest::Describe.kind(), "describe");
        assert_eq!(
            AnalysisRequest::RenderOverview {
                p: 0.5,
                coarse: false,
                min_rows: 0.0,
                level_resolution: None,
            }
            .kind(),
            "render-overview"
        );
        assert_eq!(AnalysisRequest::KINDS.len(), 10);
        assert_eq!(
            AnalysisRequest::Reslice {
                n_slices: 60,
                range: None
            }
            .kind(),
            "reslice"
        );
        assert_eq!(
            AnalysisRequest::Subscribe {
                inner: Box::new(AnalysisRequest::Describe)
            }
            .kind(),
            "subscribe"
        );
        let e = QueryError::InvalidRequest("x".into());
        assert_eq!(e.kind(), "invalid-request");
        assert_eq!(
            QueryError::from_parts("invalid-request", "x".into()),
            QueryError::InvalidRequest("x".into())
        );
        assert!(matches!(
            QueryError::from_parts("???", "y".into()),
            QueryError::Protocol(_)
        ));
        assert!(e.to_string().contains("invalid-request"));
    }
}
