//! The super-resolution resident model behind incremental re-slicing.
//!
//! The paper's microscopic model fixes `|T|` before aggregation, so a
//! `--slices` change (the §V.B interactive refinement loop at varying
//! resolution) would re-stream the whole trace from disk. [`HiResModel`]
//! removes that disk pass: on first ingest the pipeline slices the trace
//! into a **super-resolution** grid of
//! [`hi_res_slices`]`(n_slices, n_leaves, n_states)` periods (a
//! power-of-two multiple of the requested resolution, at least
//! `max(4096, 4·n_slices)`, memory-bounded by
//! [`HI_RES_CELL_BUDGET`]) and keeps the raw array resident. Any
//! coarser [`MicroModel`] — including zoomed sub-ranges whose edges align
//! with the hi-res grid — is then derived by **pure in-memory rebinning**.
//!
//! ## Bit-exactness
//!
//! Re-slicing is provably bit-identical to a fresh ingest because both
//! are the *same computation*: the pipeline always folds events into the
//! hi-res grid and always derives the requested model with
//! [`HiResModel::derive`] (one fixed left-to-right summation order per
//! cell). [`HiResModel::serves`] gates warm answers to exactly the
//! resolutions whose fresh ingest lands on the same hi-res grid
//! (`n' | H` **and** `hi_res_slices(n') == H`), so a served re-slice and
//! a cold re-ingest can never diverge — not even in the last ulp. Other
//! resolutions (non-divisor grids, or divisors outside the dyadic family)
//! fall back to a fresh ingest at their own hi-res grid.
//!
//! For the density metric the resident array stores the **unnormalized**
//! per-cell event counts (whole numbers, so rebinned sums are exact);
//! the peak normalization of `event_density` is applied once per derived
//! model, at the target resolution — again the same arithmetic a fresh
//! ingest performs.

use crate::session::Metric;
use ocelotl_trace::{fold_interval, LeafId, MicroModel, StateId, TimeGrid};
use std::fmt;

pub use ocelotl_trace::{hi_res_slices, HI_RES_CELL_BUDGET, HI_RES_FACTOR, HI_RES_MIN_SLICES};

/// One interval event of a live stream: `(leaf, state, begin, end)`.
/// This is the only record kind the live path carries — point events
/// would make the density pseudo-state axis depend on arrival order,
/// which the append-boundary bit-identity proof forbids.
pub type LiveEvent = (LeafId, StateId, f64, f64);

/// What one [`HiResModel::append`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Inclusive hi-res slice range `[lo, hi]` the batch contributed to;
    /// `None` when no event overlapped the grid.
    pub touched: Option<(usize, usize)>,
    /// Hi-res periods added to the time axis (0 when every event fit).
    pub grown: usize,
}

/// Why [`HiResModel::append`] refused a batch (the model is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// An event carried a non-finite time or `end < begin`.
    BadTime,
    /// An event named a leaf or state outside the model's shape.
    BadShape,
    /// Growing the grid far enough to cover the batch would exceed
    /// [`HI_RES_CELL_BUDGET`] — declare a longer horizon up front.
    Overflow,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::BadTime => write!(f, "event has non-finite times or end < begin"),
            AppendError::BadShape => write!(f, "event names a leaf or state outside the model"),
            AppendError::Overflow => {
                write!(f, "grid growth would exceed the hi-res cell budget")
            }
        }
    }
}

impl std::error::Error for AppendError {}

/// One resident super-resolution model: the raw (unnormalized) microscopic
/// array at [`hi_res_slices`] periods, from which coarser models are
/// derived without touching the trace. See the module docs.
#[derive(Debug, Clone)]
pub struct HiResModel {
    metric: Metric,
    raw: MicroModel,
}

impl HiResModel {
    /// Wrap a raw hi-res array (durations for [`Metric::States`],
    /// unnormalized counts for [`Metric::Density`]) produced by a hi-res
    /// ingest (`ModelSink::hi_res` + `finish_raw`).
    pub fn new(metric: Metric, raw: MicroModel) -> Self {
        Self { metric, raw }
    }

    /// The metric the raw array carries.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The raw super-resolution array (unnormalized for density).
    pub fn raw(&self) -> &MicroModel {
        &self.raw
    }

    /// `H`: the super-resolution slice count.
    pub fn n_slices(&self) -> usize {
        self.raw.n_slices()
    }

    /// Resident footprint of the raw array in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.raw.n_leaves() * self.raw.n_states() * self.raw.n_slices()) as u64
            * std::mem::size_of::<f64>() as u64
    }

    /// `true` when a model at `n_slices` can be served from this resident
    /// array **bit-identically to a fresh ingest**: `n_slices` divides `H`
    /// and a fresh ingest at `n_slices` would land on the same hi-res
    /// grid. (Divisors outside that set — e.g. `5` from a `7680`-slice
    /// grid whose fresh ingest would use `5120` — are declined so warm
    /// answers can never diverge from cold ones.)
    ///
    /// The check recomputes [`hi_res_slices`] from the raw array's own
    /// dimensions. For density models whose pseudo-states widened the
    /// state count *and* whose size hits the cell budget, this can be
    /// stricter than the grid the ingest actually chose — the session
    /// then falls back to the per-resolution direct build on both the
    /// warm and the cold path, so the mismatch costs a re-read, never
    /// correctness.
    pub fn serves(&self, n_slices: usize) -> bool {
        n_slices >= 1
            && self.raw.n_slices().is_multiple_of(n_slices)
            && hi_res_slices(n_slices, self.raw.n_leaves(), self.raw.n_states())
                == self.raw.n_slices()
    }

    /// Derive the full-range model at `n_slices` by rebinning; `None`
    /// when [`HiResModel::serves`] declines the resolution.
    pub fn derive(&self, n_slices: usize) -> Option<MicroModel> {
        self.serves(n_slices)
            .then(|| self.rebin(0, self.raw.n_slices(), n_slices))
    }

    /// Derive a zoomed model over the hi-res slice window
    /// `[first, first + count)` rebinned to `n_slices`; `None` when the
    /// window is empty, out of range, or not divisible into `n_slices`
    /// equal bins.
    pub fn derive_window(&self, first: usize, count: usize, n_slices: usize) -> Option<MicroModel> {
        (n_slices >= 1
            && count >= n_slices
            && count.is_multiple_of(n_slices)
            && first + count <= self.raw.n_slices())
        .then(|| self.rebin(first, count, n_slices))
    }

    /// Derive the full-range model at any `n_slices` that divides `H`,
    /// **without** the dyadic-family check of [`HiResModel::serves`].
    /// Live sessions use this: once the grid has grown past its original
    /// horizon, `H` is no longer the `hi_res_slices` value a fresh ingest
    /// would pick, but the rebinned model is still the exact left-to-right
    /// sum over the live grid — and on an ungrown grid `derive_at` is
    /// bit-identical to [`HiResModel::derive`] whenever `serves` holds
    /// (same kernel, same inputs).
    pub fn derive_at(&self, n_slices: usize) -> Option<MicroModel> {
        (n_slices >= 1 && self.raw.n_slices().is_multiple_of(n_slices))
            .then(|| self.rebin(0, self.raw.n_slices(), n_slices))
    }

    /// Append a batch of interval events to the resident array, growing the
    /// time axis by whole hi-res periods when an event ends past the grid.
    ///
    /// Each event folds through [`fold_interval`] — the **same** per-record
    /// kernel `ModelSink`'s flush uses — in batch order, so after any
    /// sequence of appends every cell holds its contributions in stream
    /// order: the array is bit-identical to a fresh
    /// `ModelSink::with_range(kind, H, range)` + `finish_raw()` ingest of
    /// the concatenated stream over the same grid. Growth appends
    /// zero-filled periods of the **same slice width** (existing slice
    /// bounds are unchanged on grids whose width is exactly
    /// representable — e.g. a power-of-two span over a power-of-two `H`);
    /// the added period count is rounded up to a multiple of
    /// `growth_quantum`, so a caller that passes its target resolution
    /// keeps `n | H` (and thereby [`HiResModel::derive_at`]) valid across
    /// growth. Events are validated up front: on `Err` the model is
    /// untouched.
    pub fn append(
        &mut self,
        events: &[LiveEvent],
        growth_quantum: usize,
    ) -> Result<AppendOutcome, AppendError> {
        let n_leaves = self.raw.n_leaves();
        let n_states = self.raw.n_states();
        let mut t_hi = f64::NEG_INFINITY;
        for &(leaf, state, begin, end) in events {
            if !begin.is_finite() || !end.is_finite() || end < begin {
                return Err(AppendError::BadTime);
            }
            if leaf.index() >= n_leaves || state.index() >= n_states {
                return Err(AppendError::BadShape);
            }
            t_hi = t_hi.max(end);
        }

        let grid = *self.raw.grid();
        let quantum = growth_quantum.max(1);
        let mut grown = 0usize;
        if !events.is_empty() && t_hi > grid.end() {
            let h = grid.n_slices();
            let w = grid.slice_duration();
            let start = grid.start();
            // Smallest whole-period extension leaving t_hi *strictly*
            // inside the grown grid, then round up to the growth quantum.
            // Strictness matters: an endpoint exactly on the grid end is
            // clamped into the last slice, and if the grid later grew
            // past it, a fresh ingest over the grown range would map it
            // to the next slice instead — growth must never create that
            // boundary case. The estimate from float division is
            // corrected by re-evaluating the actual new bound.
            let mut k = (((t_hi - grid.end()) / w).ceil() as usize).max(1);
            while start + w * ((h + k) as f64) <= t_hi {
                k += 1;
            }
            k = k.div_ceil(quantum) * quantum;
            let h_new = h + k;
            if n_leaves * n_states * h_new > HI_RES_CELL_BUDGET {
                return Err(AppendError::Overflow);
            }
            let end_new = start + w * (h_new as f64);
            self.raw.regrow(TimeGrid::new(start, end_new, h_new));
            grown = k;
        }

        let grid = *self.raw.grid();
        let kind = self.metric.model_kind();
        let mut touched: Option<(usize, usize)> = None;
        for &(leaf, state, begin, end) in events {
            fold_interval(kind, self.raw.series_mut(leaf, state), &grid, begin, end);
            // Conservative touched range: the clipped event extent.
            if end >= grid.start() && begin <= grid.end() {
                let lo = grid.slice_of(begin.max(grid.start()));
                let hi = grid.slice_of(end.min(grid.end()));
                touched = Some(match touched {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        Ok(AppendOutcome { touched, grown })
    }

    /// Snap a time window to the hi-res grid: the nearest slice edges
    /// enclosing a non-empty window, as `(first, count)` hi-res slice
    /// indices. `None` when the window collapses or lies outside the
    /// grid. Delegates to [`snap_to_grid`] so a grid probed from a trace
    /// file's chunk index (no resident array) snaps to identical edges.
    pub fn snap_window(&self, t0: f64, t1: f64) -> Option<(usize, usize)> {
        let grid = self.raw.grid();
        snap_to_grid((grid.start(), grid.end()), self.raw.n_slices(), t0, t1)
    }

    /// Merge two hi-res models of the **same stream shape**: identical
    /// metric, grid, hierarchy dimensions and state registry (same names,
    /// same order). Every cell of the result is `self + other` — one fixed
    /// summation order, so folding per-shard models left-to-right in shard
    /// order is the same computation at any worker count (the argument that
    /// made re-slicing exact). Both sides must carry **raw** (unnormalized)
    /// arrays; peak normalization happens once, when a model is derived
    /// from the merged result.
    pub fn merge(&self, other: &HiResModel) -> Result<HiResModel, String> {
        if self.metric != other.metric {
            return Err("cannot merge hi-res models of different metrics".into());
        }
        if self.raw.grid() != other.raw.grid() {
            return Err("cannot merge hi-res models over different grids".into());
        }
        if self.raw.n_leaves() != other.raw.n_leaves() {
            return Err("cannot merge hi-res models over different hierarchies".into());
        }
        let (a, b) = (self.raw.states(), other.raw.states());
        if a.len() != b.len() || a.iter().zip(b.iter()).any(|((_, x), (_, y))| x != y) {
            return Err("cannot merge hi-res models with different state registries".into());
        }
        let n_leaves = self.raw.n_leaves();
        let n_states = self.raw.n_states();
        let h = self.raw.n_slices();
        let mut data = vec![0.0f64; n_leaves * n_states * h];
        for leaf in 0..n_leaves {
            for x in 0..n_states {
                let sa = self.raw.series(LeafId(leaf as u32), StateId(x as u16));
                let sb = other.raw.series(LeafId(leaf as u32), StateId(x as u16));
                let dst = (leaf * n_states + x) * h;
                for t in 0..h {
                    data[dst + t] = sa[t] + sb[t];
                }
            }
        }
        Ok(HiResModel::new(
            self.metric,
            MicroModel::from_dense(
                self.raw.hierarchy().clone(),
                self.raw.states().clone(),
                *self.raw.grid(),
                data,
            ),
        ))
    }

    /// The one rebinning kernel: coarse cell `t` is the left-to-right sum
    /// of its `count / n_slices` hi-res cells. Density models are peak-
    /// normalized at the target resolution afterwards (exactly
    /// `event_density`'s arithmetic over the rebinned counts).
    fn rebin(&self, first: usize, count: usize, n_slices: usize) -> MicroModel {
        let f = count / n_slices;
        let hi_grid = self.raw.grid();
        let (w0, _) = hi_grid.slice_bounds(first);
        let (_, w1) = hi_grid.slice_bounds(first + count - 1);
        let grid = TimeGrid::new(w0, w1, n_slices);

        let n_leaves = self.raw.n_leaves();
        let n_states = self.raw.n_states();
        let mut data = vec![0.0f64; n_leaves * n_states * n_slices];
        for leaf in 0..n_leaves {
            for x in 0..n_states {
                let series = self.raw.series(LeafId(leaf as u32), StateId(x as u16));
                let dst = (leaf * n_states + x) * n_slices;
                for t in 0..n_slices {
                    let mut sum = 0.0f64;
                    let base = first + t * f;
                    for cell in &series[base..base + f] {
                        sum += cell;
                    }
                    data[dst + t] = sum;
                }
            }
        }
        if self.metric == Metric::Density {
            ocelotl_trace::peak_normalize(&mut data, grid.slice_duration());
        }
        MicroModel::from_dense(
            self.raw.hierarchy().clone(),
            self.raw.states().clone(),
            grid,
            data,
        )
    }
}

/// Snap a time window to the hi-res grid `range` split into `h` equal
/// slices: the nearest slice edges enclosing a non-empty window, as
/// `(first, count)` slice indices. `None` when the window collapses, lies
/// outside the grid, or the grid itself is degenerate.
///
/// This is the one snapping kernel: [`HiResModel::snap_window`] calls it
/// over the resident array's grid, and the session's pushdown path calls
/// it over a grid probed from a columnar trace's chunk index — both must
/// land on bit-identical edges for windowed pushdown ingests to agree
/// with resident-grid re-slices.
pub fn snap_to_grid(range: (f64, f64), h: usize, t0: f64, t1: f64) -> Option<(usize, usize)> {
    let (start, end) = range;
    let degenerate = h == 0 || !(start.is_finite() && end.is_finite() && end > start);
    if degenerate || !(t0.is_finite() && t1.is_finite() && t1 > t0) {
        return None;
    }
    let grid = TimeGrid::new(start, end, h);
    let w = grid.slice_duration();
    let snap = |t: f64| -> usize {
        let idx = ((t - grid.start()) / w).round();
        idx.clamp(0.0, h as f64) as usize
    };
    let (a, b) = (snap(t0), snap(t1));
    (b > a).then_some((a, b - a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelotl_trace::{Hierarchy, StateRegistry};

    fn hi_model(n_leaves: usize, h: usize) -> HiResModel {
        let hierarchy = Hierarchy::flat(n_leaves, "p");
        let states = StateRegistry::from_names(["A", "B"]);
        let grid = TimeGrid::new(0.0, 16.0, h);
        let mut data = vec![0.0f64; n_leaves * 2 * h];
        for (i, v) in data.iter_mut().enumerate() {
            *v = (i % 97) as f64 * 0.125;
        }
        HiResModel::new(
            Metric::States,
            MicroModel::from_dense(hierarchy, states, grid, data),
        )
    }

    #[test]
    fn serves_exactly_the_dyadic_family() {
        // H = 7680 = 30·2⁸ over a small hierarchy.
        let hi = hi_model(2, 7680);
        for n in [15, 30, 60, 120, 240, 480, 960, 1920] {
            assert!(hi.serves(n), "{n} should be servable");
        }
        // Divisors outside the dyadic family resolve to other grids —
        // including near-H requests (a fresh ingest at 3840 refines to
        // 4·3840 = 15360, not 7680).
        for n in [5, 10, 6, 64, 50, 7, 0, 3840, 7680] {
            assert!(!hi.serves(n), "{n} must be declined");
        }
    }

    #[test]
    fn rebinning_conserves_mass_and_grid() {
        let hi = hi_model(3, 7680);
        let m = hi.derive(30).unwrap();
        assert_eq!(m.n_slices(), 30);
        assert_eq!(m.grid().start(), 0.0);
        assert_eq!(m.grid().end(), 16.0);
        assert!((m.grand_total() - hi.raw().grand_total()).abs() < 1e-6);
        // Each coarse cell is the ordered sum of its 256 hi-res cells.
        let series = hi.raw().series(LeafId(1), StateId(1));
        let expected: f64 = series[256..512].iter().sum();
        assert_eq!(
            m.duration(LeafId(1), StateId(1), 1).to_bits(),
            expected.to_bits()
        );
    }

    #[test]
    fn window_derivation_aligns_with_the_hi_grid() {
        let hi = hi_model(2, 7680);
        // A quarter of the grid, rebinned to 24 slices (1920 / 24 = 80).
        let m = hi.derive_window(1920, 1920, 24).unwrap();
        assert_eq!(m.n_slices(), 24);
        assert_eq!(m.grid().start(), 4.0);
        assert_eq!(m.grid().end(), 8.0);
        // Misaligned windows are declined.
        assert!(hi.derive_window(0, 1000, 24).is_none(), "1000 % 24 != 0");
        assert!(hi.derive_window(7000, 1920, 24).is_none(), "out of range");
        assert!(hi.derive_window(0, 0, 1).is_none(), "empty window");
    }

    #[test]
    fn snap_window_rounds_to_nearest_edges() {
        let hi = hi_model(2, 1024); // w = 16/1024 = 1/64
        let (first, count) = hi.snap_window(4.0, 8.0).unwrap();
        assert_eq!((first, count), (256, 256));
        // Slightly-off endpoints snap to the same edges.
        let eps = 1.0 / 512.0;
        assert_eq!(hi.snap_window(4.0 + eps, 8.0 - eps), Some((256, 256)));
        assert_eq!(hi.snap_window(5.0, 5.0), None, "empty window");
        assert_eq!(hi.snap_window(f64::NAN, 8.0), None);
        // Windows beyond the grid clamp to it.
        assert_eq!(hi.snap_window(-5.0, 100.0), Some((0, 1024)));
    }

    #[test]
    fn snap_to_grid_matches_the_resident_kernel() {
        let hi = hi_model(2, 1024);
        for (t0, t1) in [(4.0, 8.0), (-5.0, 100.0), (0.1, 0.2), (5.0, 5.0)] {
            assert_eq!(
                snap_to_grid((0.0, 16.0), 1024, t0, t1),
                hi.snap_window(t0, t1),
                "probe and resident snapping must agree at [{t0}, {t1}]"
            );
        }
        assert_eq!(snap_to_grid((0.0, 0.0), 1024, 0.0, 1.0), None, "flat grid");
        assert_eq!(snap_to_grid((0.0, 16.0), 0, 0.0, 1.0), None, "no slices");
        assert_eq!(snap_to_grid((f64::NAN, 16.0), 8, 0.0, 1.0), None);
    }

    #[test]
    fn density_derivation_normalizes_at_the_target_resolution() {
        let hierarchy = Hierarchy::flat(2, "p");
        let states = StateRegistry::from_names(["evt:send"]);
        let grid = TimeGrid::new(0.0, 8.0, 4096);
        let mut counts = vec![0.0f64; 2 * 4096];
        counts[0] = 3.0; // leaf 0, hi slice 0
        counts[1] = 2.0; // leaf 0, hi slice 1 — same coarse bin as slice 0
        counts[4096 + 2048] = 4.0; // leaf 1, second half
        let hi = HiResModel::new(
            Metric::Density,
            MicroModel::from_dense(hierarchy, states, grid, counts),
        );
        let m = hi.derive(2).unwrap();
        // Rebinned counts: leaf 0 = [5, 0], leaf 1 = [0, 4]; peak 5;
        // slice duration 4.0 → scale 0.8.
        assert_eq!(m.duration(LeafId(0), StateId(0), 0), 4.0);
        assert_eq!(m.duration(LeafId(0), StateId(0), 1), 0.0);
        assert_eq!(m.duration(LeafId(1), StateId(0), 1), 3.2);
    }

    #[test]
    fn memory_bytes_counts_the_raw_array() {
        let hi = hi_model(2, 1024);
        assert_eq!(hi.memory_bytes(), 2 * 2 * 1024 * 8);
    }

    #[test]
    fn merge_sums_every_cell_in_fixed_order() {
        let a = hi_model(2, 1024);
        let b = hi_model(2, 1024);
        let m = a.merge(&b).unwrap();
        assert_eq!(m.metric(), a.metric());
        assert_eq!(m.n_slices(), 1024);
        for leaf in 0..2u32 {
            for x in 0..2u16 {
                let sa = a.raw().series(LeafId(leaf), StateId(x));
                let sb = b.raw().series(LeafId(leaf), StateId(x));
                let sm = m.raw().series(LeafId(leaf), StateId(x));
                for t in 0..1024 {
                    assert_eq!(sm[t].to_bits(), (sa[t] + sb[t]).to_bits());
                }
            }
        }
        // Folding three shards left-to-right equals pairwise chaining.
        let c = hi_model(2, 1024);
        let fold = a.merge(&b).unwrap().merge(&c).unwrap();
        let chain = m.merge(&c).unwrap();
        assert_eq!(
            fold.raw().series(LeafId(1), StateId(1)),
            chain.raw().series(LeafId(1), StateId(1))
        );
    }

    fn empty_live(metric: Metric, n_leaves: usize, h: usize, t0: f64, t1: f64) -> HiResModel {
        let hierarchy = Hierarchy::flat(n_leaves, "p");
        let states = StateRegistry::from_names(["A", "B"]);
        HiResModel::new(
            metric,
            MicroModel::from_dense(
                hierarchy,
                states,
                TimeGrid::new(t0, t1, h),
                vec![0.0; n_leaves * 2 * h],
            ),
        )
    }

    /// Fresh `ModelSink::with_range` ingest of `events` over `range` at
    /// `h` slices — the post-mortem reference the live array must match.
    fn fresh_raw(
        metric: Metric,
        n_leaves: usize,
        h: usize,
        range: (f64, f64),
        events: &[LiveEvent],
    ) -> MicroModel {
        use ocelotl_trace::{EventSink, ModelSink, StreamHeader};
        let mut sink = ModelSink::with_range(metric.model_kind(), h, range);
        sink.begin(&StreamHeader {
            hierarchy: Hierarchy::flat(n_leaves, "p"),
            states: StateRegistry::from_names(["A", "B"]),
            metadata: Vec::new(),
            range: Some(range),
        });
        for &(leaf, state, b, e) in events {
            sink.interval(leaf, state, b, e);
        }
        sink.finish_raw().unwrap()
    }

    fn assert_raw_identical(live: &HiResModel, fresh: &MicroModel, what: &str) {
        assert_eq!(live.raw().grid(), fresh.grid(), "{what}: grid");
        for leaf in 0..live.raw().n_leaves() {
            for x in 0..live.raw().n_states() {
                let a = live.raw().series(LeafId(leaf as u32), StateId(x as u16));
                let b = fresh.series(LeafId(leaf as u32), StateId(x as u16));
                for (t, (va, vb)) in a.iter().zip(b.iter()).enumerate() {
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "{what}: cell ({leaf}, {x}, {t}): {va} vs {vb}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_matches_a_fresh_ingest_over_the_declared_horizon() {
        // Fixed horizon with arbitrary float bounds: no growth involved,
        // so the equivalence must hold on *any* grid.
        let range = (0.1, 9.7);
        let events: Vec<LiveEvent> = (0..200)
            .map(|i| {
                let b = 0.1 + (i % 37) as f64 * 0.21;
                (
                    LeafId((i % 3) as u32),
                    StateId((i % 2) as u16),
                    b,
                    b + 0.05 + (i % 11) as f64 * 0.02,
                )
            })
            .collect();
        for metric in [Metric::States, Metric::Density] {
            let mut live = empty_live(metric, 3, 4096, range.0, range.1);
            for chunk in events.chunks(17) {
                let out = live.append(chunk, 32).unwrap();
                assert_eq!(out.grown, 0, "nothing past the horizon");
                assert!(out.touched.is_some());
            }
            let fresh = fresh_raw(metric, 3, 4096, range, &events);
            assert_raw_identical(&live, &fresh, metric.tag());
        }
    }

    #[test]
    fn append_growth_matches_a_fresh_ingest_over_the_grown_range() {
        // Dyadic grid (start 0, power-of-two span and H): the grown end
        // bound is exactly representable, so a fresh ingest over the
        // grown range folds onto bit-identical slice boundaries.
        let h = 4096usize;
        let w = 8.0 / h as f64;
        let events: Vec<LiveEvent> = (0..300)
            .map(|i| {
                let b = (i as f64) * 0.05; // runs past 8.0 → growth
                (
                    LeafId((i % 2) as u32),
                    StateId(((i / 3) % 2) as u16),
                    b,
                    b + 0.125,
                )
            })
            .collect();
        for metric in [Metric::States, Metric::Density] {
            let mut live = empty_live(metric, 2, h, 0.0, 8.0);
            let quantum = 64usize;
            let mut fed = 0usize;
            for chunk in events.chunks(23) {
                let out = live.append(chunk, quantum).unwrap();
                fed += chunk.len();
                assert_eq!(out.grown % quantum, 0, "growth honors the quantum");
                assert!(
                    live.n_slices().is_multiple_of(quantum),
                    "quantum keeps dividing H"
                );
                // The invariant under test: at every append boundary the
                // grown live array equals a fresh ingest of the prefix
                // over the grown range.
                let h_now = live.n_slices();
                let end_now = 0.0 + w * h_now as f64;
                let fresh = fresh_raw(metric, 2, h_now, (0.0, end_now), &events[..fed]);
                assert_raw_identical(&live, &fresh, metric.tag());
            }
            assert!(live.n_slices() > h, "the stream must have forced growth");
        }
    }

    #[test]
    fn derive_at_equals_derive_on_an_ungrown_grid() {
        let hi = hi_model(2, 7680);
        for n in [15, 30, 60, 1920] {
            let a = hi.derive(n).unwrap();
            let b = hi.derive_at(n).unwrap();
            assert_eq!(a.grid(), b.grid());
            for leaf in 0..2u32 {
                for x in 0..2u16 {
                    let (sa, sb) = (
                        a.series(LeafId(leaf), StateId(x)),
                        b.series(LeafId(leaf), StateId(x)),
                    );
                    for (va, vb) in sa.iter().zip(sb.iter()) {
                        assert_eq!(va.to_bits(), vb.to_bits());
                    }
                }
            }
        }
        // derive_at accepts any divisor (no dyadic-family gate) …
        assert!(hi.derive_at(10).is_some());
        assert!(hi.derive(10).is_none());
        // … but still rejects non-divisors and zero.
        assert!(hi.derive_at(7).is_none());
        assert!(hi.derive_at(0).is_none());
    }

    #[test]
    fn append_validates_up_front_and_leaves_the_model_untouched() {
        let mut live = empty_live(Metric::States, 2, 1024, 0.0, 8.0);
        live.append(&[(LeafId(0), StateId(0), 1.0, 2.0)], 1)
            .unwrap();
        let before: Vec<u64> = live
            .raw()
            .series(LeafId(0), StateId(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let bad_batches: Vec<(Vec<LiveEvent>, AppendError)> = vec![
            (
                vec![
                    (LeafId(0), StateId(0), 3.0, 4.0),
                    (LeafId(0), StateId(0), f64::NAN, 5.0),
                ],
                AppendError::BadTime,
            ),
            (
                vec![(LeafId(0), StateId(0), 5.0, 4.0)],
                AppendError::BadTime,
            ),
            (
                vec![(LeafId(9), StateId(0), 1.0, 2.0)],
                AppendError::BadShape,
            ),
            (
                vec![(LeafId(0), StateId(7), 1.0, 2.0)],
                AppendError::BadShape,
            ),
            (
                vec![(LeafId(0), StateId(0), 0.0, 1e9)],
                AppendError::Overflow,
            ),
        ];
        for (batch, expect) in bad_batches {
            assert_eq!(live.append(&batch, 1), Err(expect));
            let after: Vec<u64> = live
                .raw()
                .series(LeafId(0), StateId(0))
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(before, after, "model must be untouched after {expect:?}");
            assert_eq!(live.n_slices(), 1024, "no growth after {expect:?}");
        }
        // An empty batch is a no-op, not an error.
        let out = live.append(&[], 1).unwrap();
        assert_eq!(
            out,
            AppendOutcome {
                touched: None,
                grown: 0
            }
        );
    }

    #[test]
    fn append_reports_the_touched_slice_range() {
        let mut live = empty_live(Metric::States, 2, 1024, 0.0, 8.0);
        // w = 8/1024 = 1/128; [1.0, 2.0] spans slices 128..=256.
        let out = live
            .append(&[(LeafId(0), StateId(0), 1.0, 2.0)], 1)
            .unwrap();
        assert_eq!(out.touched, Some((128, 256)));
        let out = live
            .append(
                &[
                    (LeafId(1), StateId(1), 4.0, 4.5),
                    (LeafId(0), StateId(0), 0.0, 0.25),
                ],
                1,
            )
            .unwrap();
        assert_eq!(out.touched, Some((0, 576)));
    }

    #[test]
    fn merge_rejects_shape_mismatches() {
        let a = hi_model(2, 1024);
        assert!(a.merge(&hi_model(3, 1024)).is_err(), "leaf count");
        assert!(a.merge(&hi_model(2, 512)).is_err(), "grid");
        let diff_metric = HiResModel::new(Metric::Density, hi_model(2, 1024).raw().clone());
        assert!(a.merge(&diff_metric).is_err(), "metric");
        let renamed = HiResModel::new(
            Metric::States,
            MicroModel::from_dense(
                Hierarchy::flat(2, "p"),
                StateRegistry::from_names(["A", "C"]),
                TimeGrid::new(0.0, 16.0, 1024),
                vec![0.0; 2 * 2 * 1024],
            ),
        );
        assert!(a.merge(&renamed).is_err(), "state names");
    }
}
