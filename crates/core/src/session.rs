//! `AnalysisSession` — the memoized analysis pipeline.
//!
//! The paper's core economy (§V.B) is *"a long preprocessing pass buys
//! instantaneous interaction afterwards"*: trace reading and microscopic
//! description dominate (50 minutes at Table II scale), while re-running
//! Algorithm 1 at a new trade-off `p` on cached gain/loss inputs is
//! instantaneous. This module makes that economy an explicit object. An
//! [`AnalysisSession`] owns the staged pipeline
//!
//! ```text
//! trace ──► MicroModel ──► CubeCore ──► CubeBackend ──► partition(p)
//!            (slice)       (prefix      (dense/lazy)      (Algorithm 1)
//!                           sums)                       ──► significant-p table
//! ```
//!
//! with two levels of memoization:
//!
//! 1. **in memory** — each stage is computed at most once per session, and
//!    every DP result (one per distinct `(p, tie-breaking)` query) is kept
//!    in a [`PartitionTable`];
//! 2. **on disk** — a pluggable [`ArtifactStore`] persists the two
//!    expensive artifacts across processes: the cube's prefix sums
//!    (`.ocube`) and the partition table (`.opart`). A session that finds
//!    both artifacts never touches the trace at all.
//!
//! Artifacts are **content-addressed**: the session key is a 64-bit FNV-1a
//! hash over the trace fingerprint (a hash of the raw trace bytes) and the
//! pipeline parameters (slice count, metric, memory mode). Changing any of
//! them changes the key, so stale artifacts can never be served — the disk
//! store additionally garbage-collects artifacts left behind under old
//! keys (see `ocelotl-format`'s `DiskStore`).
//!
//! Warm answers are **bit-identical** to cold ones: `.ocube` stores the
//! prefix sums as exact IEEE-754 bit patterns and every backend evaluates
//! cells through the same [`CubeCore::eval_cell`], while `.opart` stores
//! partitions exactly; cached partitions are only served for *exactly* the
//! `(p, tie-breaking)` query that produced them.

use crate::cube::{CubeBackend, CubeCore, MemoryMode};
use crate::dp::{aggregate, DpConfig};
use crate::hires::{AppendOutcome, HiResModel, LiveEvent};
use crate::partition::Partition;
use crate::pvalues::{significant_partitions, PEntry};
use ocelotl_trace::{event_density_auto, MicroModel, TimeGrid, Trace};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors surfaced by the session pipeline.
#[derive(Debug)]
pub enum SessionError {
    /// The trace/model source could not be read or derived.
    Source(String),
    /// A query parameter is out of range.
    InvalidParam(String),
}

impl SessionError {
    /// Shorthand constructor for source failures.
    pub fn source(msg: impl Into<String>) -> Self {
        SessionError::Source(msg.into())
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Source(m) => write!(f, "{m}"),
            SessionError::InvalidParam(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Shared parameter check for the trade-off `p` — one message for every
/// path (session, engine preparation, server) so error replies stay
/// byte-identical wherever the check fires.
pub(crate) fn validate_p(p: f64) -> Result<(), SessionError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SessionError::InvalidParam(format!(
            "--p must lie in [0, 1], got {p}"
        )));
    }
    Ok(())
}

/// Shared parameter check for the dichotomy resolution.
pub(crate) fn validate_resolution(resolution: f64) -> Result<(), SessionError> {
    if !(resolution > 0.0 && resolution < 1.0) {
        return Err(SessionError::InvalidParam(format!(
            "--resolution must lie in (0, 1), got {resolution}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Metric
// ---------------------------------------------------------------------------

/// Which microscopic metric the pipeline aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// State-time proportions (the paper's model).
    #[default]
    States,
    /// Peak-normalized event counts (the predecessor work's model).
    Density,
}

impl Metric {
    /// Stable tag used in artifact keys.
    pub fn tag(self) -> &'static str {
        match self {
            Metric::States => "states",
            Metric::Density => "density",
        }
    }

    /// Build the microscopic model of a trace for this metric. `None` when
    /// the trace has no events to slice.
    pub fn build_model(self, trace: &Trace, n_slices: usize) -> Option<MicroModel> {
        match self {
            Metric::States => MicroModel::from_trace(trace, n_slices),
            Metric::Density => event_density_auto(trace, n_slices),
        }
    }

    /// The streaming-sink equivalent of this metric: feed a
    /// [`ModelSink`](ocelotl_trace::ModelSink) of this kind and the result
    /// is bit-identical to [`Metric::build_model`] over the materialized
    /// trace (sequential path).
    pub fn model_kind(self) -> ocelotl_trace::ModelKind {
        match self {
            Metric::States => ocelotl_trace::ModelKind::States,
            Metric::Density => ocelotl_trace::ModelKind::Density,
        }
    }
}

impl std::str::FromStr for Metric {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "states" => Ok(Metric::States),
            "density" => Ok(Metric::Density),
            other => Err(format!("unknown metric {other:?} (states|density)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// FNV-1a offset basis (the seed of every artifact key).
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a running hash.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Default artifact-store retention: how many recent keys of one kind a
/// stem keeps before garbage collection (see `ocelotl-format`'s
/// `DiskStore`). Overridable per session via [`SessionConfig::cache_keep`]
/// or the `OCELOTL_CACHE_KEEP` environment variable (wired by the CLI).
pub const DEFAULT_CACHE_KEEP: usize = 4;

/// The pipeline parameters that participate in the artifact key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// `|T|`: time slices of the microscopic model.
    pub n_slices: usize,
    /// Which microscopic metric to aggregate.
    pub metric: Metric,
    /// Requested gain/loss cube backend.
    pub memory: MemoryMode,
    /// Artifact-store GC retention (keys kept per stem and kind). This is
    /// operational policy, not content: it does **not** participate in
    /// [`SessionConfig::key`], so changing it never invalidates artifacts.
    pub cache_keep: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            n_slices: 30,
            metric: Metric::States,
            memory: MemoryMode::Auto,
            cache_keep: DEFAULT_CACHE_KEEP,
        }
    }
}

impl SessionConfig {
    /// Artifact key: hash of (trace fingerprint, slicing params, metric,
    /// backend). Any change to the inputs or parameters changes the key,
    /// which is what makes stale cache hits impossible. Retention
    /// (`cache_keep`) is deliberately excluded — it changes how many old
    /// keys survive, never which bytes a key resolves to.
    pub fn key(&self, trace_fingerprint: u64) -> u64 {
        let mut h = FNV_SEED;
        h = fnv1a(h, &trace_fingerprint.to_le_bytes());
        h = fnv1a(h, &(self.n_slices as u64).to_le_bytes());
        h = fnv1a(h, self.metric.tag().as_bytes());
        h = fnv1a(h, self.memory.tag().as_bytes());
        h
    }
}

// ---------------------------------------------------------------------------
// Model sources
// ---------------------------------------------------------------------------

/// Deterministic ingestion telemetry a [`ModelSource`] may report next to
/// the model it built — what the `Stats` query and `info --stats` surface.
/// Wall-clock timings are deliberately absent: every field is a pure
/// function of the trace bytes and the slicing parameters, so replies
/// carrying these stats are byte-identical across cold, warm and server
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Content hash of the trace bytes (equals `hash_file`).
    pub fingerprint: u64,
    /// Total bytes read from disk (both passes for two-pass ingestion).
    pub bytes_read: u64,
    /// Interval records decoded.
    pub intervals: u64,
    /// Point records decoded.
    pub points: u64,
    /// Peak resident footprint of the streaming accumulator, in bytes.
    pub peak_bytes: u64,
    /// Ingestion strategy tag (`single-pass` / `two-pass`).
    pub mode: String,
    /// Detected trace format tag (`btf` / `ptf` / `paje`, with a
    /// `+gzip` suffix for compressed inputs).
    pub format: String,
    /// Whether the input was gzip-compressed.
    pub gzip: bool,
    /// Input bytes per shard, in shard order (one entry per byte-range
    /// shard of a single file, or per file of a directory trace).
    /// Content-derived: the shard plan never depends on the worker
    /// count, so this stays deterministic.
    pub shards: Vec<u64>,
    /// Chunks in the columnar source's index (zero for non-chunked
    /// formats).
    pub chunks_total: u64,
    /// Chunks actually decoded — equals `chunks_total` for a full
    /// ingest, fewer when predicate pushdown skipped some.
    pub chunks_read: u64,
    /// Payload bytes predicate pushdown left unread on disk.
    pub bytes_skipped: u64,
}

impl IngestStats {
    /// Event count in the Table II convention (2 per interval + 1 per
    /// point).
    pub fn events(&self) -> u64 {
        self.intervals * 2 + self.points
    }
}

/// A hi-res grid reported by a [`ModelSource`] **without** ingesting the
/// trace — read from a columnar trace's header and chunk index alone. The
/// session snaps re-slice windows against it (via
/// [`snap_to_grid`](crate::hires::snap_to_grid)) so a windowed pushdown
/// ingest lands on exactly the edges a resident-grid snap would pick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushdownProbe {
    /// The trace's declared time range — the hi-res grid span.
    pub range: (f64, f64),
    /// `H`: the hi-res slice count a hi-res ingest at the requested
    /// resolution would use.
    pub hi_slices: usize,
}

/// Where the session gets its microscopic model from.
///
/// The session itself cannot read trace files (file formats live above this
/// crate), so the first pipeline stage is pluggable: the CLI supplies a
/// file-backed source, benchmarks and examples an in-memory one.
///
/// Sources must be [`Send`] + [`Sync`] so a long-lived server can host
/// sessions behind shared references and answer queries from any
/// connection thread concurrently (the `&self` read path of
/// [`AnalysisSession`]).
pub trait ModelSource: Send + Sync {
    /// Stable fingerprint of the underlying trace bytes. Two sources with
    /// the same fingerprint must describe the same trace.
    fn fingerprint(&self) -> Result<u64, SessionError>;

    /// Produce the microscopic model (the expensive cold-path stage).
    /// Sources wrapping an already-sliced model may ignore the parameters.
    fn model(&self, n_slices: usize, metric: Metric) -> Result<MicroModel, SessionError>;

    /// Produce the model plus ingestion telemetry, when the source can
    /// report it (file-backed sources fuse both into one disk pass). The
    /// default wraps [`ModelSource::model`] with no stats.
    fn model_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
    ) -> Result<(MicroModel, Option<IngestStats>), SessionError> {
        Ok((self.model(n_slices, metric)?, None))
    }

    /// Build the **super-resolution** intermediate for a requested
    /// resolution (see [`HiResModel`]): the trace sliced into
    /// `hi_res_slices(n_slices, |S|)` periods, from which the session
    /// derives this and any later compatible resolution by pure in-memory
    /// rebinning — no further trace reads.
    ///
    /// `Ok(None)` (the default) declares the source incapable of hi-res
    /// ingestion (e.g. it wraps an already-sliced model); the session then
    /// falls back to [`ModelSource::model_with_stats`] per resolution.
    fn hi_res_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
    ) -> Result<Option<(HiResModel, Option<IngestStats>)>, SessionError> {
        let _ = (n_slices, metric);
        Ok(None)
    }

    /// Report the hi-res grid a windowed ingest at `n_slices` would use,
    /// **without reading any events** — sources over chunk-indexed
    /// columnar traces answer from the header and footer alone. `Ok(None)`
    /// (the default) declares the source unable to probe; the session then
    /// materializes the full hi-res intermediate before snapping windows.
    fn pushdown_probe(
        &self,
        n_slices: usize,
        metric: Metric,
    ) -> Result<Option<PushdownProbe>, SessionError> {
        let _ = (n_slices, metric);
        Ok(None)
    }

    /// Build the hi-res intermediate restricted to the hi-res slice window
    /// `[first, first + count)`, decoding only the parts of the trace that
    /// overlap it (predicate pushdown). The returned model spans the
    /// **full** hi-res grid with zeroed cells outside the window — good
    /// for deriving windowed models, never for installing as the resident
    /// full-range intermediate. `Ok(None)` (the default) falls back to the
    /// full ingest.
    fn hi_res_window_with_stats(
        &self,
        n_slices: usize,
        metric: Metric,
        first: usize,
        count: usize,
    ) -> Result<Option<(HiResModel, Option<IngestStats>)>, SessionError> {
        let _ = (n_slices, metric, first, count);
        Ok(None)
    }
}

/// A source wrapping an already-built model (benchmarks, examples, tests).
/// The caller supplies the fingerprint — typically a hash of the trace
/// bytes the model was derived from.
pub struct OwnedSource {
    model: MicroModel,
    fingerprint: u64,
}

impl OwnedSource {
    /// Wrap a model under the given content fingerprint.
    pub fn new(model: MicroModel, fingerprint: u64) -> Self {
        Self { model, fingerprint }
    }
}

impl ModelSource for OwnedSource {
    fn fingerprint(&self) -> Result<u64, SessionError> {
        Ok(self.fingerprint)
    }

    fn model(&self, _n_slices: usize, _metric: Metric) -> Result<MicroModel, SessionError> {
        Ok(self.model.clone())
    }
}

/// The source behind a live session: there is no trace on disk yet, so
/// every model must come from the resident appendable [`HiResModel`] —
/// any attempt to fall back to a trace read is a hard, typed error.
struct LiveSource;

impl ModelSource for LiveSource {
    fn fingerprint(&self) -> Result<u64, SessionError> {
        Err(SessionError::source(
            "live sessions have no trace bytes to fingerprint",
        ))
    }

    fn model(&self, _n_slices: usize, _metric: Metric) -> Result<MicroModel, SessionError> {
        Err(SessionError::source(
            "live sessions derive every model from the resident grid",
        ))
    }
}

// ---------------------------------------------------------------------------
// Partition table
// ---------------------------------------------------------------------------

/// One memoized DP result: the optimal partition of an exact
/// `(p, tie-breaking)` query.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEntry {
    /// The trade-off parameter the DP ran at.
    pub p: f64,
    /// Whether [`DpConfig::coarse_ties`] was used.
    pub coarse: bool,
    /// The optimal partition.
    pub partition: Partition,
}

/// A complete significant-levels enumeration (see
/// [`significant_partitions`]) at one dichotomy resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct SignificantSet {
    /// The dichotomy resolution the set was computed at.
    pub resolution: f64,
    /// One entry per stability interval of `p`.
    pub entries: Vec<PEntry>,
}

/// Every DP result the session knows about: exact point queries plus (at
/// most one) significant-levels enumeration. This is what `.opart`
/// artifacts serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionTable {
    /// The significant-levels enumeration, if one was computed.
    pub significant: Option<SignificantSet>,
    /// Memoized exact-point DP results.
    pub points: Vec<PointEntry>,
}

impl PartitionTable {
    /// Exact-match lookup: the stored partition of a `(p, coarse)` query.
    /// Matching is on the *bit pattern* of `p` — a cached partition is only
    /// served for exactly the query that produced it, which is what keeps
    /// warm answers bit-identical to cold ones even at stability-interval
    /// boundaries.
    pub fn lookup(&self, p: f64, coarse: bool) -> Option<&Partition> {
        self.points
            .iter()
            .find(|e| e.p.to_bits() == p.to_bits() && e.coarse == coarse)
            .map(|e| &e.partition)
    }

    /// Record a DP result (no-op if the exact query is already present).
    pub fn insert_point(&mut self, p: f64, coarse: bool, partition: Partition) {
        if self.lookup(p, coarse).is_none() {
            self.points.push(PointEntry {
                p,
                coarse,
                partition,
            });
        }
    }

    /// The significant set, if one was computed at exactly `resolution`.
    pub fn significant_at(&self, resolution: f64) -> Option<&[PEntry]> {
        self.significant
            .as_ref()
            .filter(|s| s.resolution.to_bits() == resolution.to_bits())
            .map(|s| s.entries.as_slice())
    }
}

// ---------------------------------------------------------------------------
// Artifact stores
// ---------------------------------------------------------------------------

/// Persistence hook for the two on-disk artifacts. Implementations must be
/// best-effort: a `store_*` returning `false` (e.g. a read-only cache
/// directory) degrades the session to cold behavior, never to an error.
/// [`Send`] + [`Sync`] for the same reason as [`ModelSource`]:
/// server-hosted sessions are queried concurrently from many threads.
pub trait ArtifactStore: Send + Sync {
    /// Load the cube prefix sums stored under `key`, if present and valid.
    fn load_cube(&self, key: u64) -> Option<CubeCore>;
    /// Persist the cube prefix sums under `key`.
    fn store_cube(&self, key: u64, core: &CubeCore) -> bool;
    /// Load the partition table stored under `key`, if present and valid.
    fn load_partitions(&self, key: u64) -> Option<PartitionTable>;
    /// Persist the partition table under `key`.
    fn store_partitions(&self, key: u64, table: &PartitionTable) -> bool;
    /// Load the hi-res intermediate stored under `key` (the `.omicro`
    /// artifact: a warm session re-slices from the store without the
    /// trace). Default: always a miss, so existing stores keep compiling.
    fn load_hi_res(&self, key: u64) -> Option<HiResModel> {
        let _ = key;
        None
    }
    /// Persist the hi-res intermediate under `key`. Default: declined.
    fn store_hi_res(&self, key: u64, hi: &HiResModel) -> bool {
        let _ = (key, hi);
        false
    }
}

/// An in-process store (a keyed map). Useful for tests and for library
/// callers that want cross-session memoization without touching disk.
#[derive(Default)]
pub struct MemoryStore {
    cubes: Mutex<HashMap<u64, CubeCore>>,
    tables: Mutex<HashMap<u64, PartitionTable>>,
    hi_res: Mutex<HashMap<u64, HiResModel>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArtifactStore for MemoryStore {
    fn load_cube(&self, key: u64) -> Option<CubeCore> {
        self.cubes.lock().unwrap().get(&key).cloned()
    }
    fn store_cube(&self, key: u64, core: &CubeCore) -> bool {
        self.cubes.lock().unwrap().insert(key, core.clone());
        true
    }
    fn load_partitions(&self, key: u64) -> Option<PartitionTable> {
        self.tables.lock().unwrap().get(&key).cloned()
    }
    fn store_partitions(&self, key: u64, table: &PartitionTable) -> bool {
        self.tables.lock().unwrap().insert(key, table.clone());
        true
    }
    fn load_hi_res(&self, key: u64) -> Option<HiResModel> {
        self.hi_res.lock().unwrap().get(&key).cloned()
    }
    fn store_hi_res(&self, key: u64, hi: &HiResModel) -> bool {
        self.hi_res.lock().unwrap().insert(key, hi.clone());
        true
    }
}

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// How the session obtained its quality cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeSource {
    /// Built from the model (trace was read and sliced this session).
    Cold,
    /// Deserialized from an artifact store — the trace was never touched.
    Warm,
}

/// One zoomed re-slice window, pinned to the hi-res grid it was snapped
/// against: `[first, first + count)` hi-res slices covering the snapped
/// time range `[t0, t1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResliceWindow {
    /// First hi-res slice (inclusive).
    pub first: usize,
    /// Number of hi-res slices covered.
    pub count: usize,
    /// Snapped window start (a hi-res slice edge).
    pub t0: f64,
    /// Snapped window end (a hi-res slice edge).
    pub t1: f64,
}

/// One derived pipeline: everything downstream of the hi-res intermediate
/// for a single `(n_slices, window)` resolution. A session keeps the
/// active one plus a few recently used ones parked, so alternating
/// `--slices` queries never recompute.
///
/// The key and the partition table use interior mutability: they are the
/// only stages that grow *after* the pipeline is materialized (new DP
/// results memoize into the table), so the `&self` read path can record
/// them while the model and cube stay plainly immutable.
#[derive(Default)]
struct Derived {
    key: OnceLock<u64>,
    model: Option<MicroModel>,
    cube: Option<CubeBackend>,
    cube_source: Option<CubeSource>,
    table: RwLock<Option<PartitionTable>>,
}

/// Recently used derived pipelines kept parked besides the active one
/// (models, cubes and tables under older `--slices` values; artifacts
/// also persist in the store when one is attached).
const PARKED_KEEP: usize = 3;

/// Identity of one derived pipeline: `(n_slices, window)` where the
/// window is its hi-res slice span.
type DerivedKey = (usize, Option<(usize, usize)>);

/// The memoized pipeline: every stage computed at most once, expensive
/// artifacts persisted through an optional [`ArtifactStore`]. See the
/// module docs for the full economy.
///
/// ## Incremental re-slicing
///
/// The first trace read slices into the [`HiResModel`] super-resolution
/// intermediate, which stays resident; the model at the session's
/// `n_slices` is derived from it by pure rebinning. A later
/// [`AnalysisSession::reslice`] to any resolution the resident grid
/// [`serves`](HiResModel::serves) — or any resolution with a warm
/// `.omicro`/`.ocube` artifact — therefore performs **zero trace disk
/// reads**, and is bit-identical to a fresh ingest at that resolution
/// (see the `hires` module docs for why).
pub struct AnalysisSession {
    config: SessionConfig,
    source: Box<dyn ModelSource>,
    store: Option<Box<dyn ArtifactStore>>,
    fingerprint: OnceLock<u64>,
    hi_res: Option<HiResModel>,
    ingest: Option<IngestStats>,
    window: Option<ResliceWindow>,
    active: Derived,
    parked: Vec<(DerivedKey, Derived)>,
    source_reads: usize,
    /// An ingestion-telemetry probe already ran (successfully or not):
    /// sources that report no stats are not asked again and again.
    stats_probed: bool,
    dp_runs: AtomicUsize,
    /// Live sessions own their (appendable) hi-res grid and never fall
    /// back to a trace read; see [`AnalysisSession::live`].
    live: bool,
    /// Interval events appended so far ([`AnalysisSession::advance`]).
    live_events: u64,
    /// Bumped on every [`AnalysisSession::advance`] that changed a cell
    /// or grew the grid.
    generation: u64,
}

impl AnalysisSession {
    /// A session over `source` with the given pipeline parameters and no
    /// persistence (in-memory memoization only).
    pub fn new(source: impl ModelSource + 'static, config: SessionConfig) -> Self {
        Self {
            config,
            source: Box::new(source),
            store: None,
            fingerprint: OnceLock::new(),
            hi_res: None,
            ingest: None,
            window: None,
            active: Derived::default(),
            parked: Vec::new(),
            source_reads: 0,
            stats_probed: false,
            dp_runs: AtomicUsize::new(0),
            live: false,
            live_events: 0,
            generation: 0,
        }
    }

    /// A **live** session over an appendable resident grid: `hi_res` is an
    /// (initially empty) [`HiResModel`] whose grid declares the expected
    /// horizon, and [`AnalysisSession::advance`] feeds it interval events
    /// as they happen. Live sessions have no trace and no artifact store;
    /// every model is derived from the resident grid by
    /// [`HiResModel::derive_at`], so any `n_slices` dividing the (possibly
    /// grown) grid is servable — and on an ungrown grid the derived model
    /// is bit-identical to what a post-mortem ingest of the same events
    /// over the same declared range would produce.
    pub fn live(config: SessionConfig, hi_res: HiResModel) -> Result<Self, SessionError> {
        if hi_res.metric() != config.metric {
            return Err(SessionError::InvalidParam(
                "live grid metric does not match the session config".into(),
            ));
        }
        if !hi_res.n_slices().is_multiple_of(config.n_slices.max(1)) || config.n_slices < 1 {
            return Err(SessionError::InvalidParam(format!(
                "--slices {} does not divide the live grid's {} periods",
                config.n_slices,
                hi_res.n_slices()
            )));
        }
        let mut s = Self::new(LiveSource, config);
        s.hi_res = Some(hi_res);
        s.live = true;
        Ok(s)
    }

    /// Attach an artifact store (builder style).
    pub fn with_store(mut self, store: impl ArtifactStore + 'static) -> Self {
        self.store = Some(Box::new(store));
        self
    }

    /// The pipeline parameters (the `n_slices` field tracks the *active*
    /// resolution across [`AnalysisSession::reslice`] calls).
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The content-addressed artifact key of the active resolution
    /// (fingerprint computed once per session, shared across threads).
    pub fn key(&self) -> Result<u64, SessionError> {
        if let Some(k) = self.active.key.get() {
            return Ok(*k);
        }
        let fp = self.fingerprint()?;
        Ok(*self.active.key.get_or_init(|| self.config.key(fp)))
    }

    fn fingerprint(&self) -> Result<u64, SessionError> {
        if let Some(fp) = self.fingerprint.get() {
            return Ok(*fp);
        }
        let fp = self.source.fingerprint()?;
        Ok(*self.fingerprint.get_or_init(|| fp))
    }

    /// Key of the `.omicro` hi-res artifact: hashes the trace fingerprint
    /// and the metric, **not** `n_slices` — one hi-res intermediate serves
    /// every resolution in its dyadic family, so all of them must find it.
    fn hi_key(&self) -> Result<u64, SessionError> {
        let fp = self.fingerprint()?;
        let mut h = FNV_SEED;
        h = fnv1a(h, &fp.to_le_bytes());
        h = fnv1a(h, b"omicro");
        h = fnv1a(h, self.config.metric.tag().as_bytes());
        Ok(h)
    }

    /// How the cube was obtained, once [`AnalysisSession::cube`] ran.
    pub fn cube_source(&self) -> Option<CubeSource> {
        self.active.cube_source
    }

    /// Number of DP (Algorithm 1 / dichotomy) invocations this session —
    /// zero for a fully warm session answering cached queries.
    pub fn dp_runs(&self) -> usize {
        self.dp_runs.load(Ordering::Relaxed)
    }

    /// Number of times the session asked its [`ModelSource`] to read the
    /// underlying trace (hi-res or direct). Stays at its pre-`reslice`
    /// value across any `--slices` change the resident hi-res model or a
    /// warm artifact can serve — the property the re-slice test suite
    /// pins.
    pub fn source_reads(&self) -> usize {
        self.source_reads
    }

    /// The resident hi-res intermediate's slice count, when one was
    /// materialized this session.
    pub fn hi_res_slices(&self) -> Option<usize> {
        self.hi_res.as_ref().map(|h| h.n_slices())
    }

    /// The active zoom window (snapped to the hi-res grid), if any.
    pub fn window(&self) -> Option<(f64, f64)> {
        self.window.map(|w| (w.t0, w.t1))
    }

    /// Whether this is a live (appendable) session.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Interval events appended so far (live sessions only).
    pub fn live_events(&self) -> u64 {
        self.live_events
    }

    /// Monotonic change counter: bumped by every
    /// [`AnalysisSession::advance`] that touched a cell or grew the grid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append a batch of interval events to the live grid and invalidate
    /// exactly the derived pipelines whose hi-res windows the new
    /// contributions touch: full-grid pipelines whenever anything landed,
    /// windowed pipelines only when the batch's touched slice range
    /// intersects theirs. Growth appends whole periods of the same slice
    /// width (in multiples of the session's `n_slices`, so the active
    /// resolution keeps dividing the grid), which leaves every untouched
    /// window's time range — and therefore its derived cells — unchanged.
    pub fn advance(&mut self, events: &[LiveEvent]) -> Result<AppendOutcome, SessionError> {
        if !self.live {
            return Err(SessionError::InvalidParam(
                "advance is only valid on a live session".into(),
            ));
        }
        let hi = self
            .hi_res
            .as_mut()
            .ok_or_else(|| SessionError::source("live session lost its resident grid"))?;
        let outcome = hi
            .append(events, self.config.n_slices)
            .map_err(|e| SessionError::Source(format!("append refused: {e}")))?;
        self.live_events += events.len() as u64;
        let Some((lo, hi_slice)) = outcome.touched else {
            return Ok(outcome);
        };
        self.generation += 1;
        let stale = |win: Option<(usize, usize)>| match win {
            // Full-grid pipelines see every new contribution.
            None => true,
            Some((first, count)) => first <= hi_slice && lo < first + count,
        };
        if stale(self.window.map(|w| (w.first, w.count))) {
            self.active = Derived::default();
        }
        self.parked.retain(|((_, win), _)| !stale(*win));
        Ok(outcome)
    }

    /// Whether the artifact store applies to the active derived pipeline:
    /// zoomed windows are in-memory only (their grids are not addressed
    /// by the `(trace, n_slices)` key space).
    fn store_active(&self) -> bool {
        self.store.is_some() && self.window.is_none()
    }

    /// The read-free half of [`AnalysisSession::ensure_hi_res`]: `true`
    /// when a hi-res intermediate able to serve `n` is resident after the
    /// call without any trace read (it already was, or a warm `.omicro`
    /// loaded from the store).
    fn warm_hi_res(&mut self, n: usize) -> Result<bool, SessionError> {
        if self.hi_res.as_ref().is_some_and(|h| h.serves(n)) {
            return Ok(true);
        }
        if let Some(store) = self.store.as_ref() {
            let key = self.hi_key()?;
            if let Some(h) = store.load_hi_res(key) {
                if h.metric() == self.config.metric && h.serves(n) {
                    self.hi_res = Some(h);
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Make a hi-res intermediate able to serve `n` resident, touching the
    /// trace only as a last resort: resident → warm `.omicro` → ingest.
    /// Leaves `hi_res` untouched when the source is not hi-res-capable.
    fn ensure_hi_res(&mut self, n: usize) -> Result<(), SessionError> {
        if self.warm_hi_res(n)? {
            return Ok(());
        }
        if let Some((h, stats)) = self.source.hi_res_with_stats(n, self.config.metric)? {
            self.source_reads += 1;
            self.stats_probed = true;
            if stats.is_some() {
                self.ingest = stats;
            }
            // Install (and persist) the fresh intermediate only when it
            // actually serves `n`: in the narrow regime where it cannot
            // (cell-budget clamp + density pseudo-states, see
            // `HiResModel::serves`), keeping a previously serving
            // resident is strictly better than displacing it with a grid
            // that serves nothing.
            if h.serves(n) {
                if let Some(store) = self.store.as_ref() {
                    let key = self.hi_key()?;
                    store.store_hi_res(key, &h);
                }
                self.hi_res = Some(h);
            } else if self.hi_res.is_none() {
                self.hi_res = Some(h);
            }
        }
        Ok(())
    }

    fn ensure_model(&mut self) -> Result<(), SessionError> {
        if self.active.model.is_some() {
            return Ok(());
        }
        let n = self.config.n_slices;
        if let Some(w) = self.window {
            // Windowed pipelines: the resident grid serves for free; a
            // source that can push the window down to the trace format
            // (columnar chunk skipping) reads only the overlapping
            // chunks; otherwise the full hi-res ingest.
            if self.hi_res.is_none() {
                if let Some((h, stats)) =
                    self.source
                        .hi_res_window_with_stats(n, self.config.metric, w.first, w.count)?
                {
                    self.source_reads += 1;
                    self.stats_probed = true;
                    if stats.is_some() {
                        self.ingest = stats;
                    }
                    // The pushdown model's cells outside the window are
                    // zeros, so it only ever backs this derivation —
                    // deliberately NOT installed as `self.hi_res`.
                    let model = h.derive_window(w.first, w.count, n).ok_or_else(|| {
                        SessionError::InvalidParam(
                            "re-slice window no longer aligns with the resident hi-res grid".into(),
                        )
                    })?;
                    self.active.model = Some(model);
                    return Ok(());
                }
                self.ensure_hi_res(n)?;
            }
            let hi = self.hi_res.as_ref().ok_or_else(|| {
                SessionError::InvalidParam(
                    "this model source cannot re-slice into a time window".into(),
                )
            })?;
            let model = hi.derive_window(w.first, w.count, n).ok_or_else(|| {
                SessionError::InvalidParam(
                    "re-slice window no longer aligns with the resident hi-res grid".into(),
                )
            })?;
            self.active.model = Some(model);
            return Ok(());
        }
        self.ensure_hi_res(n)?;
        if let Some(h) = &self.hi_res {
            if let Some(model) = h.derive(n) {
                self.active.model = Some(model);
                return Ok(());
            }
            if self.live {
                // Live sessions own their grid: once it has grown past the
                // declared horizon, `H` leaves the dyadic fresh-ingest
                // family, but any divisor of the live grid is still the
                // exact left-to-right rebin — and there is no trace to
                // fall back to.
                let model = h.derive_at(n).ok_or_else(|| {
                    SessionError::InvalidParam(format!(
                        "--slices {n} does not divide the live grid's {} periods",
                        h.n_slices()
                    ))
                })?;
                self.active.model = Some(model);
                return Ok(());
            }
        }
        // Sources without a hi-res intermediate (already-sliced models,
        // `.omm` caches): the classic per-resolution direct build.
        let (model, stats) = self.source.model_with_stats(n, self.config.metric)?;
        self.source_reads += 1;
        self.stats_probed = true;
        if stats.is_some() {
            self.ingest = stats;
        }
        self.active.model = Some(model);
        Ok(())
    }

    /// Ingestion telemetry, when the source reports it. Forces a trace
    /// read the first time (every field is a pure function of the trace
    /// bytes and the slicing parameters, so warm and cold sessions report
    /// identical stats); memoized afterwards — including the "this source
    /// reports no telemetry" answer, so a stats-less source is never
    /// re-read.
    pub fn ingest_stats(&mut self) -> Result<Option<&IngestStats>, SessionError> {
        self.ensure_model()?;
        if self.ingest.is_none() && !self.stats_probed {
            // A fully warm session derived its model without a trace read;
            // the Stats query's whole point is measuring ingestion, so run
            // the (deterministic) hi-res ingest now.
            self.stats_probed = true;
            if let Some((h, stats)) = self
                .source
                .hi_res_with_stats(self.config.n_slices, self.config.metric)?
            {
                self.source_reads += 1;
                self.ingest = stats;
                if self.hi_res.is_none() {
                    self.hi_res = Some(h);
                }
            }
        }
        Ok(self.ingest.as_ref())
    }

    /// The microscopic model at the active resolution. **Cold-path only**
    /// when no hi-res intermediate or `.omicro` artifact can serve it:
    /// commands should prefer [`AnalysisSession::cube`] /
    /// [`AnalysisSession::grid`] whenever the query can be answered from
    /// the cube alone.
    pub fn model(&mut self) -> Result<&MicroModel, SessionError> {
        self.ensure_model()?;
        Ok(self.active.model.as_ref().unwrap())
    }

    /// Switch the session to a new slicing resolution, optionally zooming
    /// into a time window (snapped to the hi-res grid).
    ///
    /// The old resolution's derived model and partition-table memos are
    /// parked, not discarded: switching back re-serves cached partitions
    /// with zero DP runs and zero reads (the cube — the memory-heavy
    /// stage — is released on park and rebuilt from the parked model or
    /// a warm `.ocube` on demand). The
    /// new resolution's model is derived from the resident [`HiResModel`]
    /// with **zero trace reads** whenever the hi-res grid
    /// [`serves`](HiResModel::serves) it (or a warm `.omicro`/`.ocube`
    /// artifact covers it); otherwise the next query re-ingests at the
    /// new resolution's own hi-res grid.
    ///
    /// Windowed re-slices are eagerly materialized (pinning them to the
    /// hi-res grid they were snapped against), bypass the artifact store,
    /// and are not parked — revisiting a window re-snaps it against the
    /// *current* hi-res grid, so a replaced grid can never serve a stale
    /// time range.
    pub fn reslice(
        &mut self,
        n_slices: usize,
        window: Option<(f64, f64)>,
    ) -> Result<(), SessionError> {
        if n_slices < 1 {
            return Err(SessionError::InvalidParam(
                "--slices must be at least 1".into(),
            ));
        }
        let win = match window {
            None => None,
            Some((t0, t1)) => {
                if !(t0.is_finite() && t1.is_finite() && t1 > t0) {
                    return Err(SessionError::InvalidParam(format!(
                        "re-slice window must be a finite, non-empty range (got [{t0}, {t1}])"
                    )));
                }
                // Pick the grid to snap against, cheapest first: a
                // resident (or warm `.omicro`) intermediate costs nothing;
                // a pushdown-capable source reports its grid from the
                // chunk index without decoding a single event; only a
                // source with neither pays the full hi-res ingest here.
                let probe = if self.hi_res.is_none() && !self.warm_hi_res(n_slices)? {
                    self.source.pushdown_probe(n_slices, self.config.metric)?
                } else {
                    None
                };
                let (range, h) = match probe {
                    Some(pb) => (pb.range, pb.hi_slices),
                    None => {
                        self.ensure_hi_res(n_slices)?;
                        let hi = self.hi_res.as_ref().ok_or_else(|| {
                            SessionError::InvalidParam(
                                "this model source cannot re-slice into a time window".into(),
                            )
                        })?;
                        let grid = hi.raw().grid();
                        ((grid.start(), grid.end()), hi.n_slices())
                    }
                };
                let (first, count) =
                    crate::hires::snap_to_grid(range, h, t0, t1).ok_or_else(|| {
                        SessionError::InvalidParam(format!(
                            "window [{t0}, {t1}] lies outside the trace or collapses on the \
                             hi-res grid"
                        ))
                    })?;
                if count % n_slices != 0 {
                    return Err(SessionError::InvalidParam(format!(
                        "window spans {count} hi-res slices, not divisible into {n_slices} \
                         equal bins (pick a divisor of {count})"
                    )));
                }
                let grid = TimeGrid::new(range.0, range.1, h);
                let (w0, _) = grid.slice_bounds(first);
                let (_, w1) = grid.slice_bounds(first + count - 1);
                Some(ResliceWindow {
                    first,
                    count,
                    t0: w0,
                    t1: w1,
                })
            }
        };
        let win_key = win.map(|w| (w.first, w.count));
        let active_key = (
            self.config.n_slices,
            self.window.map(|w| (w.first, w.count)),
        );
        let new_key = (n_slices, win_key);
        if new_key != active_key {
            let target = self
                .parked
                .iter()
                .position(|(k, _)| *k == new_key)
                .map(|i| self.parked.remove(i).1)
                .unwrap_or_default();
            let mut old = std::mem::replace(&mut self.active, target);
            // Only full-grid pipelines are parked for reuse. A windowed
            // pipeline's identity includes the hi-res grid it was snapped
            // against, and a later re-slice may have replaced that grid —
            // restoring it could silently serve a different time range, so
            // windowed pipelines are re-derived (cheap, in-memory) instead.
            if self.window.is_none() {
                // The cube is the memory-heavy stage (a dense backend can
                // be O(|S||T|²), up to a GiB): parked pipelines keep the
                // model and the partition-table memos (so cached queries
                // stay zero-DP) but release the cube — it rebuilds
                // deterministically from the parked model, or reloads
                // from a warm `.ocube`, on revisit.
                old.cube = None;
                old.cube_source = None;
                self.parked.push((active_key, old));
                if self.parked.len() > PARKED_KEEP {
                    self.parked.remove(0);
                }
            }
            self.config.n_slices = n_slices;
            self.window = win;
        }
        if self.window.is_some() {
            // Pin the windowed model to the grid it was snapped against.
            self.ensure_model()?;
        }
        Ok(())
    }

    fn ensure_cube(&mut self) -> Result<(), SessionError> {
        if self.active.cube.is_some() {
            return Ok(());
        }
        // The key hashes the trace bytes, so it is only computed when a
        // store could actually serve or receive artifacts — a store-less
        // session goes straight to the (single-pass) model build without
        // a separate fingerprint read.
        if self.store_active() {
            let key = self.key()?;
            let store = self.store.as_ref().unwrap();
            if let Some(core) = store.load_cube(key) {
                self.active.cube = Some(CubeBackend::from_core(core, self.config.memory));
                self.active.cube_source = Some(CubeSource::Warm);
                return Ok(());
            }
        }
        self.ensure_model()?;
        let core = CubeCore::build(self.active.model.as_ref().unwrap());
        if self.store_active() {
            let key = self.key()?;
            self.store.as_ref().unwrap().store_cube(key, &core);
        }
        self.active.cube = Some(CubeBackend::from_core(core, self.config.memory));
        self.active.cube_source = Some(CubeSource::Cold);
        Ok(())
    }

    /// The gain/loss quality cube (built or loaded on first use).
    pub fn cube(&mut self) -> Result<&CubeBackend, SessionError> {
        self.ensure_cube()?;
        Ok(self.active.cube.as_ref().unwrap())
    }

    /// The cube, only if a previous call already materialized it — never
    /// triggers a build or a store lookup.
    pub fn cube_if_built(&self) -> Option<&CubeBackend> {
        self.active.cube.as_ref()
    }

    /// The model, only if a previous call already built it.
    pub fn model_if_built(&self) -> Option<&MicroModel> {
        self.active.model.as_ref()
    }

    /// Load the cube from the artifact store if (and only if) a warm
    /// `.ocube` exists — never builds from the model. `None` on a store
    /// miss or a store-less session. Lets dimension-only queries
    /// (`Describe`, `Stats`) answer warm without a trace read and cold
    /// without paying for a cube they do not need.
    pub fn try_warm_cube(&mut self) -> Result<Option<&CubeBackend>, SessionError> {
        if self.active.cube.is_none() && self.store_active() {
            let key = self.key()?;
            if let Some(core) = self.store.as_ref().unwrap().load_cube(key) {
                self.active.cube = Some(CubeBackend::from_core(core, self.config.memory));
                self.active.cube_source = Some(CubeSource::Warm);
            }
        }
        Ok(self.active.cube.as_ref())
    }

    /// Both the model and the cube (for queries that genuinely need raw
    /// microscopic data next to the cube, like the §III.D baselines).
    pub fn model_and_cube(&mut self) -> Result<(&MicroModel, &CubeBackend), SessionError> {
        self.ensure_cube()?;
        self.ensure_model()?;
        Ok((
            self.active.model.as_ref().unwrap(),
            self.active.cube.as_ref().unwrap(),
        ))
    }

    /// The time grid, answered from the cube (no trace read when warm).
    pub fn grid(&mut self) -> Result<TimeGrid, SessionError> {
        self.ensure_cube()?;
        Ok(*self.active.cube.as_ref().unwrap().core().grid())
    }

    fn ensure_table(&mut self) -> Result<(), SessionError> {
        if self.active.table.get_mut().unwrap().is_some() {
            return Ok(());
        }
        let loaded = if self.store_active() {
            let key = self.key()?;
            self.store
                .as_ref()
                .unwrap()
                .load_partitions(key)
                .unwrap_or_default()
        } else {
            PartitionTable::default()
        };
        *self.active.table.get_mut().unwrap() = Some(loaded);
        Ok(())
    }

    fn persist_table(&self) -> Result<(), SessionError> {
        if !self.store_active() {
            return Ok(());
        }
        // Memoized key: re-fingerprinting here would re-hash the whole
        // trace on every newly recorded DP result.
        let key = self.key()?;
        if let Some(store) = &self.store {
            let guard = self.active.table.read().unwrap();
            if let Some(table) = guard.as_ref() {
                store.store_partitions(key, table);
            }
        }
        Ok(())
    }

    fn dp_config(&self, coarse: bool) -> DpConfig {
        if coarse {
            DpConfig::coarse_ties()
        } else {
            DpConfig::default()
        }
    }

    /// Materialize everything the `&self` read path needs — the partition
    /// table and the cube — so subsequent [`AnalysisSession::partition_shared`] /
    /// [`AnalysisSession::significant_shared`] calls can answer any point
    /// query from a shared reference. This is what a server runs once,
    /// under its build budget, before publishing the session to readers.
    pub fn prepare(&mut self) -> Result<(), SessionError> {
        self.ensure_table()?;
        self.ensure_cube()?;
        Ok(())
    }

    /// Like [`AnalysisSession::prepare`], but for queries that only need
    /// the significant-`p` boundary values: a table warm at `resolution`
    /// (e.g. from a `.opart` artifact) skips the cube build entirely.
    pub fn prepare_points(&mut self, resolution: f64) -> Result<(), SessionError> {
        validate_resolution(resolution)?;
        self.ensure_table()?;
        let warm = self
            .active
            .table
            .get_mut()
            .unwrap()
            .as_ref()
            .unwrap()
            .significant_at(resolution)
            .is_some();
        if !warm {
            self.ensure_cube()?;
        }
        Ok(())
    }

    /// The time grid, if a previous call already materialized the cube.
    pub fn grid_if_built(&self) -> Option<TimeGrid> {
        self.active.cube.as_ref().map(|c| *c.core().grid())
    }

    /// Ingestion telemetry **without** forcing a trace read: `None` when
    /// no probe ran yet (the caller must fall back to
    /// [`AnalysisSession::ingest_stats`]), `Some(None)` when a probe ran
    /// and the source reports no telemetry, `Some(Some(_))` when stats are
    /// resident.
    pub fn ingest_stats_cached(&self) -> Option<Option<&IngestStats>> {
        match (&self.ingest, self.stats_probed) {
            (Some(s), _) => Some(Some(s)),
            (None, true) => Some(None),
            (None, false) => None,
        }
    }

    /// The optimal partition at trade-off `p` (Algorithm 1), memoized.
    ///
    /// A cached result (same `p` bit pattern, same tie-breaking) is served
    /// without running the DP; otherwise the DP runs on the (possibly
    /// warm) cube and the result is recorded in the table and persisted.
    pub fn partition_at(&mut self, p: f64, coarse: bool) -> Result<Partition, SessionError> {
        validate_p(p)?;
        self.ensure_table()?;
        if let Some(part) = self
            .active
            .table
            .get_mut()
            .unwrap()
            .as_ref()
            .unwrap()
            .lookup(p, coarse)
        {
            return Ok(part.clone());
        }
        self.ensure_cube()?;
        self.partition_shared(p, coarse)?
            .ok_or_else(|| SessionError::source("internal: prepared pipeline missed a point query"))
    }

    /// The `&self` twin of [`AnalysisSession::partition_at`], for sessions
    /// already [`prepared`](AnalysisSession::prepare): serves the memo or
    /// runs the DP on the resident cube, recording the result through the
    /// table lock. Returns `Ok(None)` when the table or cube is not
    /// materialized yet — the caller must fall back to the `&mut` path.
    ///
    /// Concurrent callers racing on the same fresh `(p, tie-breaking)`
    /// query may each run the (deterministic) DP; the table keeps exactly
    /// one copy of the identical result.
    pub fn partition_shared(
        &self,
        p: f64,
        coarse: bool,
    ) -> Result<Option<Partition>, SessionError> {
        validate_p(p)?;
        {
            let guard = self.active.table.read().unwrap();
            match guard.as_ref() {
                None => return Ok(None),
                Some(table) => {
                    if let Some(part) = table.lookup(p, coarse) {
                        return Ok(Some(part.clone()));
                    }
                }
            }
        }
        let Some(cube) = self.active.cube.as_ref() else {
            return Ok(None);
        };
        let tree = aggregate(cube, p, &self.dp_config(coarse));
        let partition = tree.partition(cube);
        self.dp_runs.fetch_add(1, Ordering::Relaxed);
        self.active
            .table
            .write()
            .unwrap()
            .as_mut()
            .unwrap()
            .insert_point(p, coarse, partition.clone());
        self.persist_table()?;
        Ok(Some(partition))
    }

    /// All significant trade-off levels (the Ocelotl slider stops),
    /// memoized at the given dichotomy resolution. A table loaded from a
    /// `.opart` artifact answers this with **zero** DP runs.
    pub fn significant(&mut self, resolution: f64) -> Result<Vec<PEntry>, SessionError> {
        validate_resolution(resolution)?;
        self.ensure_table()?;
        if let Some(entries) = self
            .active
            .table
            .get_mut()
            .unwrap()
            .as_ref()
            .unwrap()
            .significant_at(resolution)
        {
            return Ok(entries.to_vec());
        }
        self.ensure_cube()?;
        self.significant_shared(resolution)?
            .ok_or_else(|| SessionError::source("internal: prepared pipeline missed a level query"))
    }

    /// The `&self` twin of [`AnalysisSession::significant`] (see
    /// [`AnalysisSession::partition_shared`] for the contract).
    pub fn significant_shared(&self, resolution: f64) -> Result<Option<Vec<PEntry>>, SessionError> {
        validate_resolution(resolution)?;
        {
            let guard = self.active.table.read().unwrap();
            match guard.as_ref() {
                None => return Ok(None),
                Some(table) => {
                    if let Some(entries) = table.significant_at(resolution) {
                        return Ok(Some(entries.to_vec()));
                    }
                }
            }
        }
        let Some(cube) = self.active.cube.as_ref() else {
            return Ok(None);
        };
        let entries = significant_partitions(cube, &DpConfig::default(), resolution);
        self.dp_runs.fetch_add(1, Ordering::Relaxed);
        self.active
            .table
            .write()
            .unwrap()
            .as_mut()
            .unwrap()
            .significant = Some(SignificantSet {
            resolution,
            entries: entries.clone(),
        });
        self.persist_table()?;
        Ok(Some(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelotl_trace::synthetic::{fig3_model, random_model};

    fn session_over(model: MicroModel, fp: u64) -> AnalysisSession {
        let n_slices = model.n_slices();
        AnalysisSession::new(
            OwnedSource::new(model, fp),
            SessionConfig {
                n_slices,
                ..SessionConfig::default()
            },
        )
    }

    fn fresh_live(n_slices: usize) -> Result<AnalysisSession, SessionError> {
        use ocelotl_trace::{Hierarchy, StateRegistry, TimeGrid};
        let raw = MicroModel::from_dense(
            Hierarchy::flat(2, "p"),
            StateRegistry::from_names(["A", "B"]),
            TimeGrid::new(0.0, 8.0, 4096),
            vec![0.0; 2 * 2 * 4096],
        );
        AnalysisSession::live(
            SessionConfig {
                n_slices,
                ..SessionConfig::default()
            },
            crate::hires::HiResModel::new(Metric::States, raw),
        )
    }

    #[test]
    fn live_sessions_advance_and_grow_in_resolution_multiples() {
        use ocelotl_trace::{LeafId, StateId};
        let mut s = fresh_live(4).unwrap();
        assert!(s.is_live());
        assert_eq!((s.live_events(), s.generation()), (0, 0));

        s.advance(&[(LeafId(0), StateId(0), 0.0, 2.0)]).unwrap();
        assert_eq!((s.live_events(), s.generation()), (1, 1));
        // The derived model reflects the fold: slice width is 2.0, so the
        // interval fills slice 0 of leaf 0 exactly.
        assert_eq!(s.model().unwrap().duration(LeafId(0), StateId(0), 0), 2.0);

        // A later batch invalidates and re-derives the full-grid model.
        s.advance(&[(LeafId(1), StateId(1), 2.0, 4.0)]).unwrap();
        assert_eq!(s.model().unwrap().duration(LeafId(1), StateId(1), 1), 2.0);

        // An empty batch touches nothing.
        let g = s.generation();
        s.advance(&[]).unwrap();
        assert_eq!(s.generation(), g);

        // Growth: an event past the horizon appends whole periods in
        // multiples of the active resolution, so derive_at keeps working.
        s.advance(&[(LeafId(0), StateId(0), 9.0, 10.0)]).unwrap();
        let h = s.hi_res_slices().unwrap();
        assert!(h > 4096, "the grid must have grown");
        assert_eq!(h % 4, 0, "growth quantum preserves n | H");
        let m = s.model().unwrap();
        assert_eq!(m.n_slices(), 4);
        assert!(m.grid().end() > 10.0, "grown end strictly covers the event");
    }

    #[test]
    fn live_construction_and_advance_are_validated() {
        use ocelotl_trace::{Hierarchy, StateRegistry, TimeGrid};
        // A resolution that does not divide the grid is refused up front.
        assert!(fresh_live(3).is_err());
        assert!(fresh_live(0).is_err());
        // Metric mismatch between config and grid is refused.
        let raw = MicroModel::from_dense(
            Hierarchy::flat(2, "p"),
            StateRegistry::from_names(["A", "B"]),
            TimeGrid::new(0.0, 8.0, 4096),
            vec![0.0; 2 * 2 * 4096],
        );
        assert!(AnalysisSession::live(
            SessionConfig {
                n_slices: 4,
                metric: Metric::Density,
                ..SessionConfig::default()
            },
            crate::hires::HiResModel::new(Metric::States, raw),
        )
        .is_err());
        // advance is live-only.
        let mut plain = session_over(fig3_model(), 1);
        assert!(plain.advance(&[]).is_err());
        // A refused append leaves the session's counters untouched.
        let mut live = fresh_live(4).unwrap();
        use ocelotl_trace::{LeafId, StateId};
        assert!(live.advance(&[(LeafId(9), StateId(0), 0.0, 1.0)]).is_err());
        assert_eq!((live.live_events(), live.generation()), (0, 0));
    }

    #[test]
    fn advance_invalidates_only_windows_the_batch_touches() {
        use ocelotl_trace::{LeafId, StateId};
        let mut s = fresh_live(4).unwrap();
        s.advance(&[(LeafId(0), StateId(0), 0.0, 8.0)]).unwrap();
        // Zoom into the first half and derive its model.
        s.reslice(4, Some((0.0, 4.0))).unwrap();
        assert!(s.window().is_some());
        s.model().unwrap();
        assert!(s.model_if_built().is_some());
        // An append entirely in the second half leaves the window's
        // derived pipeline resident …
        s.advance(&[(LeafId(1), StateId(0), 5.0, 6.0)]).unwrap();
        assert!(
            s.model_if_built().is_some(),
            "untouched window must stay warm"
        );
        // … and an append into the window drops it.
        s.advance(&[(LeafId(1), StateId(0), 1.0, 2.0)]).unwrap();
        assert!(
            s.model_if_built().is_none(),
            "touched window must be invalidated"
        );
        // It re-derives on demand, reflecting the new event: [1.0, 2.0]
        // fills windowed slice 1 (width 1.0) exactly.
        assert_eq!(s.model().unwrap().duration(LeafId(1), StateId(0), 1), 1.0);
    }

    #[test]
    fn repeated_queries_run_one_dp() {
        let mut s = session_over(fig3_model(), 1);
        let a = s.partition_at(0.5, false).unwrap();
        let b = s.partition_at(0.5, false).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.dp_runs(), 1, "second query must come from the memo");
        // A different tie-breaking is a different query.
        let _ = s.partition_at(0.5, true).unwrap();
        assert_eq!(s.dp_runs(), 2);
    }

    #[test]
    fn key_changes_with_every_parameter() {
        let base = SessionConfig::default();
        let k0 = base.key(7);
        assert_ne!(k0, base.key(8), "fingerprint must change the key");
        assert_ne!(
            k0,
            SessionConfig {
                n_slices: 31,
                ..base
            }
            .key(7)
        );
        assert_ne!(
            k0,
            SessionConfig {
                metric: Metric::Density,
                ..base
            }
            .key(7)
        );
        assert_ne!(
            k0,
            SessionConfig {
                memory: MemoryMode::Lazy,
                ..base
            }
            .key(7)
        );
        // And it is deterministic.
        assert_eq!(k0, SessionConfig::default().key(7));
    }

    #[test]
    fn memory_store_warms_a_second_session() {
        use std::sync::Arc;
        // Arc<MemoryStore> shared across sessions.
        struct Shared(Arc<MemoryStore>);
        impl ArtifactStore for Shared {
            fn load_cube(&self, key: u64) -> Option<CubeCore> {
                self.0.load_cube(key)
            }
            fn store_cube(&self, key: u64, core: &CubeCore) -> bool {
                self.0.store_cube(key, core)
            }
            fn load_partitions(&self, key: u64) -> Option<PartitionTable> {
                self.0.load_partitions(key)
            }
            fn store_partitions(&self, key: u64, table: &PartitionTable) -> bool {
                self.0.store_partitions(key, table)
            }
        }

        let store = Arc::new(MemoryStore::new());
        let model = random_model(&[3, 2, 2], 11, 3, 99);

        let mut cold = session_over(model.clone(), 42).with_store(Shared(store.clone()));
        let cold_part = cold.partition_at(0.4, false).unwrap();
        let cold_levels = cold.significant(1e-2).unwrap();
        assert_eq!(cold.cube_source(), Some(CubeSource::Cold));
        assert!(cold.dp_runs() >= 2);

        let mut warm = session_over(model, 42).with_store(Shared(store));
        let warm_part = warm.partition_at(0.4, false).unwrap();
        let warm_levels = warm.significant(1e-2).unwrap();
        // Cached queries never even built the cube; forcing it must hit
        // the store, not the model.
        assert_eq!(warm.cube_source(), None);
        warm.cube().unwrap();
        assert_eq!(warm.cube_source(), Some(CubeSource::Warm));
        assert_eq!(warm.dp_runs(), 0, "fully warm session runs no DP");
        assert_eq!(cold_part, warm_part);
        assert_eq!(cold_levels.len(), warm_levels.len());
        for (a, b) in cold_levels.iter().zip(&warm_levels) {
            assert_eq!(a.partition, b.partition);
            assert_eq!(a.p_low.to_bits(), b.p_low.to_bits());
            assert_eq!(a.p_high.to_bits(), b.p_high.to_bits());
        }
    }

    #[test]
    fn different_fingerprint_misses_the_store() {
        let store = MemoryStore::new();
        let model = random_model(&[2, 2], 6, 2, 5);
        let key_a = SessionConfig::default().key(1);
        store.store_cube(key_a, &CubeCore::build(&model));
        // A session over fingerprint 2 must not see fingerprint 1's cube.
        let mut s = AnalysisSession::new(
            OwnedSource::new(model, 2),
            SessionConfig {
                n_slices: 6,
                ..SessionConfig::default()
            },
        )
        .with_store(store);
        s.cube().unwrap();
        assert_eq!(s.cube_source(), Some(CubeSource::Cold));
    }

    #[test]
    fn storeless_session_never_fingerprints() {
        // Without an artifact store there is no key to compute, so the
        // source must never be asked for its fingerprint — that is what
        // makes the default CLI cold path a single disk pass.
        struct NoFingerprint(MicroModel);
        impl ModelSource for NoFingerprint {
            fn fingerprint(&self) -> Result<u64, SessionError> {
                panic!("store-less sessions must not fingerprint");
            }
            fn model(&self, _n: usize, _m: Metric) -> Result<MicroModel, SessionError> {
                Ok(self.0.clone())
            }
        }
        let model = fig3_model();
        let n_slices = model.n_slices();
        let mut s = AnalysisSession::new(
            NoFingerprint(model),
            SessionConfig {
                n_slices,
                ..SessionConfig::default()
            },
        );
        let _ = s.partition_at(0.5, false).unwrap();
        let _ = s.significant(1e-2).unwrap();
        assert_eq!(s.cube_source(), Some(CubeSource::Cold));
    }

    #[test]
    fn metric_model_kind_maps_both_ways() {
        use ocelotl_trace::ModelKind;
        assert_eq!(Metric::States.model_kind(), ModelKind::States);
        assert_eq!(Metric::Density.model_kind(), ModelKind::Density);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut s = session_over(fig3_model(), 3);
        assert!(matches!(
            s.partition_at(1.5, false),
            Err(SessionError::InvalidParam(_))
        ));
        assert!(matches!(
            s.significant(0.0),
            Err(SessionError::InvalidParam(_))
        ));
    }

    #[test]
    fn metric_parses_and_tags() {
        assert_eq!("states".parse::<Metric>().unwrap(), Metric::States);
        assert_eq!("density".parse::<Metric>().unwrap(), Metric::Density);
        assert!("x".parse::<Metric>().is_err());
        assert_eq!(Metric::States.tag(), "states");
        assert_eq!(Metric::Density.tag(), "density");
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisSession>();
    }

    #[test]
    fn shared_read_path_matches_exclusive_path() {
        let mut s = session_over(fig3_model(), 9);
        let exclusive = s.partition_at(0.5, false).unwrap();
        let levels = s.significant(1e-2).unwrap();
        s.prepare().unwrap();
        std::thread::scope(|scope| {
            let s = &s;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        // Memoized point + levels, plus a fresh point every
                        // thread races on.
                        let memo = s.partition_shared(0.5, false).unwrap().unwrap();
                        let lvls = s.significant_shared(1e-2).unwrap().unwrap();
                        let fresh = s.partition_shared(0.25, false).unwrap().unwrap();
                        (memo, lvls, fresh)
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (memo, lvls, fresh) in &results {
                assert_eq!(*memo, exclusive);
                assert_eq!(lvls.len(), levels.len());
                assert_eq!(*fresh, results[0].2, "racing DPs agree");
            }
        });
        // The racing threads memoized p=0.25: the exclusive path now
        // serves it without another DP.
        let before = s.dp_runs();
        let via_mut = s.partition_at(0.25, false).unwrap();
        assert_eq!(s.dp_runs(), before, "shared results serve the &mut path");
        assert_eq!(
            Some(&via_mut),
            s.partition_shared(0.25, false).unwrap().as_ref()
        );
    }

    #[test]
    fn unprepared_session_declines_shared_queries() {
        let s = session_over(fig3_model(), 10);
        assert!(s.partition_shared(0.5, false).unwrap().is_none());
        assert!(s.significant_shared(1e-2).unwrap().is_none());
        // Invalid parameters still fail fast, prepared or not.
        assert!(s.partition_shared(1.5, false).is_err());
        assert!(s.significant_shared(0.0).is_err());
    }

    #[test]
    fn table_lookup_is_exact() {
        let mut t = PartitionTable::default();
        let m = fig3_model();
        let cube = CubeBackend::build(&m, MemoryMode::Dense);
        let part = aggregate(&cube, 0.5, &DpConfig::default()).partition(&cube);
        t.insert_point(0.5, false, part.clone());
        assert_eq!(t.lookup(0.5, false), Some(&part));
        assert_eq!(t.lookup(0.5, true), None, "tie-breaking must match");
        assert_eq!(t.lookup(0.5 + 1e-12, false), None, "p match is exact");
        // Re-inserting the same query is a no-op.
        t.insert_point(0.5, false, part);
        assert_eq!(t.points.len(), 1);
    }
}
