//! Quality cubes: pluggable, memory-bounded access to `gain`/`loss` for
//! every `(node, interval)` pair.
//!
//! Algorithm 1 and every downstream consumer (the 1-D baselines, quality
//! reporting, p-value enumeration, the renderers) only ever ask one
//! question of the input stage: *what are `gain(S_k, T_(i,j))` and
//! `loss(S_k, T_(i,j))`?* The [`QualityCube`] trait is that question as an
//! abstraction boundary, with two backends that answer it from the same
//! per-node prefix sums but with opposite space/time trade-offs:
//!
//! - [`DenseCube`] precomputes one upper-triangular matrix per hierarchy
//!   node per measure — `O(|S|·|T|²)` floats resident, `O(1)` per query.
//!   This is the paper's §III.E data structure and what makes re-running
//!   the optimizer at a new trade-off `p` "instantaneous" (§V.B).
//! - [`LazyCube`] keeps only the `O(|S|·|T|·|X|)` prefix sums and
//!   evaluates each cell on demand in `O(|X|)`. Memory becomes *linear*
//!   in `|T|`, which is what lets an aggregation run at `|T| = 2048+` on
//!   hierarchies where the dense cube would need hundreds of gigabytes.
//!
//! Both backends are built from the same [`CubeCore`] and evaluate cells
//! with the same arithmetic in the same order, so their answers are
//! **bit-identical** — a property the equivalence test-suite pins down.
//! Pick at runtime with [`CubeBackend`] / [`MemoryMode`].

use crate::measures::{xlog2x, AreaSums};
use crate::tri::TriMatrix;
use ocelotl_trace::{Hierarchy, LeafId, MicroModel, NodeId, StateId, StateRegistry, TimeGrid};
use rayon::prelude::*;

/// Uniform query interface over the aggregation inputs.
///
/// `Sync` is a supertrait because the optimizer forks over hierarchy
/// siblings and shares the cube across worker threads.
pub trait QualityCube: Sync {
    /// The spatial hierarchy.
    fn hierarchy(&self) -> &Hierarchy;

    /// The state registry.
    fn states(&self) -> &StateRegistry;

    /// `|T|`: number of time slices.
    fn n_slices(&self) -> usize;

    /// `d(t)`: duration of one slice.
    fn slice_duration(&self) -> f64;

    /// `gain(S_k, T_(i,j))` summed over states (Eq. 3).
    fn gain(&self, node: NodeId, i: usize, j: usize) -> f64;

    /// `loss(S_k, T_(i,j))` summed over states (Eq. 2).
    fn loss(&self, node: NodeId, i: usize, j: usize) -> f64;

    /// Both measures of one cell. Backends that evaluate on demand answer
    /// this in a single pass over the states; prefer it in inner loops.
    fn gain_loss(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        (self.gain(node, i, j), self.loss(node, i, j))
    }

    /// `|X|`: number of states.
    fn n_states(&self) -> usize {
        self.states().len()
    }

    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1.
    fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64;

    /// All aggregated proportions of an area, indexed by state.
    fn rho_aggregate_all(&self, node: NodeId, i: usize, j: usize) -> Vec<f64> {
        (0..self.n_states())
            .map(|x| self.rho_aggregate(node, StateId(x as u16), i, j))
            .collect()
    }

    /// Estimated resident size of the cube in bytes (diagnostic).
    fn memory_bytes(&self) -> usize;
}

/// Blanket impl so generic consumers accept `&DenseCube`, `&dyn
/// QualityCube`, boxed cubes, etc. without extra plumbing.
impl<C: QualityCube + ?Sized> QualityCube for &C {
    fn hierarchy(&self) -> &Hierarchy {
        (**self).hierarchy()
    }
    fn states(&self) -> &StateRegistry {
        (**self).states()
    }
    fn n_slices(&self) -> usize {
        (**self).n_slices()
    }
    fn slice_duration(&self) -> f64 {
        (**self).slice_duration()
    }
    fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        (**self).gain(node, i, j)
    }
    fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        (**self).loss(node, i, j)
    }
    fn gain_loss(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        (**self).gain_loss(node, i, j)
    }
    fn n_states(&self) -> usize {
        (**self).n_states()
    }
    fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        (**self).rho_aggregate(node, x, i, j)
    }
    fn rho_aggregate_all(&self, node: NodeId, i: usize, j: usize) -> Vec<f64> {
        (**self).rho_aggregate_all(node, i, j)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

// ---------------------------------------------------------------------------
// Shared substrate
// ---------------------------------------------------------------------------

/// The per-node prefix sums both backends are built from: for every
/// hierarchy node and state, running sums over time of `Σ_s d_x(s,t)` and
/// `Σ_s ρ_x·log₂ρ_x` (leaves read the microscopic model, internal nodes
/// sum their children). Any cell `(node, [i, j])` evaluates from these in
/// `O(|X|)` — see [`CubeCore::eval_cell`].
#[derive(Debug, Clone)]
pub struct CubeCore {
    hierarchy: Hierarchy,
    states: StateRegistry,
    /// The time grid of the microscopic model the core was built from.
    /// Carrying the full grid (not just the slice duration) lets a core
    /// deserialized from an `.ocube` artifact serve every time-axis query
    /// (slice bounds, trace extent) without reloading the trace.
    grid: TimeGrid,
    /// Per node: prefix sums of `Σ_s d_x(s,t)`, laid out `[state × (|T|+1)]`.
    prefix_duration: Vec<Vec<f64>>,
    /// Per node: prefix sums of `Σ_s ρ_x·log₂ρ_x`, same layout.
    prefix_info: Vec<Vec<f64>>,
}

impl CubeCore {
    /// Build the prefix sums from a microscopic model (leaves in
    /// parallel, internal nodes summed in post-order).
    pub fn build(model: &MicroModel) -> Self {
        let hierarchy = model.hierarchy().clone();
        let states = model.states().clone();
        let grid = *model.grid();
        let n_slices = model.n_slices();
        let n_states = model.n_states();
        let n_nodes = hierarchy.len();
        let slice_duration = grid.slice_duration();
        assert!(n_states >= 1, "need at least one state");

        let stride = n_slices + 1;

        let mut prefix_duration: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        let mut prefix_info: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];

        // Leaves in parallel.
        let leaf_prefixes: Vec<(usize, Vec<f64>, Vec<f64>)> = (0..hierarchy.n_leaves())
            .into_par_iter()
            .map(|leaf| {
                let node = hierarchy.leaf_node(LeafId(leaf as u32));
                let mut pd = vec![0.0; n_states * stride];
                let mut pi = vec![0.0; n_states * stride];
                for x in 0..n_states {
                    let series = model.series(LeafId(leaf as u32), StateId(x as u16));
                    let (pd_row, pi_row) = (x * stride, x * stride);
                    let mut acc_d = 0.0;
                    let mut acc_i = 0.0;
                    for (t, &d) in series.iter().enumerate() {
                        acc_d += d;
                        acc_i += xlog2x(d / slice_duration);
                        pd[pd_row + t + 1] = acc_d;
                        pi[pi_row + t + 1] = acc_i;
                    }
                }
                (node.index(), pd, pi)
            })
            .collect();
        for (idx, pd, pi) in leaf_prefixes {
            prefix_duration[idx] = pd;
            prefix_info[idx] = pi;
        }

        // Internal nodes: sum of children, in post-order (children first).
        for &node in hierarchy.post_order() {
            if hierarchy.is_leaf(node) {
                continue;
            }
            let mut pd = vec![0.0; n_states * stride];
            let mut pi = vec![0.0; n_states * stride];
            for &c in hierarchy.children(node) {
                let (cpd, cpi) = (&prefix_duration[c.index()], &prefix_info[c.index()]);
                for (a, &b) in pd.iter_mut().zip(cpd) {
                    *a += b;
                }
                for (a, &b) in pi.iter_mut().zip(cpi) {
                    *a += b;
                }
            }
            prefix_duration[node.index()] = pd;
            prefix_info[node.index()] = pi;
        }

        Self {
            hierarchy,
            states,
            grid,
            prefix_duration,
            prefix_info,
        }
    }

    /// Reassemble a core from its serialized parts (the `.ocube` reader's
    /// entry point). Validates the shape invariants the builder guarantees:
    /// one row pair per hierarchy node, each `|X| × (|T|+1)` long.
    pub fn from_raw(
        hierarchy: Hierarchy,
        states: StateRegistry,
        grid: TimeGrid,
        prefix_duration: Vec<Vec<f64>>,
        prefix_info: Vec<Vec<f64>>,
    ) -> Result<Self, String> {
        if states.is_empty() {
            return Err("need at least one state".into());
        }
        let n_nodes = hierarchy.len();
        if prefix_duration.len() != n_nodes || prefix_info.len() != n_nodes {
            return Err(format!(
                "prefix rows ({} duration, {} info) do not match {n_nodes} nodes",
                prefix_duration.len(),
                prefix_info.len()
            ));
        }
        let row_len = states.len() * (grid.n_slices() + 1);
        for (idx, (pd, pi)) in prefix_duration.iter().zip(&prefix_info).enumerate() {
            if pd.len() != row_len || pi.len() != row_len {
                return Err(format!(
                    "node {idx}: row lengths ({}, {}) != |X|·(|T|+1) = {row_len}",
                    pd.len(),
                    pi.len()
                ));
            }
        }
        Ok(Self {
            hierarchy,
            states,
            grid,
            prefix_duration,
            prefix_info,
        })
    }

    /// The spatial hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The state registry.
    #[inline]
    pub fn states(&self) -> &StateRegistry {
        &self.states
    }

    /// The time grid of the underlying microscopic model.
    #[inline]
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// `|T|`.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.grid.n_slices()
    }

    /// `|X|`.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// `d(t)`.
    #[inline]
    pub fn slice_duration(&self) -> f64 {
        self.grid.slice_duration()
    }

    /// True while the Shannon-information prefix sums are still resident
    /// (serialization requires them; the dense backend drops them).
    #[inline]
    pub fn has_info_sums(&self) -> bool {
        !self.prefix_info.is_empty()
    }

    /// Raw duration prefix sums of one node, laid out `[state × (|T|+1)]`
    /// (serialization hook for the `.ocube` writer).
    #[inline]
    pub fn prefix_duration_row(&self, node: NodeId) -> &[f64] {
        &self.prefix_duration[node.index()]
    }

    /// Raw information prefix sums of one node, same layout. Empty once
    /// [`CubeCore::has_info_sums`] is false.
    #[inline]
    pub fn prefix_info_row(&self, node: NodeId) -> &[f64] {
        if self.prefix_info.is_empty() {
            &[]
        } else {
            &self.prefix_info[node.index()]
        }
    }

    /// Evaluate `(gain, loss)` of one cell in `O(|X|)` from the prefix
    /// sums. Every cell any backend ever serves goes through this one
    /// function, which is what makes dense and lazy answers bit-identical
    /// (same operations in the same order).
    #[inline]
    pub fn eval_cell(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        assert!(
            !self.prefix_info.is_empty(),
            "info prefix sums were discarded (this core already fed a dense cube)"
        );
        let idx = node.index();
        let n_res = self.hierarchy.n_leaves_under(node);
        let stride = self.n_slices() + 1;
        let slice_duration = self.slice_duration();
        let pd = &self.prefix_duration[idx];
        let pi = &self.prefix_info[idx];
        let period = (j - i + 1) as f64 * slice_duration;
        let mut g = 0.0;
        let mut l = 0.0;
        for x in 0..self.n_states() {
            let row = x * stride;
            let sums = AreaSums {
                sum_duration: pd[row + j + 1] - pd[row + i],
                sum_rho: (pd[row + j + 1] - pd[row + i]) / slice_duration,
                sum_rho_log_rho: pi[row + j + 1] - pi[row + i],
            };
            g += sums.gain(n_res, period);
            l += sums.loss(n_res, period);
        }
        (g, l)
    }

    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1.
    pub fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        let stride = self.n_slices() + 1;
        let pd = &self.prefix_duration[node.index()];
        let row = x.index() * stride;
        let sum_d = pd[row + j + 1] - pd[row + i];
        let n_res = self.hierarchy.n_leaves_under(node) as f64;
        let period = (j - i + 1) as f64 * self.slice_duration();
        sum_d / (n_res * period)
    }

    /// Drop the Shannon-information prefix sums. The dense backend calls
    /// this once its triangular matrices are materialized: after that it
    /// answers `gain`/`loss` from the matrices and `rho_aggregate` from
    /// the duration sums alone, so keeping the info sums resident would
    /// waste an entire lazy cube's worth of memory. [`CubeCore::eval_cell`]
    /// panics after this.
    fn discard_info_sums(&mut self) {
        self.prefix_info = Vec::new();
    }

    /// Resident bytes of the prefix sums.
    pub fn memory_bytes(&self) -> usize {
        let cells = self.prefix_duration.iter().map(Vec::len).sum::<usize>()
            + self.prefix_info.iter().map(Vec::len).sum::<usize>();
        cells * std::mem::size_of::<f64>()
    }
}

/// Bytes the dense backend would allocate for its triangular matrices on
/// a `|S|`-node, `|T|`-slice problem (two `f64` per interval per node).
pub fn dense_matrix_bytes(n_nodes: usize, n_slices: usize) -> usize {
    n_nodes * (n_slices * (n_slices + 1) / 2) * 2 * std::mem::size_of::<f64>()
}

// ---------------------------------------------------------------------------
// Dense backend
// ---------------------------------------------------------------------------

/// Precomputed backend: the paper's per-node triangular `gain`/`loss`
/// matrices (§III.E). `O(|S|·|T|²)` resident floats, `O(1)` per query —
/// the right choice whenever the matrices fit in memory, and the one that
/// preserves §V.B "instantaneous interaction" exactly.
#[derive(Debug, Clone)]
pub struct DenseCube {
    core: CubeCore,
    /// Per node: `gain(S_k, T_(i,j))` summed over states.
    gain: Vec<TriMatrix<f64>>,
    /// Per node: `loss(S_k, T_(i,j))` summed over states.
    loss: Vec<TriMatrix<f64>>,
}

impl DenseCube {
    /// Build prefix sums, then materialize all triangular matrices
    /// (parallel over nodes).
    pub fn build(model: &MicroModel) -> Self {
        Self::from_core(CubeCore::build(model))
    }

    /// Materialize the matrices over an existing core.
    pub fn from_core(core: CubeCore) -> Self {
        let n_nodes = core.hierarchy().len();
        let n_slices = core.n_slices();
        let matrices: Vec<(TriMatrix<f64>, TriMatrix<f64>)> = (0..n_nodes)
            .into_par_iter()
            .map(|idx| {
                let node = NodeId(idx as u32);
                let mut gain = TriMatrix::<f64>::new(n_slices);
                let mut loss = TriMatrix::<f64>::new(n_slices);
                for i in 0..n_slices {
                    for j in i..n_slices {
                        let (g, l) = core.eval_cell(node, i, j);
                        gain.set(i, j, g);
                        loss.set(i, j, l);
                    }
                }
                (gain, loss)
            })
            .collect();

        let mut gain = Vec::with_capacity(n_nodes);
        let mut loss = Vec::with_capacity(n_nodes);
        for (g, l) in matrices {
            gain.push(g);
            loss.push(l);
        }
        let mut core = core;
        core.discard_info_sums();
        Self { core, gain, loss }
    }

    /// The shared prefix-sum substrate (info sums discarded; see
    /// [`CubeCore::has_info_sums`]).
    #[inline]
    pub fn core(&self) -> &CubeCore {
        &self.core
    }

    /// The spatial hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        self.core.hierarchy()
    }

    /// The state registry.
    #[inline]
    pub fn states(&self) -> &StateRegistry {
        self.core.states()
    }

    /// `|T|`: number of time slices.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.core.n_slices()
    }

    /// `|X|`: number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.core.n_states()
    }

    /// `d(t)`: duration of one slice.
    #[inline]
    pub fn slice_duration(&self) -> f64 {
        self.core.slice_duration()
    }

    /// `gain(S_k, T_(i,j))` — one matrix read.
    #[inline]
    pub fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.gain[node.index()].get(i, j)
    }

    /// `loss(S_k, T_(i,j))` — one matrix read.
    #[inline]
    pub fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.loss[node.index()].get(i, j)
    }

    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1.
    #[inline]
    pub fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        self.core.rho_aggregate(node, x, i, j)
    }

    /// All aggregated proportions of an area, indexed by state.
    pub fn rho_aggregate_all(&self, node: NodeId, i: usize, j: usize) -> Vec<f64> {
        (0..self.n_states())
            .map(|x| self.rho_aggregate(node, StateId(x as u16), i, j))
            .collect()
    }

    /// Resident bytes: matrices plus prefix sums.
    pub fn memory_bytes(&self) -> usize {
        let tri = self.gain.iter().map(TriMatrix::len).sum::<usize>()
            + self.loss.iter().map(TriMatrix::len).sum::<usize>();
        tri * std::mem::size_of::<f64>() + self.core.memory_bytes()
    }
}

impl QualityCube for DenseCube {
    fn hierarchy(&self) -> &Hierarchy {
        self.core.hierarchy()
    }
    fn states(&self) -> &StateRegistry {
        self.core.states()
    }
    fn n_slices(&self) -> usize {
        self.core.n_slices()
    }
    fn slice_duration(&self) -> f64 {
        self.core.slice_duration()
    }
    #[inline]
    fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        DenseCube::gain(self, node, i, j)
    }
    #[inline]
    fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        DenseCube::loss(self, node, i, j)
    }
    fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        self.core.rho_aggregate(node, x, i, j)
    }
    fn memory_bytes(&self) -> usize {
        DenseCube::memory_bytes(self)
    }
}

// ---------------------------------------------------------------------------
// Lazy backend
// ---------------------------------------------------------------------------

/// On-demand backend: keeps only the `O(|S|·|T|·|X|)` prefix sums and
/// evaluates every queried cell in `O(|X|)`. Memory is linear in `|T|`,
/// so Table II-scale scenarios can run at `|T| = 2048` and beyond where
/// the dense matrices would be hundreds of gigabytes. Queries cost an
/// `O(|X|)` loop instead of a load, so interaction (re-running the DP at
/// a new `p`) is slower than dense by that factor — see the
/// `memory_backends` bench for the measured trade-off.
#[derive(Debug, Clone)]
pub struct LazyCube {
    core: CubeCore,
}

impl LazyCube {
    /// Build the prefix sums only — no triangular matrices.
    pub fn build(model: &MicroModel) -> Self {
        Self::from_core(CubeCore::build(model))
    }

    /// Wrap an existing core.
    pub fn from_core(core: CubeCore) -> Self {
        Self { core }
    }

    /// The shared prefix-sum substrate.
    #[inline]
    pub fn core(&self) -> &CubeCore {
        &self.core
    }

    /// The spatial hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        self.core.hierarchy()
    }

    /// The state registry.
    #[inline]
    pub fn states(&self) -> &StateRegistry {
        self.core.states()
    }

    /// `|T|`: number of time slices.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.core.n_slices()
    }

    /// `|X|`: number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.core.n_states()
    }

    /// `d(t)`: duration of one slice.
    #[inline]
    pub fn slice_duration(&self) -> f64 {
        self.core.slice_duration()
    }

    /// `gain(S_k, T_(i,j))` — evaluated on demand.
    #[inline]
    pub fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.core.eval_cell(node, i, j).0
    }

    /// `loss(S_k, T_(i,j))` — evaluated on demand.
    #[inline]
    pub fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        self.core.eval_cell(node, i, j).1
    }

    /// Both measures in one `O(|X|)` pass.
    #[inline]
    pub fn gain_loss(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        self.core.eval_cell(node, i, j)
    }

    /// Aggregated proportion `ρ_x(S_k, T_(i,j))` per Eq. 1.
    #[inline]
    pub fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        self.core.rho_aggregate(node, x, i, j)
    }

    /// All aggregated proportions of an area, indexed by state.
    pub fn rho_aggregate_all(&self, node: NodeId, i: usize, j: usize) -> Vec<f64> {
        (0..self.n_states())
            .map(|x| self.rho_aggregate(node, StateId(x as u16), i, j))
            .collect()
    }

    /// Resident bytes: the prefix sums only.
    pub fn memory_bytes(&self) -> usize {
        self.core.memory_bytes()
    }
}

impl QualityCube for LazyCube {
    fn hierarchy(&self) -> &Hierarchy {
        self.core.hierarchy()
    }
    fn states(&self) -> &StateRegistry {
        self.core.states()
    }
    fn n_slices(&self) -> usize {
        self.core.n_slices()
    }
    fn slice_duration(&self) -> f64 {
        self.core.slice_duration()
    }
    #[inline]
    fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        LazyCube::gain(self, node, i, j)
    }
    #[inline]
    fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        LazyCube::loss(self, node, i, j)
    }
    #[inline]
    fn gain_loss(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        self.core.eval_cell(node, i, j)
    }
    fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        self.core.rho_aggregate(node, x, i, j)
    }
    fn memory_bytes(&self) -> usize {
        LazyCube::memory_bytes(self)
    }
}

// ---------------------------------------------------------------------------
// Runtime backend selection
// ---------------------------------------------------------------------------

/// Default ceiling for the auto heuristic: if the dense matrices would
/// exceed this many bytes, [`MemoryMode::Auto`] picks the lazy backend.
pub const AUTO_DENSE_LIMIT_BYTES: usize = 1 << 30; // 1 GiB

/// The `auto` sizing heuristic, as the single shared function: dense while
/// the `O(|S|·|T|²)` triangular matrices fit under
/// [`AUTO_DENSE_LIMIT_BYTES`], lazy beyond. Everything that needs the
/// decision — [`MemoryMode::resolve`], [`CubeBackend::build`], the
/// [`crate::session::AnalysisSession`] — routes through here, so the 1 GiB
/// policy lives in exactly one place.
pub fn choose_auto_backend(n_nodes: usize, n_slices: usize) -> MemoryMode {
    if dense_matrix_bytes(n_nodes, n_slices) > AUTO_DENSE_LIMIT_BYTES {
        MemoryMode::Lazy
    } else {
        MemoryMode::Dense
    }
}

/// How to choose the cube backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Decide from the problem size: dense while the matrices fit under
    /// [`AUTO_DENSE_LIMIT_BYTES`], lazy beyond.
    #[default]
    Auto,
    /// Always precompute the triangular matrices.
    Dense,
    /// Never materialize matrices; evaluate cells on demand.
    Lazy,
}

impl MemoryMode {
    /// Resolve the mode for a concrete problem size (delegates to
    /// [`choose_auto_backend`]).
    pub fn resolve(self, n_nodes: usize, n_slices: usize) -> MemoryMode {
        match self {
            MemoryMode::Auto => choose_auto_backend(n_nodes, n_slices),
            fixed => fixed,
        }
    }

    /// Stable tag used in artifact keys and CLI output.
    pub fn tag(self) -> &'static str {
        match self {
            MemoryMode::Auto => "auto",
            MemoryMode::Dense => "dense",
            MemoryMode::Lazy => "lazy",
        }
    }
}

impl std::str::FromStr for MemoryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(MemoryMode::Auto),
            "dense" => Ok(MemoryMode::Dense),
            "lazy" => Ok(MemoryMode::Lazy),
            other => Err(format!("unknown memory mode {other:?} (auto|dense|lazy)")),
        }
    }
}

/// Runtime-chosen backend (what the CLI's `--memory` flag constructs).
#[derive(Debug, Clone)]
pub enum CubeBackend {
    /// Precomputed triangular matrices.
    Dense(DenseCube),
    /// On-demand evaluation from prefix sums.
    Lazy(LazyCube),
}

impl CubeBackend {
    /// Build from a model under the given mode ([`MemoryMode::Auto`]
    /// sizes the dense matrices first and falls back to lazy above
    /// [`AUTO_DENSE_LIMIT_BYTES`]).
    pub fn build(model: &MicroModel, mode: MemoryMode) -> Self {
        Self::from_core(CubeCore::build(model), mode)
    }

    /// Build from an existing core (the warm path: a core deserialized
    /// from an `.ocube` artifact skips the model entirely). The same
    /// [`choose_auto_backend`] heuristic applies for [`MemoryMode::Auto`].
    pub fn from_core(core: CubeCore, mode: MemoryMode) -> Self {
        let resolved = mode.resolve(core.hierarchy().len(), core.n_slices());
        match resolved {
            MemoryMode::Dense => CubeBackend::Dense(DenseCube::from_core(core)),
            MemoryMode::Lazy => CubeBackend::Lazy(LazyCube::from_core(core)),
            MemoryMode::Auto => unreachable!("resolve() returns a fixed mode"),
        }
    }

    /// Which backend was chosen.
    pub fn mode(&self) -> MemoryMode {
        match self {
            CubeBackend::Dense(_) => MemoryMode::Dense,
            CubeBackend::Lazy(_) => MemoryMode::Lazy,
        }
    }

    /// The shared prefix-sum substrate (the dense backend's core has its
    /// info sums discarded; see [`CubeCore::has_info_sums`]).
    pub fn core(&self) -> &CubeCore {
        match self {
            CubeBackend::Dense(c) => c.core(),
            CubeBackend::Lazy(c) => c.core(),
        }
    }
}

impl QualityCube for CubeBackend {
    fn hierarchy(&self) -> &Hierarchy {
        match self {
            CubeBackend::Dense(c) => c.hierarchy(),
            CubeBackend::Lazy(c) => c.hierarchy(),
        }
    }
    fn states(&self) -> &StateRegistry {
        match self {
            CubeBackend::Dense(c) => c.states(),
            CubeBackend::Lazy(c) => c.states(),
        }
    }
    fn n_slices(&self) -> usize {
        match self {
            CubeBackend::Dense(c) => c.n_slices(),
            CubeBackend::Lazy(c) => c.n_slices(),
        }
    }
    fn slice_duration(&self) -> f64 {
        match self {
            CubeBackend::Dense(c) => c.slice_duration(),
            CubeBackend::Lazy(c) => c.slice_duration(),
        }
    }
    #[inline]
    fn gain(&self, node: NodeId, i: usize, j: usize) -> f64 {
        match self {
            CubeBackend::Dense(c) => c.gain(node, i, j),
            CubeBackend::Lazy(c) => c.gain(node, i, j),
        }
    }
    #[inline]
    fn loss(&self, node: NodeId, i: usize, j: usize) -> f64 {
        match self {
            CubeBackend::Dense(c) => c.loss(node, i, j),
            CubeBackend::Lazy(c) => c.loss(node, i, j),
        }
    }
    #[inline]
    fn gain_loss(&self, node: NodeId, i: usize, j: usize) -> (f64, f64) {
        match self {
            CubeBackend::Dense(c) => (c.gain(node, i, j), c.loss(node, i, j)),
            CubeBackend::Lazy(c) => c.gain_loss(node, i, j),
        }
    }
    fn rho_aggregate(&self, node: NodeId, x: StateId, i: usize, j: usize) -> f64 {
        match self {
            CubeBackend::Dense(c) => c.rho_aggregate(node, x, i, j),
            CubeBackend::Lazy(c) => c.rho_aggregate(node, x, i, j),
        }
    }
    fn memory_bytes(&self) -> usize {
        match self {
            CubeBackend::Dense(c) => c.memory_bytes(),
            CubeBackend::Lazy(c) => c.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelotl_trace::synthetic::{fig3_model, random_model};

    #[test]
    fn dense_and_lazy_are_bit_identical_on_fig3() {
        let m = fig3_model();
        let dense = DenseCube::build(&m);
        let lazy = LazyCube::build(&m);
        for node in m.hierarchy().node_ids() {
            for i in 0..m.n_slices() {
                for j in i..m.n_slices() {
                    // Exact equality on purpose: both backends must run the
                    // same arithmetic in the same order.
                    assert_eq!(dense.gain(node, i, j), lazy.gain(node, i, j));
                    assert_eq!(dense.loss(node, i, j), lazy.loss(node, i, j));
                    assert_eq!(
                        lazy.gain_loss(node, i, j),
                        (lazy.gain(node, i, j), lazy.loss(node, i, j))
                    );
                }
            }
        }
    }

    #[test]
    fn lazy_memory_is_linear_in_slices() {
        let m64 = random_model(&[4, 4], 64, 3, 7);
        let m128 = random_model(&[4, 4], 128, 3, 7);
        let l64 = LazyCube::build(&m64).memory_bytes();
        let l128 = LazyCube::build(&m128).memory_bytes();
        // Doubling |T| roughly doubles lazy memory…
        assert!(l128 < l64 * 3, "lazy grew superlinearly: {l64} -> {l128}");
        // …while the dense matrices grow ~4×.
        let d64 = DenseCube::build(&m64).memory_bytes();
        let d128 = DenseCube::build(&m128).memory_bytes();
        assert!(
            d128 > d64 * 3,
            "dense should grow quadratically: {d64} -> {d128}"
        );
        assert!(l128 < d128, "lazy must be smaller than dense");
    }

    #[test]
    fn auto_mode_picks_by_size() {
        // 21 nodes × 20 slices is tiny → dense.
        let small = fig3_model();
        assert_eq!(
            CubeBackend::build(&small, MemoryMode::Auto).mode(),
            MemoryMode::Dense
        );
        // Estimate for a big problem crosses the limit → lazy.
        let big_nodes = 2000;
        let big_slices = 4096;
        assert!(dense_matrix_bytes(big_nodes, big_slices) > AUTO_DENSE_LIMIT_BYTES);
        assert_eq!(
            MemoryMode::Auto.resolve(big_nodes, big_slices),
            MemoryMode::Lazy
        );
        assert_eq!(
            MemoryMode::Dense.resolve(big_nodes, big_slices),
            MemoryMode::Dense
        );
    }

    #[test]
    fn memory_mode_parses() {
        assert_eq!("auto".parse::<MemoryMode>().unwrap(), MemoryMode::Auto);
        assert_eq!("dense".parse::<MemoryMode>().unwrap(), MemoryMode::Dense);
        assert_eq!("lazy".parse::<MemoryMode>().unwrap(), MemoryMode::Lazy);
        assert!("x".parse::<MemoryMode>().is_err());
    }

    #[test]
    fn backend_enum_dispatches() {
        let m = fig3_model();
        let dense = CubeBackend::build(&m, MemoryMode::Dense);
        let lazy = CubeBackend::build(&m, MemoryMode::Lazy);
        let root = m.hierarchy().root();
        assert_eq!(dense.gain(root, 0, 19), lazy.gain(root, 0, 19));
        assert_eq!(dense.loss(root, 3, 11), lazy.loss(root, 3, 11));
        assert!(matches!(dense, CubeBackend::Dense(_)));
        assert!(matches!(lazy, CubeBackend::Lazy(_)));
        assert!(lazy.memory_bytes() < dense.memory_bytes());
    }
}
