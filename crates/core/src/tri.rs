//! Upper-triangular interval matrices.
//!
//! The set of intervals `I(T)` is stored as an upper-triangular matrix whose
//! cell `[i, j]` (with `0 ≤ i ≤ j < |T|`) corresponds to the interval
//! `T_(i,j)` (§III.E "Data Structure"). Storage is row-major over rows `i`,
//! so the temporal-cut inner loop `pIC[i, k]` for growing `k` is unit-stride.

/// Dense upper-triangular matrix over intervals of `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct TriMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> TriMatrix<T> {
    /// Create an `n × n` upper-triangular matrix filled with `T::default()`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "interval matrix needs at least one slice");
        Self {
            n,
            data: vec![T::default(); n * (n + 1) / 2],
        }
    }

    /// Number of slices `|T|` (matrix side).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored cells `n(n+1)/2`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (`n ≥ 1` guarantees at least one cell).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // n >= 1 always gives at least one cell
    }

    /// Linear offset of cell `[i, j]`.
    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i <= j && j < self.n,
            "bad interval [{i}, {j}] for n={}",
            self.n
        );
        // Row i starts after rows 0..i, which hold (n) + (n-1) + … + (n-i+1)
        // = i·(2n − i + 1)/2 cells.
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    /// Value of cell `[i, j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.offset(i, j)]
    }

    /// Overwrite cell `[i, j]`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// Contiguous row segment `[i, i..=jmax]` — cells `[i,i], [i,i+1], …`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let start = self.offset(i, i);
        &self.data[start..start + (self.n - i)]
    }

    /// Mutable row segment.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let start = self.offset(i, i);
        let len = self.n - i;
        &mut self.data[start..start + len]
    }

    /// Iterate all `(i, j, value)` cells.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n).flat_map(move |i| (i..self.n).map(move |j| (i, j, self.get(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_bijective() {
        let n = 7;
        let mut m = TriMatrix::<u32>::new(n);
        let mut counter = 0;
        for i in 0..n {
            for j in i..n {
                m.set(i, j, counter);
                counter += 1;
            }
        }
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in i..n {
                assert!(seen.insert(m.get(i, j)), "duplicate at [{i},{j}]");
            }
        }
        assert_eq!(seen.len(), n * (n + 1) / 2);
        assert_eq!(m.len(), n * (n + 1) / 2);
    }

    #[test]
    fn row_is_contiguous_from_diagonal() {
        let n = 5;
        let mut m = TriMatrix::<f64>::new(n);
        for i in 0..n {
            for j in i..n {
                m.set(i, j, (i * 10 + j) as f64);
            }
        }
        assert_eq!(m.row(2), &[22.0, 23.0, 24.0]);
        assert_eq!(m.row(4), &[44.0]);
        let r = m.row_mut(0);
        r[3] = 99.0;
        assert_eq!(m.get(0, 3), 99.0);
    }

    #[test]
    fn single_slice_matrix() {
        let mut m = TriMatrix::<i32>::new(1);
        m.set(0, 0, -1);
        assert_eq!(m.get(0, 0), -1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_visits_all_cells_in_order() {
        let m = TriMatrix::<u8>::new(3);
        let cells: Vec<(usize, usize)> = m.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(cells, vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // bounds are debug_assert!s; release elides them
    fn lower_triangle_access_panics_in_debug() {
        let m = TriMatrix::<u8>::new(3);
        // i > j is invalid.
        let _ = m.get(2, 1);
    }
}
