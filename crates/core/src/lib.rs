//! # ocelotl-core — spatiotemporal trace aggregation
//!
//! Rust implementation of the primary contribution of *"A Spatiotemporal
//! Data Aggregation Technique for Performance Analysis of Large-scale
//! Execution Traces"* (Dosimont, Lamarche-Perrin, Schnorr, Huard, Vincent —
//! IEEE CLUSTER 2014).
//!
//! Given a microscopic trace model (`ocelotl_trace::MicroModel`), this crate
//! computes the hierarchy-and-order-consistent partition of `S × T` that
//! maximizes the parametrized information criterion
//! `pIC = p·gain − (1−p)·loss` (Eq. 2–4), where `gain` is the Shannon data
//! reduction and `loss` the Kullback–Leibler information loss of each
//! aggregate.
//!
//! ```
//! use ocelotl_trace::synthetic::fig3_model;
//! use ocelotl_core::{AggregationInput, aggregate_default};
//!
//! let model = fig3_model();                     // 12 resources × 20 slices
//! let input = AggregationInput::build(&model);  // O(|S||T|²) preprocessing
//! let tree = aggregate_default(&input, 0.5);    // Algorithm 1 at p = 0.5
//! let partition = tree.partition(&input);
//! assert!(partition.validate(model.hierarchy(), model.n_slices()).is_ok());
//! assert!(partition.len() < 240);               // fewer aggregates than cells
//! ```
//!
//! Module map:
//! - [`measures`] — Eq. 2–4 (loss, gain, pIC);
//! - [`cube`] — the [`QualityCube`] abstraction over `gain`/`loss` access,
//!   with the precomputed [`DenseCube`] (`O(|S||T|²)` memory, `O(1)`
//!   queries) and the on-demand [`LazyCube`] (`O(|S||T||X|)` memory,
//!   `O(|X|)` queries) backends;
//! - [`input`] — the historical [`AggregationInput`] name (= dense cube)
//!   and the dense/lazy trade-off discussion;
//! - [`dp`] — Algorithm 1, the `O(|S||T|³)` spatiotemporal optimizer
//!   (sequential and fork–join parallel), generic over the cube;
//! - [`partition`] — areas, partitions, validation;
//! - [`onedim`] — the unidimensional baselines and their product (§III.D);
//! - [`pvalues`] — significant trade-off values (the Ocelotl slider);
//! - [`quality`](mod@quality) — normalized fidelity reporting (criterion G5);
//! - [`analysis`] — brute-force enumeration and strategy comparisons;
//! - [`session`] — the memoized [`AnalysisSession`] pipeline with its
//!   pluggable, content-addressed [`ArtifactStore`] (the §V.B
//!   "preprocess once, interact instantly" economy as an object);
//! - [`hires`] — the [`HiResModel`] super-resolution resident
//!   intermediate: any `--slices` change or aligned zoom is served by
//!   pure in-memory rebinning, bit-identical to a fresh ingest;
//! - [`query`] — the typed request/reply protocol
//!   ([`AnalysisRequest`]/[`AnalysisReply`]) and the [`QueryEngine`]
//!   executing it against a session — the stable public surface every
//!   client (CLI, `ocelotl serve`, library) talks to;
//! - [`visual`] — the §IV visual-aggregation pass (run engine-side so
//!   overview replies are fully drawable);
//! - [`tri`] — upper-triangular interval matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cube;
pub mod dp;
pub mod hires;
pub mod input;
pub mod inspect;
pub mod measures;
pub mod onedim;
pub mod partition;
pub mod pvalues;
pub mod quality;
pub mod query;
pub mod session;
pub mod tri;
pub mod visual;

pub use analysis::{
    compare_partitions, mutual_information, total_mutual_information, PartitionComparison,
};
pub use cube::{
    choose_auto_backend, dense_matrix_bytes, CubeBackend, CubeCore, DenseCube, LazyCube,
    MemoryMode, QualityCube, AUTO_DENSE_LIMIT_BYTES,
};
pub use dp::{aggregate, aggregate_default, Cut, CutTree, DpConfig};
pub use hires::{
    hi_res_slices, snap_to_grid, AppendError, AppendOutcome, HiResModel, LiveEvent, HI_RES_FACTOR,
    HI_RES_MIN_SLICES,
};
pub use input::AggregationInput;
pub use inspect::{
    area_at, area_table_header, area_table_row, inspect_area, summarize, summary_text, AreaReport,
};
pub use measures::{pic, xlog2x, AreaSums};
pub use onedim::{
    collapse_space, collapse_time, product_aggregation, spatial_partition, temporal_partition,
    ProductAggregation, SpatialPartition, TemporalPartition,
};
pub use partition::{Area, Partition};
pub use pvalues::{significant_partitions, significant_ps, PEntry};
pub use quality::{quality, QualityReport};
pub use query::{AnalysisReply, AnalysisRequest, QueryEngine, QueryError, PROTOCOL_VERSION};
pub use session::{
    fnv1a, AnalysisSession, ArtifactStore, CubeSource, IngestStats, MemoryStore, Metric,
    ModelSource, OwnedSource, PartitionTable, PointEntry, PushdownProbe, ResliceWindow,
    SessionConfig, SessionError, SignificantSet, DEFAULT_CACHE_KEEP, FNV_SEED,
};
pub use tri::TriMatrix;
pub use visual::{mode, visually_aggregate, Item, Mode, VisualAggregation, VisualMark};
