//! Raw trace events: timestamped state intervals produced by resources.
//!
//! The raw trace time is continuous (§III.A(2)); a [`StateInterval`] records
//! that a leaf resource was in a given state over `[begin, end)`. Point
//! events (e.g. message send/recv markers) are kept for Gantt rendering and
//! diagnostics but do not enter the microscopic model.

use crate::hierarchy::LeafId;
use crate::state::StateId;

/// Timestamps are seconds since the trace origin.
pub type Time = f64;

/// A resource occupying one state over a half-open time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateInterval {
    /// The leaf resource producing the event.
    pub resource: LeafId,
    /// The state occupied.
    pub state: StateId,
    /// Interval start (inclusive).
    pub begin: Time,
    /// Interval end (exclusive).
    pub end: Time,
}

impl StateInterval {
    /// Construct an interval; `end` must be ≥ `begin`.
    pub fn new(resource: LeafId, state: StateId, begin: Time, end: Time) -> Self {
        debug_assert!(end >= begin, "interval must be non-negative");
        Self {
            resource,
            state,
            begin,
            end,
        }
    }

    /// Interval length.
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.begin
    }
}

/// Kinds of point events retained for diagnostics / Gantt arrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// A message left `resource` towards `peer`.
    MsgSend {
        /// Destination resource.
        peer: LeafId,
    },
    /// A message arrived at `resource` from `peer`.
    MsgRecv {
        /// Source resource.
        peer: LeafId,
    },
    /// Free-form marker.
    Marker,
}

/// A point event at a single timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEvent {
    /// The resource where the event occurred.
    pub resource: LeafId,
    /// Event timestamp.
    pub time: Time,
    /// What happened.
    pub kind: PointKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_duration() {
        let iv = StateInterval::new(LeafId(0), StateId(1), 1.5, 4.0);
        assert!((iv.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_interval_is_allowed() {
        let iv = StateInterval::new(LeafId(3), StateId(0), 2.0, 2.0);
        assert_eq!(iv.duration(), 0.0);
    }

    #[test]
    fn point_event_kinds() {
        let e = PointEvent {
            resource: LeafId(1),
            time: 0.25,
            kind: PointKind::MsgSend { peer: LeafId(2) },
        };
        match e.kind {
            PointKind::MsgSend { peer } => assert_eq!(peer, LeafId(2)),
            _ => panic!("wrong kind"),
        }
    }
}
