//! Push-based streaming ingestion: the [`EventSink`] trait and its sinks.
//!
//! The paper's pipeline starts with *trace reading* and *microscopic
//! description* — the two rows that dominate Table II. This module turns
//! that front half into a push architecture: a format decoder parses a
//! byte stream and **drives** a sink through three phases
//!
//! ```text
//!            declarations              events                end
//! decoder ──► begin(&StreamHeader) ──► interval()/point()* ──► end()
//! ```
//!
//! so the *reader* (one per format, in `ocelotl-format`) and the *consumer*
//! are decoupled. Consumers provided here:
//!
//! - [`TraceSink`] — full materialization into a [`Trace`] (the classic
//!   path, kept for conversion/round-trip use cases);
//! - [`ModelSink`] — direct metric-aware [`MicroModel`] construction
//!   (states **or** event density) with O(model) memory: events fold into
//!   the `d_x(s,t)` array through a bounded record buffer that is flushed
//!   with a chunked parallel fold over disjoint resource ranges;
//! - [`ScanSink`] — O(1) pass collecting the observed time range and event
//!   counts (the first pass of two-pass ingestion, and `info --stats`);
//! - [`TeeSink`] — drive two sinks from one decode pass.
//!
//! For sharded ingestion, [`ModelSink::finish_partial`] stops before final
//! assembly and yields a [`PartialModel`] — the mergeable raw accumulator.
//! Partials from shards of one stream combine with
//! [`PartialModel::absorb`] (fixed summation order), per-file partials of a
//! multi-file trace graft into a union with [`PartialModel::mount`], and
//! [`PartialModel::into_model`] then runs pseudo-state interning and peak
//! normalization exactly once on the merged result.
//!
//! ## Determinism
//!
//! [`ModelSink`] partitions work by *resource*, so every cell of the model
//! receives its contributions in file order regardless of worker count —
//! the result is bit-identical to a sequential fold over the same stream,
//! and therefore bit-identical to materializing a [`Trace`] first and
//! calling [`MicroModel::from_trace`] on it (sequential path).
//!
//! ## Flow control
//!
//! [`EventSink::begin`] returns `bool`: `false` tells the decoder to stop
//! after the declarations (a clean early exit, not an error). [`ModelSink`]
//! uses this when the header declares no time range — the caller then runs
//! a bounded two-pass scan ([`ScanSink`] first, then [`ModelSink`] with
//! [`ModelSink::with_range`]).

use crate::density::{MARKER_NAME, RECV_NAME, SEND_NAME};
use crate::event::{PointEvent, PointKind, Time};
use crate::hierarchy::{Hierarchy, LeafId};
use crate::micro::MicroModel;
use crate::slicing::TimeGrid;
use crate::state::{StateId, StateRegistry};
use crate::trace::{Trace, TraceBuilder};
use rayon::prelude::*;
use std::fmt;

/// Everything a decoder knows before the first event record.
#[derive(Debug, Clone)]
pub struct StreamHeader {
    /// The resource hierarchy (finalized: no declarations may follow).
    pub hierarchy: Hierarchy,
    /// The declared states.
    pub states: StateRegistry,
    /// Free-form metadata pairs.
    pub metadata: Vec<(String, String)>,
    /// The declared trace time range, if the format carries one
    /// (BTF header, PTF `%range`; Pajé has none).
    pub range: Option<(Time, Time)>,
}

/// A consumer of one decoded event stream. See the module docs for the
/// calling protocol; decoders validate records (resource/state in range,
/// finite times, `end ≥ begin`) *before* invoking the sink, so sink
/// implementations are infallible.
pub trait EventSink {
    /// Declarations are complete. Return `false` to stop the decode after
    /// the header (clean early exit — not an error).
    fn begin(&mut self, header: &StreamHeader) -> bool;

    /// One state interval `[begin, end)` on `resource`.
    fn interval(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time);

    /// One point event (ignored by default: point events do not enter the
    /// state-time microscopic model).
    fn point(&mut self, ev: &PointEvent) {
        let _ = ev;
    }

    /// The stream ended cleanly.
    fn end(&mut self) {}
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

/// Full materialization: collects the stream into a [`Trace`]. This is the
/// memory-heavy O(|events|) path — analysis commands should prefer
/// [`ModelSink`]; the trace sink survives for conversion and round-trip
/// use cases that genuinely need every event.
#[derive(Default)]
pub struct TraceSink {
    builder: Option<TraceBuilder>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The materialized trace; `None` if the decoder never reached
    /// [`EventSink::begin`] (e.g. an empty stream).
    pub fn into_trace(self) -> Option<Trace> {
        self.builder.map(TraceBuilder::build)
    }
}

impl EventSink for TraceSink {
    fn begin(&mut self, header: &StreamHeader) -> bool {
        let mut b = TraceBuilder::new(header.hierarchy.clone()).with_states(header.states.clone());
        for (k, v) in &header.metadata {
            b.push_meta(k, v);
        }
        self.builder = Some(b);
        true
    }

    fn interval(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time) {
        self.builder
            .as_mut()
            .expect("begin before events")
            .push_state(resource, state, begin, end);
    }

    fn point(&mut self, ev: &PointEvent) {
        self.builder
            .as_mut()
            .expect("begin before events")
            .push_point(*ev);
    }
}

// ---------------------------------------------------------------------------
// ScanSink
// ---------------------------------------------------------------------------

/// O(1)-memory scan: observed time extent plus record counts. The extent
/// uses exactly [`TraceBuilder`]'s semantics (intervals extend it by
/// `[begin, end]`, points by their timestamp), so a grid built from it is
/// bit-identical to the one [`MicroModel::from_trace`] would derive.
#[derive(Debug, Default)]
pub struct ScanSink {
    /// The captured header (cloned), once `begin` ran.
    pub header: Option<StreamHeader>,
    /// Number of interval records seen.
    pub intervals: u64,
    /// Number of point records seen.
    pub points: u64,
    t_min: f64,
    t_max: f64,
}

impl ScanSink {
    /// An empty scan.
    pub fn new() -> Self {
        Self {
            header: None,
            intervals: 0,
            points: 0,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }

    /// Observed `[min, max]` extent; `None` when the stream had no events.
    pub fn observed_range(&self) -> Option<(Time, Time)> {
        (self.intervals + self.points > 0).then_some((self.t_min, self.t_max))
    }

    /// Event count in the paper's Table II convention (2 per interval:
    /// enter + leave, plus 1 per point event).
    pub fn event_count(&self) -> u64 {
        self.intervals * 2 + self.points
    }
}

impl EventSink for ScanSink {
    fn begin(&mut self, header: &StreamHeader) -> bool {
        self.header = Some(header.clone());
        true
    }

    fn interval(&mut self, _resource: LeafId, _state: StateId, begin: Time, end: Time) {
        self.intervals += 1;
        self.t_min = self.t_min.min(begin);
        self.t_max = self.t_max.max(end);
    }

    fn point(&mut self, ev: &PointEvent) {
        self.points += 1;
        self.t_min = self.t_min.min(ev.time);
        self.t_max = self.t_max.max(ev.time);
    }
}

// ---------------------------------------------------------------------------
// ModelSink
// ---------------------------------------------------------------------------

/// Which microscopic metric a [`ModelSink`] accumulates. This generalizes
/// [`MicroBuilder`](crate::MicroBuilder) (states only) to every metric the
/// event stream can feed; the third family — variable traces — streams
/// through [`VariableBinner`](crate::variable::VariableBinner), since
/// samples are not part of the state-event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// State-time proportions `d_x(s,t)` (the paper's model).
    States,
    /// Peak-normalized event counts (the predecessor work's model),
    /// matching [`event_density`](crate::density::event_density) bit for
    /// bit: interval enter/leave events plus per-kind point pseudo-states.
    Density,
}

/// Why a [`ModelSink`] refused the stream at `begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSinkError {
    /// The header declared no time range and none was injected — run a
    /// scan pass first and retry with [`ModelSink::with_range`].
    MissingRange,
    /// The time range has no extent (`hi ≤ lo`): nothing to slice.
    EmptyRange,
    /// The decoder never reached `begin` (empty stream).
    NoHeader,
}

impl fmt::Display for ModelSinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSinkError::MissingRange => {
                write!(f, "header declares no time range (two-pass scan required)")
            }
            ModelSinkError::EmptyRange => write!(f, "trace has an empty time range"),
            ModelSinkError::NoHeader => write!(f, "stream ended before any declarations"),
        }
    }
}

impl std::error::Error for ModelSinkError {}

/// One buffered interval record awaiting the parallel flush.
#[derive(Clone, Copy)]
struct Rec {
    resource: u32,
    state: u16,
    begin: f64,
    end: f64,
}

/// Records buffered between flushes: bounds streaming memory to
/// O(model + chunk) while amortizing the parallel dispatch (16 Ki records
/// ≈ 384 KiB — small enough that the model dominates the footprint at any
/// real trace size, large enough that flushes stay rare).
const FLUSH_CHUNK: usize = 1 << 14;

struct Accum {
    hierarchy: Hierarchy,
    states: StateRegistry,
    grid: TimeGrid,
    /// `[leaf][state][slice]`, slice fastest — the `MicroModel` layout.
    durations: Vec<f64>,
    pending: Vec<Rec>,
    /// Per-kind point-event counts (`[leaf][slice]`), allocated lazily;
    /// density metric only. Order: send, recv, marker — the intern order
    /// of `event_counts`.
    pseudo: [Option<Vec<f64>>; 3],
    /// Kinds that occurred anywhere in the stream, even outside the grid:
    /// `event_counts` interns a pseudo-state for every kind *present in
    /// the trace* (the column stays all-zero when no event lands in a
    /// slice), and bit-identity requires matching that exactly.
    pseudo_seen: [bool; 3],
}

/// Streaming, metric-aware microscopic-model builder: the sink analysis
/// paths use. Memory is O(|S|·|X|·|T|) plus one bounded record buffer —
/// independent of the event count — and the flush is a chunked parallel
/// fold over disjoint resource ranges (bit-identical to sequential; see
/// the module docs).
pub struct ModelSink {
    kind: ModelKind,
    n_slices: usize,
    /// Refine the grid to [`hi_res_slices`] of the requested resolution
    /// (decided at `begin`, once the header reveals the leaf count).
    hi_res: bool,
    range_override: Option<(Time, Time)>,
    /// Sorted, deduplicated leaf ids to keep; `None` = keep everything.
    resource_filter: Option<Vec<u32>>,
    acc: Option<Accum>,
    refusal: Option<ModelSinkError>,
    intervals: u64,
    points: u64,
}

impl ModelSink {
    /// A sink slicing the declared time range into `n_slices` periods.
    pub fn new(kind: ModelKind, n_slices: usize) -> Self {
        assert!(n_slices >= 1, "need at least one slice");
        Self {
            kind,
            n_slices,
            hi_res: false,
            range_override: None,
            resource_filter: None,
            acc: None,
            refusal: None,
            intervals: 0,
            points: 0,
        }
    }

    /// A sink with an injected time range (the second pass of two-pass
    /// ingestion, or an explicit zoom window): the header's declared range
    /// is ignored.
    pub fn with_range(kind: ModelKind, n_slices: usize, range: (Time, Time)) -> Self {
        Self {
            range_override: Some(range),
            ..Self::new(kind, n_slices)
        }
    }

    /// A sink building the **super-resolution** intermediate for a
    /// requested resolution of `n_slices`: the grid is refined to
    /// [`hi_res_slices`]`(n_slices, n_leaves)` periods once the header is
    /// known, and the caller finishes with [`ModelSink::finish_raw`] (the
    /// density metric stays unnormalized so any coarser model can be
    /// derived later by exact rebinning).
    pub fn hi_res(kind: ModelKind, n_slices: usize) -> Self {
        Self {
            hi_res: true,
            ..Self::new(kind, n_slices)
        }
    }

    /// [`ModelSink::hi_res`] with an injected time range (two-pass
    /// ingestion of range-less formats).
    pub fn hi_res_with_range(kind: ModelKind, n_slices: usize, range: (Time, Time)) -> Self {
        Self {
            hi_res: true,
            range_override: Some(range),
            ..Self::new(kind, n_slices)
        }
    }

    /// `true` when `begin` refused the stream because no time range was
    /// available (the caller should run the two-pass scan).
    pub fn needs_range(&self) -> bool {
        self.refusal == Some(ModelSinkError::MissingRange)
    }

    /// Restrict the model to a set of leaf resources: events on any other
    /// resource contribute nothing to any cell and are not counted.
    /// Filtered point events still record their kind's presence — the
    /// density pseudo-state set is trace-global (see
    /// [`ModelSink::note_point_kinds`]), so a filtered model keeps the
    /// same state axis as an unfiltered one.
    pub fn set_resource_filter(&mut self, resources: &[u32]) {
        let mut keep = resources.to_vec();
        keep.sort_unstable();
        keep.dedup();
        self.resource_filter = Some(keep);
    }

    /// Record point-event kinds as present in the stream without counting
    /// any event. Index-backed readers that skip whole chunks by time
    /// range call this with the skipped chunks' kind masks: `event_counts`
    /// interns a pseudo-state for every kind present *anywhere* in the
    /// trace (even outside the grid), so matching a full decode bit for
    /// bit requires noting the kinds the skipped bytes carried.
    pub fn note_point_kinds(&mut self, send: bool, recv: bool, marker: bool) {
        if let Some(acc) = self.acc.as_mut() {
            acc.pseudo_seen[0] |= send;
            acc.pseudo_seen[1] |= recv;
            acc.pseudo_seen[2] |= marker;
        }
    }

    #[inline]
    fn filtered_out(&self, resource: LeafId) -> bool {
        match &self.resource_filter {
            Some(keep) => keep.binary_search(&resource.0).is_err(),
            None => false,
        }
    }

    /// Interval / point records consumed.
    pub fn counts(&self) -> (u64, u64) {
        (self.intervals, self.points)
    }

    /// Resident footprint of the accumulator in bytes (model array, pseudo
    /// layers, record buffer) — the "peak ingest memory" that replaces the
    /// O(|events|) trace materialization.
    pub fn peak_bytes(&self) -> u64 {
        let f = std::mem::size_of::<f64>() as u64;
        let r = std::mem::size_of::<Rec>() as u64;
        match &self.acc {
            None => 0,
            Some(acc) => {
                let pseudo: u64 = acc
                    .pseudo
                    .iter()
                    .flatten()
                    .map(|v| v.len() as u64 * f)
                    .sum();
                acc.durations.len() as u64 * f + pseudo + acc.pending.capacity() as u64 * r
            }
        }
    }

    /// Finalize: flush the buffer and assemble the model. For the density
    /// metric this merges the point pseudo-states and applies the peak
    /// normalization, reproducing `event_density` exactly.
    pub fn finish(self) -> Result<MicroModel, ModelSinkError> {
        self.finish_inner(true)
    }

    /// Finalize **without** the density peak normalization: the raw
    /// per-cell event counts (pseudo-states merged) for the hi-res
    /// intermediate, from which any coarser density model is derived by
    /// rebinning + normalizing at the target resolution. For the states
    /// metric this equals [`ModelSink::finish`] (durations carry no
    /// normalization).
    pub fn finish_raw(self) -> Result<MicroModel, ModelSinkError> {
        self.finish_inner(false)
    }

    fn finish_inner(self, normalize: bool) -> Result<MicroModel, ModelSinkError> {
        Ok(self.finish_partial()?.into_model(normalize))
    }

    /// Finalize into a **partial model**: the flushed raw accumulator with
    /// pseudo-state interning and peak normalization still pending. This is
    /// the per-shard half of sharded ingestion — partials from shards of
    /// the same stream combine with [`PartialModel::absorb`], and the
    /// finishing steps run exactly once on the merged result, so a merged
    /// model goes through the same final assembly as a sequential one.
    pub fn finish_partial(mut self) -> Result<PartialModel, ModelSinkError> {
        if let Some(reason) = self.refusal {
            return Err(reason);
        }
        let Some(mut acc) = self.acc.take() else {
            return Err(ModelSinkError::NoHeader);
        };
        flush(&mut acc, self.kind);
        Ok(PartialModel {
            kind: self.kind,
            hierarchy: acc.hierarchy,
            states: acc.states,
            grid: acc.grid,
            durations: acc.durations,
            pseudo: acc.pseudo,
            pseudo_seen: acc.pseudo_seen,
            intervals: self.intervals,
            points: self.points,
        })
    }
}

// ---------------------------------------------------------------------------
// PartialModel
// ---------------------------------------------------------------------------

/// A flushed, not-yet-finalized model: the mergeable unit of sharded
/// ingestion.
///
/// A partial holds the raw per-cell accumulations of one shard — durations
/// over the *declared* states, plus the density metric's pseudo-state
/// layers still unmerged and unnormalized. Two combination operations are
/// provided:
///
/// - [`absorb`](PartialModel::absorb) — shards of the **same stream**
///   (identical hierarchy, states, grid): cells sum elementwise. Callers
///   merge shard partials left-to-right in shard order; since the shard
///   plan is a pure function of the trace, that fixed summation order makes
///   the merged result bit-identical at any worker count.
/// - [`mount`](PartialModel::mount) — a **per-file** partial grafted into a
///   multi-file union at a leaf offset: every cell has exactly one
///   contributing file, so the union is exact and order-invariant.
///
/// [`into_model`](PartialModel::into_model) then performs final assembly
/// once — pseudo-state interning and (density) peak normalization — via the
/// same code path a sequential [`ModelSink::finish`] uses.
pub struct PartialModel {
    kind: ModelKind,
    hierarchy: Hierarchy,
    /// Declared states only; pseudo-states are interned at final assembly.
    states: StateRegistry,
    grid: TimeGrid,
    /// `[leaf][declared state][slice]`, slice fastest.
    durations: Vec<f64>,
    pseudo: [Option<Vec<f64>>; 3],
    pseudo_seen: [bool; 3],
    intervals: u64,
    points: u64,
}

impl PartialModel {
    /// An all-zero partial over the given shape — the seed of a multi-file
    /// union (the registry must already contain every state any mounted
    /// file declares, interned in the canonical file order).
    pub fn empty(
        kind: ModelKind,
        hierarchy: Hierarchy,
        states: StateRegistry,
        grid: TimeGrid,
    ) -> Self {
        let size = hierarchy.n_leaves() * states.len() * grid.n_slices();
        Self {
            kind,
            hierarchy,
            states,
            grid,
            durations: vec![0.0; size],
            pseudo: [None, None, None],
            pseudo_seen: [false; 3],
            intervals: 0,
            points: 0,
        }
    }

    /// The metric this partial accumulates.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The time grid (shared by every mergeable partial).
    pub fn grid(&self) -> TimeGrid {
        self.grid
    }

    /// Interval / point records consumed so far (summed across merges).
    pub fn counts(&self) -> (u64, u64) {
        (self.intervals, self.points)
    }

    /// Resident footprint in bytes (durations plus pseudo layers).
    pub fn memory_bytes(&self) -> u64 {
        let f = std::mem::size_of::<f64>() as u64;
        let pseudo: u64 = self
            .pseudo
            .iter()
            .flatten()
            .map(|v| v.len() as u64 * f)
            .sum();
        self.durations.len() as u64 * f + pseudo
    }

    /// Merge a shard of the **same stream**: `other` must have the same
    /// kind, grid and model shape (shards share one header, so a mismatch
    /// is a caller bug and panics). Cells sum elementwise in a fixed
    /// order; pseudo layers add slot-wise and the seen flags union.
    pub fn absorb(&mut self, other: PartialModel) {
        assert_eq!(self.kind, other.kind, "merge across metrics");
        assert_eq!(self.grid, other.grid, "merge across grids");
        assert_eq!(
            self.hierarchy.n_leaves(),
            other.hierarchy.n_leaves(),
            "merge across hierarchies"
        );
        assert_eq!(
            self.states.len(),
            other.states.len(),
            "merge across registries"
        );
        assert_eq!(self.durations.len(), other.durations.len());
        for (d, s) in self.durations.iter_mut().zip(other.durations) {
            *d += s;
        }
        for slot in 0..3 {
            self.pseudo_seen[slot] |= other.pseudo_seen[slot];
        }
        for (mine, theirs) in self.pseudo.iter_mut().zip(other.pseudo) {
            if let Some(layer) = theirs {
                match mine {
                    // `x + 0 = x` exactly (counts are never −0.0), so moving
                    // the layer equals adding it to a fresh zero layer.
                    None => *mine = Some(layer),
                    Some(m) => {
                        for (d, s) in m.iter_mut().zip(layer) {
                            *d += s;
                        }
                    }
                }
            }
        }
        self.intervals += other.intervals;
        self.points += other.points;
    }

    /// Graft a per-file partial into a multi-file union at `leaf_offset`:
    /// the file's leaves land on `leaf_offset..leaf_offset + n`, its
    /// declared states are remapped **by name** into the union registry,
    /// and pseudo layers land slot-wise at the same offset. Every union
    /// cell has exactly one contributing file, so the graft is exact and
    /// the mount order does not affect a single bit.
    pub fn mount(&mut self, other: PartialModel, leaf_offset: usize) {
        assert_eq!(self.kind, other.kind, "mount across metrics");
        assert_eq!(self.grid, other.grid, "mount across grids");
        let n_slices = self.grid.n_slices();
        let n_states = self.states.len();
        let o_states = other.states.len();
        let o_leaves = other.hierarchy.n_leaves();
        assert!(
            leaf_offset + o_leaves <= self.hierarchy.n_leaves(),
            "mounted file exceeds the union hierarchy"
        );
        let remap: Vec<usize> = other
            .states
            .iter()
            .map(|(_, name)| {
                self.states
                    .get(name)
                    .expect("mounted file declares a state missing from the union registry")
                    .index()
            })
            .collect();
        for leaf in 0..o_leaves {
            for (st, &mapped) in remap.iter().enumerate() {
                let src = (leaf * o_states + st) * n_slices;
                let dst = ((leaf_offset + leaf) * n_states + mapped) * n_slices;
                for k in 0..n_slices {
                    self.durations[dst + k] += other.durations[src + k];
                }
            }
        }
        for slot in 0..3 {
            self.pseudo_seen[slot] |= other.pseudo_seen[slot];
            if let Some(layer) = &other.pseudo[slot] {
                let mine = self.pseudo[slot]
                    .get_or_insert_with(|| vec![0.0; self.hierarchy.n_leaves() * n_slices]);
                for leaf in 0..o_leaves {
                    for k in 0..n_slices {
                        mine[(leaf_offset + leaf) * n_slices + k] += layer[leaf * n_slices + k];
                    }
                }
            }
        }
        self.intervals += other.intervals;
        self.points += other.points;
    }

    /// Final assembly, run exactly once on the fully merged partial: for
    /// the density metric, intern the pseudo-states and (when `normalize`)
    /// apply the peak normalization — the same steps, in the same code, a
    /// sequential [`ModelSink::finish`] performs.
    pub fn into_model(self, normalize: bool) -> MicroModel {
        let acc = Accum {
            hierarchy: self.hierarchy,
            states: self.states,
            grid: self.grid,
            durations: self.durations,
            pending: Vec::new(),
            pseudo: self.pseudo,
            pseudo_seen: self.pseudo_seen,
        };
        match self.kind {
            ModelKind::States => {
                MicroModel::from_dense(acc.hierarchy, acc.states, acc.grid, acc.durations)
            }
            ModelKind::Density => finish_density(acc, normalize),
        }
    }
}

impl EventSink for ModelSink {
    fn begin(&mut self, header: &StreamHeader) -> bool {
        let range = self.range_override.or(header.range);
        let Some((lo, hi)) = range else {
            self.refusal = Some(ModelSinkError::MissingRange);
            return false;
        };
        let valid = lo.is_finite() && hi.is_finite() && hi > lo;
        if !valid {
            self.refusal = Some(ModelSinkError::EmptyRange);
            return false;
        }
        let n_slices = if self.hi_res {
            crate::slicing::hi_res_slices(
                self.n_slices,
                header.hierarchy.n_leaves(),
                header.states.len(),
            )
        } else {
            self.n_slices
        };
        let grid = TimeGrid::new(lo, hi, n_slices);
        let size = header.hierarchy.n_leaves() * header.states.len() * n_slices;
        self.acc = Some(Accum {
            hierarchy: header.hierarchy.clone(),
            states: header.states.clone(),
            grid,
            durations: vec![0.0; size],
            pending: Vec::with_capacity(FLUSH_CHUNK),
            pseudo: [None, None, None],
            pseudo_seen: [false; 3],
        });
        true
    }

    fn interval(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time) {
        if self.filtered_out(resource) {
            return;
        }
        let Some(acc) = self.acc.as_mut() else {
            return;
        };
        self.intervals += 1;
        acc.pending.push(Rec {
            resource: resource.0,
            state: state.0,
            begin,
            end,
        });
        if acc.pending.len() >= FLUSH_CHUNK {
            flush(acc, self.kind);
        }
    }

    fn point(&mut self, ev: &PointEvent) {
        let slot = match ev.kind {
            PointKind::MsgSend { .. } => 0,
            PointKind::MsgRecv { .. } => 1,
            PointKind::Marker => 2,
        };
        if self.filtered_out(ev.resource) {
            // Kind presence is trace-global: keep the pseudo-state axis
            // even though the event itself is dropped uncounted.
            if self.kind == ModelKind::Density {
                if let Some(acc) = self.acc.as_mut() {
                    acc.pseudo_seen[slot] = true;
                }
            }
            return;
        }
        let Some(acc) = self.acc.as_mut() else {
            return;
        };
        self.points += 1;
        if self.kind != ModelKind::Density {
            return;
        }
        let grid = acc.grid;
        acc.pseudo_seen[slot] = true;
        if ev.time < grid.start() || ev.time > grid.end() {
            return;
        }
        let n_slices = grid.n_slices();
        let counts =
            acc.pseudo[slot].get_or_insert_with(|| vec![0.0; acc.hierarchy.n_leaves() * n_slices]);
        counts[ev.resource.index() * n_slices + grid.slice_of(ev.time)] += 1.0;
    }
}

/// Apply the buffered records: a chunked parallel fold over disjoint
/// contiguous resource ranges. Each worker owns one slab of the durations
/// array and scans the whole buffer for its leaves, so every cell receives
/// its contributions in stream order — the result is bit-identical to a
/// sequential fold for any worker count.
fn flush(acc: &mut Accum, kind: ModelKind) {
    if acc.pending.is_empty() {
        return;
    }
    let n_leaves = acc.hierarchy.n_leaves();
    let n_states = acc.states.len();
    let n_slices = acc.grid.n_slices();
    let row = n_states * n_slices;
    if row == 0 || n_leaves == 0 {
        // No (leaf, state) cells can exist; decoders validate records
        // against the header, so nothing could have been buffered.
        acc.pending.clear();
        return;
    }
    let workers = rayon::max_threads().clamp(1, n_leaves);
    let leaves_per = n_leaves.div_ceil(workers);
    let grid = acc.grid;
    let pending = &acc.pending;
    let slabs: Vec<(usize, &mut [f64])> = acc
        .durations
        .chunks_mut(leaves_per * row)
        .enumerate()
        .map(|(i, slab)| (i * leaves_per, slab))
        .collect();
    slabs.into_par_iter().for_each(|(first_leaf, slab)| {
        let leaf_end = first_leaf + slab.len() / row;
        for rec in pending {
            let leaf = rec.resource as usize;
            if leaf < first_leaf || leaf >= leaf_end {
                continue;
            }
            let base = ((leaf - first_leaf) * n_states + rec.state as usize) * n_slices;
            fold_interval(
                kind,
                &mut slab[base..base + n_slices],
                &grid,
                rec.begin,
                rec.end,
            );
        }
    });
    acc.pending.clear();
}

/// Fold one interval record into a single `(leaf, state)` time series over
/// `grid`. This is **the** per-record accumulation kernel: the streaming
/// flush above and the live append path (`HiResModel::append`) both call
/// it, so an incrementally grown model and a batch ingest of the same
/// stream are literally the same computation — the bit-identity argument
/// reduces to "same grid, same record order".
///
/// For [`ModelKind::States`] the interval's overlap with each slice is
/// prorated in; for [`ModelKind::Density`] the enter and leave boundary
/// events each count 1.0 in their slice (either may fall outside the
/// grid independently).
#[inline]
pub fn fold_interval(kind: ModelKind, row: &mut [f64], grid: &TimeGrid, begin: Time, end: Time) {
    match kind {
        ModelKind::States => {
            for (slice, overlap) in grid.prorate(begin, end) {
                row[slice] += overlap;
            }
        }
        ModelKind::Density => {
            for ts in [begin, end] {
                if ts >= grid.start() && ts <= grid.end() {
                    row[grid.slice_of(ts)] += 1.0;
                }
            }
        }
    }
}

/// Merge the pseudo-state layers and (when `normalize`) apply the peak
/// normalization — the streaming equivalent of `event_counts` +
/// `event_density`. `normalize: false` leaves the raw counts in place
/// for the hi-res intermediate.
fn finish_density(mut acc: Accum, normalize: bool) -> MicroModel {
    let n_leaves = acc.hierarchy.n_leaves();
    let n_slices = acc.grid.n_slices();
    // Intern pseudo-states for the kinds that occurred, in the same order
    // `event_counts` uses (send, recv, marker), then widen the array.
    let names = [SEND_NAME, RECV_NAME, MARKER_NAME];
    let mut columns: Vec<(StateId, Vec<f64>)> = Vec::new();
    for (slot, name) in names.into_iter().enumerate() {
        if acc.pseudo_seen[slot] {
            // An all-zero layer when every event of this kind fell outside
            // the grid — exactly what `event_counts` produces.
            let v = acc.pseudo[slot]
                .take()
                .unwrap_or_else(|| vec![0.0; n_leaves * n_slices]);
            columns.push((acc.states.intern(name), v));
        }
    }
    let n_old = acc.durations.len() / (n_leaves * n_slices).max(1);
    let n_states = acc.states.len();
    let mut counts = vec![0.0f64; n_leaves * n_states * n_slices];
    for leaf in 0..n_leaves {
        let src = leaf * n_old * n_slices;
        let dst = leaf * n_states * n_slices;
        counts[dst..dst + n_old * n_slices]
            .copy_from_slice(&acc.durations[src..src + n_old * n_slices]);
        for (sid, layer) in &columns {
            let dst = (leaf * n_states + sid.index()) * n_slices;
            for (t, &c) in layer[leaf * n_slices..(leaf + 1) * n_slices]
                .iter()
                .enumerate()
            {
                // `+=`: a declared state may share a pseudo-state's name,
                // in which case `event_counts` merges them too.
                counts[dst + t] += c;
            }
        }
    }
    // Peak normalization, exactly as `event_density` (one shared kernel).
    if normalize {
        crate::density::peak_normalize(&mut counts, acc.grid.slice_duration());
    }
    MicroModel::from_dense(acc.hierarchy, acc.states, acc.grid, counts)
}

// ---------------------------------------------------------------------------
// TeeSink
// ---------------------------------------------------------------------------

/// Drive two sinks from one decode pass (e.g. build the model *and*
/// count events, or materialize a trace while aggregating). Each side's
/// `begin` decision is honored independently; the decode continues while
/// at least one side wants the events.
pub struct TeeSink<A, B> {
    a: A,
    b: B,
    on_a: bool,
    on_b: bool,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Tee into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Self {
            a,
            b,
            on_a: false,
            on_b: false,
        }
    }

    /// The two sinks back.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn begin(&mut self, header: &StreamHeader) -> bool {
        self.on_a = self.a.begin(header);
        self.on_b = self.b.begin(header);
        self.on_a || self.on_b
    }

    fn interval(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time) {
        if self.on_a {
            self.a.interval(resource, state, begin, end);
        }
        if self.on_b {
            self.b.interval(resource, state, begin, end);
        }
    }

    fn point(&mut self, ev: &PointEvent) {
        if self.on_a {
            self.a.point(ev);
        }
        if self.on_b {
            self.b.point(ev);
        }
    }

    fn end(&mut self) {
        if self.on_a {
            self.a.end();
        }
        if self.on_b {
            self.b.end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::event_density;
    use crate::event::PointKind;

    fn header(n_leaves: usize, state_names: &[&str], range: Option<(f64, f64)>) -> StreamHeader {
        StreamHeader {
            hierarchy: Hierarchy::flat(n_leaves, "p"),
            states: StateRegistry::from_names(state_names.iter().copied()),
            metadata: vec![("app".into(), "sink test".into())],
            range,
        }
    }

    /// Replay a trace's events through a sink, as a decoder would.
    fn replay<S: EventSink>(trace: &Trace, range: Option<(f64, f64)>, sink: &mut S) -> bool {
        let h = StreamHeader {
            hierarchy: trace.hierarchy.clone(),
            states: trace.states.clone(),
            metadata: trace.metadata.clone(),
            range,
        };
        if !sink.begin(&h) {
            return false;
        }
        for iv in &trace.intervals {
            sink.interval(iv.resource, iv.state, iv.begin, iv.end);
        }
        for p in &trace.points {
            sink.point(p);
        }
        sink.end();
        true
    }

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(Hierarchy::flat(3, "p"));
        let run = b.state("Run");
        let wait = b.state("Wait");
        b.push_state(LeafId(0), run, 0.0, 4.0);
        b.push_state(LeafId(0), wait, 4.0, 7.0);
        b.push_state(LeafId(1), run, 1.0, 9.5);
        b.push_state(LeafId(2), wait, 0.5, 3.25);
        b.push_point(PointEvent {
            resource: LeafId(1),
            time: 2.5,
            kind: PointKind::MsgSend { peer: LeafId(2) },
        });
        b.push_point(PointEvent {
            resource: LeafId(2),
            time: 2.75,
            kind: PointKind::MsgRecv { peer: LeafId(1) },
        });
        b.push_meta("app", "sink test");
        b.build()
    }

    fn assert_models_bit_identical(a: &MicroModel, b: &MicroModel) {
        assert_eq!(a.n_leaves(), b.n_leaves());
        assert_eq!(a.n_states(), b.n_states());
        assert_eq!(a.n_slices(), b.n_slices());
        assert_eq!(a.grid(), b.grid());
        for l in 0..a.n_leaves() {
            for x in 0..a.n_states() {
                for t in 0..a.n_slices() {
                    let (da, db) = (
                        a.duration(LeafId(l as u32), StateId(x as u16), t),
                        b.duration(LeafId(l as u32), StateId(x as u16), t),
                    );
                    assert_eq!(
                        da.to_bits(),
                        db.to_bits(),
                        "cell ({l},{x},{t}): {da} vs {db}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_sink_materializes_everything() {
        let t = sample_trace();
        let mut sink = TraceSink::new();
        assert!(replay(&t, t.time_range(), &mut sink));
        let back = sink.into_trace().unwrap();
        assert_eq!(back.intervals, t.intervals);
        assert_eq!(back.points, t.points);
        assert_eq!(back.meta("app"), Some("sink test"));
        assert_eq!(back.time_range(), t.time_range());
    }

    #[test]
    fn model_sink_states_matches_from_trace_bitwise() {
        let t = sample_trace();
        let mut sink = ModelSink::new(ModelKind::States, 7);
        assert!(replay(&t, t.time_range(), &mut sink));
        let streamed = sink.finish().unwrap();
        let batch = MicroModel::from_trace(&t, 7).unwrap();
        assert_models_bit_identical(&streamed, &batch);
    }

    #[test]
    fn model_sink_density_matches_event_density_bitwise() {
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();
        let grid = TimeGrid::new(lo, hi, 9);
        let mut sink = ModelSink::new(ModelKind::Density, 9);
        assert!(replay(&t, Some((lo, hi)), &mut sink));
        let streamed = sink.finish().unwrap();
        let batch = event_density(&t, grid);
        assert_eq!(
            streamed.states().get("evt:send"),
            batch.states().get("evt:send")
        );
        assert_models_bit_identical(&streamed, &batch);
    }

    #[test]
    fn density_interns_pseudo_states_for_out_of_grid_points() {
        // `event_counts` interns a pseudo-state for every kind present in
        // the trace even when all its events fall outside the grid (the
        // column is all-zero); the sink must match that bit for bit.
        let mut b = TraceBuilder::new(Hierarchy::flat(2, "p"));
        let s = b.state("S");
        b.push_state(LeafId(0), s, 0.0, 4.0);
        b.push_point(PointEvent {
            resource: LeafId(1),
            time: 20.0, // outside the [0, 4] window below
            kind: PointKind::MsgSend { peer: LeafId(0) },
        });
        let t = b.build();
        let grid = TimeGrid::new(0.0, 4.0, 4);
        let mut sink = ModelSink::with_range(ModelKind::Density, 4, (0.0, 4.0));
        assert!(replay(&t, None, &mut sink));
        let streamed = sink.finish().unwrap();
        let batch = crate::density::event_density(&t, grid);
        assert!(streamed.states().get("evt:send").is_some());
        assert_models_bit_identical(&streamed, &batch);
    }

    #[test]
    fn model_sink_is_bit_stable_across_thread_counts() {
        // Enough records to cross the flush boundary at least twice.
        let mut b = TraceBuilder::new(Hierarchy::flat(5, "p"));
        let s = b.state("S");
        let n = 3 * FLUSH_CHUNK / 2;
        for i in 0..n {
            let t0 = i as f64 * 1e-3;
            b.push_state(LeafId((i % 5) as u32), s, t0, t0 + 0.37e-3);
        }
        let t = b.build();

        let run = |threads: usize| {
            rayon::set_max_threads(threads);
            let mut sink = ModelSink::new(ModelKind::States, 16);
            assert!(replay(&t, t.time_range(), &mut sink));
            sink.finish().unwrap()
        };
        let seq = run(1);
        let par = run(8);
        rayon::set_max_threads(8);
        assert_models_bit_identical(&seq, &par);
        // And both match the sequential batch builder.
        let batch = {
            let grid = *seq.grid();
            let mut mb = crate::MicroBuilder::new(t.hierarchy.clone(), t.states.clone(), grid);
            for iv in &t.intervals {
                mb.add(iv.resource, iv.state, iv.begin, iv.end);
            }
            mb.finish()
        };
        assert_models_bit_identical(&seq, &batch);
    }

    #[test]
    fn model_sink_without_range_asks_for_two_pass() {
        let mut sink = ModelSink::new(ModelKind::States, 4);
        assert!(!sink.begin(&header(2, &["S"], None)));
        assert!(sink.needs_range());
        assert_eq!(sink.finish().unwrap_err(), ModelSinkError::MissingRange);
    }

    #[test]
    fn model_sink_rejects_empty_range() {
        let mut sink = ModelSink::new(ModelKind::States, 4);
        assert!(!sink.begin(&header(2, &["S"], Some((3.0, 3.0)))));
        assert!(!sink.needs_range());
        assert_eq!(sink.finish().unwrap_err(), ModelSinkError::EmptyRange);
    }

    #[test]
    fn model_sink_range_override_wins() {
        let t = sample_trace();
        let mut sink = ModelSink::with_range(ModelKind::States, 5, (0.0, 10.0));
        assert!(replay(&t, None, &mut sink));
        let m = sink.finish().unwrap();
        assert_eq!(m.grid().start(), 0.0);
        assert_eq!(m.grid().end(), 10.0);
    }

    #[test]
    fn model_sink_reports_counts_and_footprint() {
        let t = sample_trace();
        let mut sink = ModelSink::new(ModelKind::States, 5);
        assert!(replay(&t, t.time_range(), &mut sink));
        assert_eq!(sink.counts(), (4, 2));
        // 3 leaves × 2 states × 5 slices × 8 bytes plus the record buffer.
        assert!(sink.peak_bytes() >= 3 * 2 * 5 * 8);
        let m = sink.finish().unwrap();
        assert_eq!(m.n_slices(), 5);
    }

    #[test]
    fn hi_res_sink_refines_the_grid_and_skips_normalization() {
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();

        // States: the grid refines to hi_res_slices(n, |S|) periods.
        let mut sink = ModelSink::hi_res(ModelKind::States, 7);
        assert!(replay(&t, Some((lo, hi)), &mut sink));
        let raw = sink.finish_raw().unwrap();
        assert_eq!(
            raw.n_slices(),
            crate::slicing::hi_res_slices(7, 3, 2),
            "hi-res grid"
        );
        assert_eq!(raw.grid().start(), lo);
        assert_eq!(raw.grid().end(), hi);
        // Total mass is conserved by refinement (same prorated intervals).
        let expected: f64 = t.intervals.iter().map(|iv| iv.duration()).sum();
        assert!((raw.grand_total() - expected).abs() < 1e-9);

        // Density raw: whole event counts, no peak normalization.
        let mut sink = ModelSink::hi_res(ModelKind::Density, 7);
        assert!(replay(&t, Some((lo, hi)), &mut sink));
        let raw = sink.finish_raw().unwrap();
        assert!(raw.states().get("evt:send").is_some());
        let total: f64 = (0..raw.n_leaves())
            .flat_map(|l| (0..raw.n_states()).map(move |x| (l, x)))
            .map(|(l, x)| {
                raw.series(LeafId(l as u32), StateId(x as u16))
                    .iter()
                    .sum::<f64>()
            })
            .sum();
        // 4 intervals × 2 boundary events + 2 point events = 10 counts.
        assert_eq!(total, 10.0, "raw density cells are unscaled counts");
    }

    /// Replay only a contiguous sub-range of the trace's records (intervals
    /// then points, file order) — one "shard" of the stream.
    fn replay_shard<S: EventSink>(
        trace: &Trace,
        range: Option<(f64, f64)>,
        lo: usize,
        hi: usize,
        sink: &mut S,
    ) {
        let h = StreamHeader {
            hierarchy: trace.hierarchy.clone(),
            states: trace.states.clone(),
            metadata: trace.metadata.clone(),
            range,
        };
        assert!(sink.begin(&h));
        for (i, iv) in trace.intervals.iter().enumerate() {
            if (lo..hi).contains(&i) {
                sink.interval(iv.resource, iv.state, iv.begin, iv.end);
            }
        }
        let n_iv = trace.intervals.len();
        for (i, p) in trace.points.iter().enumerate() {
            if (lo..hi).contains(&(n_iv + i)) {
                sink.point(p);
            }
        }
        sink.end();
    }

    #[test]
    fn density_absorb_matches_sequential_at_any_split() {
        // Density cells are integer event counts: f64 addition of integers
        // is exact, so a shard merge equals the sequential fold bitwise at
        // *every* split point.
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();
        let mut seq = ModelSink::new(ModelKind::Density, 9);
        assert!(replay(&t, Some((lo, hi)), &mut seq));
        let seq = seq.finish().unwrap();
        let total = t.intervals.len() + t.points.len();
        for cut in 0..=total {
            let mut a = ModelSink::new(ModelKind::Density, 9);
            let mut b = ModelSink::new(ModelKind::Density, 9);
            replay_shard(&t, Some((lo, hi)), 0, cut, &mut a);
            replay_shard(&t, Some((lo, hi)), cut, total, &mut b);
            let mut merged = a.finish_partial().unwrap();
            merged.absorb(b.finish_partial().unwrap());
            assert_eq!(merged.counts(), (4, 2));
            assert_models_bit_identical(&merged.into_model(true), &seq);
        }
    }

    #[test]
    fn states_absorb_matches_sequential_on_disjoint_resources() {
        // When shards touch disjoint resources every cell has exactly one
        // contributor (`x + 0 = x` exactly), so the merge is bit-identical
        // to the sequential fold even for the f64 duration sums.
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();
        let mut seq = ModelSink::new(ModelKind::States, 7);
        assert!(replay(&t, Some((lo, hi)), &mut seq));
        let seq = seq.finish().unwrap();

        let mut parts = Vec::new();
        for leaf in 0..3u32 {
            let mut sink = ModelSink::new(ModelKind::States, 7);
            let h = StreamHeader {
                hierarchy: t.hierarchy.clone(),
                states: t.states.clone(),
                metadata: t.metadata.clone(),
                range: Some((lo, hi)),
            };
            assert!(sink.begin(&h));
            for iv in t.intervals.iter().filter(|iv| iv.resource.0 == leaf) {
                sink.interval(iv.resource, iv.state, iv.begin, iv.end);
            }
            sink.end();
            parts.push(sink.finish_partial().unwrap());
        }
        // Merge in *reverse* order: disjoint contributions are order-free.
        let mut merged = parts.pop().unwrap();
        while let Some(p) = parts.pop() {
            merged.absorb(p);
        }
        assert_models_bit_identical(&merged.into_model(true), &seq);
    }

    #[test]
    fn absorb_is_a_left_fold_over_shard_order() {
        // merge(merge(A, B), C) must equal folding [A, B, C] — the fixed
        // summation order the sharded reader relies on.
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();
        let total = t.intervals.len() + t.points.len();
        let shard = |lo_i: usize, hi_i: usize| {
            let mut s = ModelSink::new(ModelKind::States, 7);
            replay_shard(&t, Some((lo, hi)), lo_i, hi_i, &mut s);
            s.finish_partial().unwrap()
        };
        let mut paired = shard(0, 2);
        paired.absorb(shard(2, 4));
        paired.absorb(shard(4, total));
        let mut folded = shard(0, 2);
        for (a, b) in [(2, 4), (4, total)] {
            folded.absorb(shard(a, b));
        }
        assert_models_bit_identical(&paired.into_model(true), &folded.into_model(true));
    }

    #[test]
    fn mount_grafts_files_into_a_union_bitwise() {
        // Two single-file traces mounted under a union hierarchy must equal
        // replaying the combined stream over that union — for both metrics,
        // and regardless of mount order.
        let mk_file = |state: &str, leaf_times: &[(u32, f64, f64)]| {
            let mut b = TraceBuilder::new(Hierarchy::flat(2, "p"));
            let s = b.state(state);
            for &(leaf, t0, t1) in leaf_times {
                b.push_state(LeafId(leaf), s, t0, t1);
            }
            b.push_point(PointEvent {
                resource: LeafId(0),
                time: leaf_times[0].1,
                kind: PointKind::Marker,
            });
            b.build()
        };
        let f0 = mk_file("Run", &[(0, 0.0, 3.0), (1, 1.0, 4.0)]);
        let f1 = mk_file("Wait", &[(0, 0.5, 2.5), (1, 2.0, 6.0)]);
        let range = (0.0, 6.0);
        let grid = TimeGrid::new(range.0, range.1, 8);

        // Union shape: 4 leaves, states interned in file order.
        let mut union_h = crate::hierarchy::HierarchyBuilder::new("traces", "trace");
        for (i, f) in [&f0, &f1].into_iter().enumerate() {
            let root = union_h.add_child(union_h.root(), &format!("file{i}"), "file");
            for leaf in 0..f.hierarchy.n_leaves() {
                union_h.add_child(root, &format!("p{leaf}"), "p");
            }
        }
        let union_h = union_h.build().unwrap();
        let mut union_states = StateRegistry::new();
        for f in [&f0, &f1] {
            for (_, name) in f.states.iter() {
                union_states.intern(name);
            }
        }

        for kind in [ModelKind::States, ModelKind::Density] {
            let part_of = |f: &Trace| {
                let mut sink = ModelSink::with_range(kind, 8, range);
                assert!(replay(f, None, &mut sink));
                sink.finish_partial().unwrap()
            };
            // Reference: one combined stream over the union hierarchy.
            let mut seq = ModelSink::with_range(kind, 8, range);
            let h = StreamHeader {
                hierarchy: union_h.clone(),
                states: union_states.clone(),
                metadata: Vec::new(),
                range: None,
            };
            assert!(seq.begin(&h));
            for (off, f) in [(0u32, &f0), (2u32, &f1)] {
                for iv in &f.intervals {
                    let sid = union_states.get(f.states.name(iv.state)).unwrap();
                    seq.interval(LeafId(iv.resource.0 + off), sid, iv.begin, iv.end);
                }
                for p in &f.points {
                    let mut p = *p;
                    p.resource = LeafId(p.resource.0 + off);
                    seq.point(&p);
                }
            }
            seq.end();
            let seq = seq.finish().unwrap();

            for order in [[0usize, 1], [1, 0]] {
                let mut union =
                    PartialModel::empty(kind, union_h.clone(), union_states.clone(), grid);
                for &i in &order {
                    let (f, off) = if i == 0 { (&f0, 0) } else { (&f1, 2) };
                    union.mount(part_of(f), off);
                }
                assert_models_bit_identical(&union.into_model(true), &seq);
            }
        }
    }

    #[test]
    fn scan_sink_tracks_range_and_counts() {
        let t = sample_trace();
        let mut scan = ScanSink::new();
        assert!(replay(&t, None, &mut scan));
        assert_eq!(scan.observed_range(), t.time_range());
        assert_eq!(scan.intervals, 4);
        assert_eq!(scan.points, 2);
        assert_eq!(scan.event_count() as usize, t.event_count());
        assert!(scan.header.is_some());
    }

    #[test]
    fn scan_sink_empty_stream_has_no_range() {
        let t = TraceBuilder::new(Hierarchy::flat(1, "p")).build();
        let mut scan = ScanSink::new();
        assert!(replay(&t, None, &mut scan));
        assert_eq!(scan.observed_range(), None);
    }

    #[test]
    fn tee_sink_feeds_both_sides() {
        let t = sample_trace();
        let mut tee = TeeSink::new(ScanSink::new(), ModelSink::new(ModelKind::States, 6));
        assert!(replay(&t, t.time_range(), &mut tee));
        let (scan, model) = tee.into_inner();
        assert_eq!(scan.intervals, 4);
        let m = model.finish().unwrap();
        assert_models_bit_identical(&m, &MicroModel::from_trace(&t, 6).unwrap());
    }

    #[test]
    fn tee_sink_continues_when_one_side_stops() {
        let t = sample_trace();
        // The model side has no range and stops; the scan side continues.
        let mut tee = TeeSink::new(ModelSink::new(ModelKind::States, 6), ScanSink::new());
        assert!(replay(&t, None, &mut tee));
        let (model, scan) = tee.into_inner();
        assert!(model.needs_range());
        assert_eq!(scan.observed_range(), t.time_range());
    }
}
