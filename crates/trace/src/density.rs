//! Event-density microscopic model.
//!
//! The authors' predecessor work on pure time aggregation (Pagano et al.
//! \[11\], Dosimont et al. \[12\] in the paper's bibliography) aggregates
//! *event counts* per slice rather than state-time proportions. This module
//! provides that metric for the spatiotemporal algorithm: each cell
//! `(s, t, x)` holds the **number of events** of kind `x` produced by
//! resource `s` during slice `t`.
//!
//! Event kinds are the trace's state names (a state interval contributes
//! its *enter* and *leave* event, matching
//! [`Trace::event_count`](crate::Trace::event_count)) plus one pseudo-state
//! per [`PointKind`](crate::PointKind) present in the trace (`evt:send`,
//! `evt:recv`, `evt:marker`).
//!
//! Two entry points share the counting pass:
//!
//! - [`event_counts`] returns the **raw counts** (useful for inspection;
//!   note `ρ_x(s,t) = count/d(t)` may exceed 1, outside the domain the
//!   paper's Eq. 2–3 were designed for);
//! - [`event_density`] returns counts **normalized to the peak cell** so
//!   that `ρ ∈ [0, 1]` reads as "fraction of the observed peak rate". The
//!   normalization constant matters: the entropy gain of Eq. 3 is *not*
//!   scale-invariant (scaling `d_x` by `c` shifts the gain by
//!   `c·log₂c·(ρ̄ − Σρ)`), so fixing the peak at 1 is part of the model
//!   definition, exactly as choosing time-proportions is for states.

use crate::hierarchy::LeafId;
use crate::micro::MicroModel;
use crate::slicing::TimeGrid;
use crate::state::StateId;
use crate::trace::Trace;
use crate::{PointKind, Time};

/// Pseudo-state names for point events (shared with the streaming
/// [`ModelSink`](crate::sink::ModelSink), which must intern identically).
pub(crate) const SEND_NAME: &str = "evt:send";
pub(crate) const RECV_NAME: &str = "evt:recv";
pub(crate) const MARKER_NAME: &str = "evt:marker";

/// Build the raw event-count model of a trace over an explicit grid.
///
/// Events with timestamps outside the grid are dropped; an interval's enter
/// and leave events are counted independently (one may fall inside the grid
/// while the other does not).
pub fn event_counts(trace: &Trace, grid: TimeGrid) -> MicroModel {
    let mut states = trace.states.clone();
    let send = trace
        .points
        .iter()
        .any(|p| matches!(p.kind, PointKind::MsgSend { .. }))
        .then(|| states.intern(SEND_NAME));
    let recv = trace
        .points
        .iter()
        .any(|p| matches!(p.kind, PointKind::MsgRecv { .. }))
        .then(|| states.intern(RECV_NAME));
    let marker = trace
        .points
        .iter()
        .any(|p| matches!(p.kind, PointKind::Marker))
        .then(|| states.intern(MARKER_NAME));

    let n_states = states.len();
    let n_slices = grid.n_slices();
    let mut counts = vec![0.0f64; trace.hierarchy.n_leaves() * n_states * n_slices];
    let mut bump = |resource: LeafId, state: StateId, ts: Time| {
        if ts < grid.start() || ts > grid.end() {
            return;
        }
        let idx = (resource.index() * n_states + state.index()) * n_slices + grid.slice_of(ts);
        counts[idx] += 1.0;
    };
    for iv in &trace.intervals {
        bump(iv.resource, iv.state, iv.begin);
        bump(iv.resource, iv.state, iv.end);
    }
    for p in &trace.points {
        let state = match p.kind {
            PointKind::MsgSend { .. } => send,
            PointKind::MsgRecv { .. } => recv,
            PointKind::Marker => marker,
        }
        .expect("kind interned above");
        bump(p.resource, state, p.time);
    }
    MicroModel::from_dense(trace.hierarchy.clone(), states, grid, counts)
}

/// Scale a flat `[leaf][state][slice]` count array so the busiest cell
/// reads `ρ = 1`: multiply every cell by `slice_duration / max(data)`
/// (a no-op for an all-zero array). This is **the** peak-normalization
/// kernel: `ModelSink`'s density finish and the hi-res rebinning in
/// `ocelotl-core` both call it, so the bit-identity between warm
/// re-slices and fresh ingests is structural — there is only one copy of
/// the arithmetic to drift.
pub fn peak_normalize(data: &mut [f64], slice_duration: f64) {
    let mut peak = 0.0f64;
    for &c in data.iter() {
        peak = peak.max(c);
    }
    if peak > 0.0 {
        let scale = slice_duration / peak;
        for c in data.iter_mut() {
            *c *= scale;
        }
    }
}

/// Build the peak-normalized event-density model of a trace: raw counts
/// scaled so the busiest `(s, t, x)` cell has `ρ = 1`. This keeps the
/// proportions inside the `[0, 1]` domain of the paper's measures while
/// preserving every count ratio. A trace without in-grid events yields an
/// all-zero model.
pub fn event_density(trace: &Trace, grid: TimeGrid) -> MicroModel {
    let raw = event_counts(trace, grid);
    let hierarchy = raw.hierarchy().clone();
    let states = raw.states().clone();
    let n_states = raw.n_states();
    let n_slices = raw.n_slices();
    // Flatten into the model's own [leaf][state][slice] layout, then run
    // the one shared normalization kernel over it.
    let mut scaled = vec![0.0f64; raw.n_leaves() * n_states * n_slices];
    for leaf in 0..raw.n_leaves() {
        for x in 0..n_states {
            let src = raw.series(LeafId(leaf as u32), StateId(x as u16));
            let base = (leaf * n_states + x) * n_slices;
            scaled[base..base + n_slices].copy_from_slice(src);
        }
    }
    peak_normalize(&mut scaled, grid.slice_duration());
    MicroModel::from_dense(hierarchy, states, grid, scaled)
}

/// Build the peak-normalized event-density model over the trace's observed
/// time range, divided into `n_slices` regular periods. `None` for empty
/// traces.
pub fn event_density_auto(trace: &Trace, n_slices: usize) -> Option<MicroModel> {
    let (lo, hi) = trace.time_range()?;
    if hi <= lo {
        return None;
    }
    Some(event_density(trace, TimeGrid::new(lo, hi, n_slices)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::{Hierarchy, PointEvent};

    fn sample_trace() -> Trace {
        let h = Hierarchy::flat(2, "p");
        let mut b = TraceBuilder::new(h);
        let run = b.state("Run");
        let wait = b.state("Wait");
        // p0: Run [0,3), Wait [3,8); p1: Run [2,10).
        b.push_state(LeafId(0), run, 0.0, 3.0);
        b.push_state(LeafId(0), wait, 3.0, 8.0);
        b.push_state(LeafId(1), run, 2.0, 10.0);
        b.push_point(PointEvent {
            resource: LeafId(0),
            time: 2.5,
            kind: PointKind::MsgSend { peer: LeafId(1) },
        });
        b.push_point(PointEvent {
            resource: LeafId(1),
            time: 2.6,
            kind: PointKind::MsgRecv { peer: LeafId(0) },
        });
        b.build()
    }

    #[test]
    fn counts_land_in_the_right_slices() {
        let t = sample_trace();
        let grid = TimeGrid::new(0.0, 10.0, 10);
        let m = event_counts(&t, grid);
        let run = m.states().get("Run").unwrap();
        let wait = m.states().get("Wait").unwrap();
        // p0 Run: enter at 0.0 (slice 0), leave at 3.0 (slice 3).
        assert_eq!(m.duration(LeafId(0), run, 0), 1.0);
        assert_eq!(m.duration(LeafId(0), run, 3), 1.0);
        assert_eq!(m.duration(LeafId(0), run, 1), 0.0);
        // p0 Wait: enter 3.0 (slice 3), leave 8.0 (slice 8).
        assert_eq!(m.duration(LeafId(0), wait, 3), 1.0);
        assert_eq!(m.duration(LeafId(0), wait, 8), 1.0);
        // p1 Run: enter 2.0 (slice 2), leave 10.0 (clamped to slice 9).
        assert_eq!(m.duration(LeafId(1), run, 2), 1.0);
        assert_eq!(m.duration(LeafId(1), run, 9), 1.0);
    }

    #[test]
    fn point_events_get_their_own_pseudo_states() {
        let t = sample_trace();
        let m = event_counts(&t, TimeGrid::new(0.0, 10.0, 10));
        let send = m.states().get("evt:send").unwrap();
        let recv = m.states().get("evt:recv").unwrap();
        assert!(m.states().get("evt:marker").is_none(), "no markers pushed");
        let slice = m.grid().slice_of(2.5);
        assert_eq!(m.duration(LeafId(0), send, slice), 1.0);
        assert_eq!(m.duration(LeafId(1), recv, m.grid().slice_of(2.6)), 1.0);
    }

    #[test]
    fn grand_total_equals_event_count_when_grid_covers() {
        let t = sample_trace();
        let (lo, hi) = t.time_range().unwrap();
        let m = event_counts(&t, TimeGrid::new(lo, hi, 7));
        assert_eq!(m.grand_total() as usize, t.event_count());
    }

    #[test]
    fn density_normalizes_peak_cell_to_rho_one() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        let s = b.state("S");
        // 4 intervals inside [0, 1): 4 enters + 4 leaves in slice 0 = 8
        // events; 1 interval in [5, 6): 2 events in slice 5.
        for i in 0..4 {
            let t0 = i as f64 * 0.2;
            b.push_state(LeafId(0), s, t0, t0 + 0.1);
        }
        b.push_state(LeafId(0), s, 5.0, 5.9);
        let t = b.build();
        let grid = TimeGrid::new(0.0, 10.0, 10);
        let m = event_density(&t, grid);
        let sid = m.states().get("S").unwrap();
        assert!((m.rho(LeafId(0), sid, 0) - 1.0).abs() < 1e-12, "peak cell");
        // Ratios preserved: slice 5 has 2/8 of the peak.
        assert!((m.rho(LeafId(0), sid, 5) - 0.25).abs() < 1e-12);
        // Everything within [0, 1].
        for t in 0..10 {
            let r = m.rho(LeafId(0), sid, t);
            assert!((0.0..=1.0).contains(&r), "rho out of range: {r}");
        }
    }

    #[test]
    fn density_of_eventless_grid_is_all_zero() {
        let t = sample_trace();
        let m = event_density(&t, TimeGrid::new(4.0, 6.0, 2));
        assert_eq!(m.grand_total(), 0.0);
    }

    #[test]
    fn events_outside_explicit_grid_are_dropped() {
        let t = sample_trace();
        // Grid covering [4, 6] only: p0 Wait has neither endpoint inside;
        // eligible events: none of Run's, no points. Only... nothing.
        let m = event_counts(&t, TimeGrid::new(4.0, 6.0, 2));
        assert_eq!(m.grand_total(), 0.0);
        // Grid [2, 4]: p0 Run leave (3.0), p0 Wait enter (3.0), p1 Run
        // enter (2.0), send (2.5), recv (2.6) = 5 events.
        let m = event_counts(&t, TimeGrid::new(2.0, 4.0, 2));
        assert_eq!(m.grand_total(), 5.0);
    }

    #[test]
    fn empty_trace_yields_none() {
        let t = TraceBuilder::new(Hierarchy::flat(1, "p")).build();
        assert!(event_density_auto(&t, 5).is_none());
    }

    #[test]
    fn marker_kind_interned_only_when_present() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        b.push_point(PointEvent {
            resource: LeafId(0),
            time: 1.0,
            kind: PointKind::Marker,
        });
        b.push_point(PointEvent {
            resource: LeafId(0),
            time: 3.0,
            kind: PointKind::Marker,
        });
        let t = b.build();
        let m = event_counts(&t, TimeGrid::new(0.0, 4.0, 4));
        assert_eq!(m.n_states(), 1);
        let marker = m.states().get("evt:marker").unwrap();
        assert_eq!(m.duration(LeafId(0), marker, 1), 1.0);
        assert_eq!(m.duration(LeafId(0), marker, 3), 1.0);
        assert_eq!(m.grand_total(), 2.0);
    }

    #[test]
    fn state_registry_of_source_trace_is_not_mutated() {
        let t = sample_trace();
        let n_before = t.states.len();
        let _ = event_density_auto(&t, 5).unwrap();
        assert_eq!(t.states.len(), n_before);
    }

    #[test]
    fn timestamp_exactly_at_grid_end_counts_in_last_slice() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        let s = b.state("S");
        b.push_state(LeafId(0), s, 0.0, 10.0);
        let t = b.build();
        let m = event_counts(&t, TimeGrid::new(0.0, 10.0, 5));
        let sid = m.states().get("S").unwrap();
        assert_eq!(m.duration(LeafId(0), sid, 4), 1.0);
        assert_eq!(m.duration(LeafId(0), sid, 0), 1.0);
    }
}
