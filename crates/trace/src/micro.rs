//! The trace microscopic model (§III.A).
//!
//! A [`MicroModel`] is the algebraically-structured tridimensional dataset
//! the aggregation algorithms consume: for every leaf resource `s`, time
//! slice `t` and state `x` it stores `d_x(s,t)`, the total time `s` spent in
//! `x` during `t`. Proportions `ρ_x(s,t) = d_x(s,t)/d(t)` are derived on the
//! fly.
//!
//! Storage layout is `[leaf][state][slice]` (slice fastest) so that the
//! aggregation input stage can build per-(node,state) prefix sums over time
//! with unit-stride reads.

use crate::event::Time;
use crate::hierarchy::{Hierarchy, HierarchyBuilder, LeafId, NodeId};
use crate::slicing::TimeGrid;
use crate::state::{StateId, StateRegistry};
use crate::trace::Trace;
use rayon::prelude::*;

/// Dense microscopic model: `d_x(s,t)` for all `(s, x, t)`.
#[derive(Debug, Clone)]
pub struct MicroModel {
    hierarchy: Hierarchy,
    states: StateRegistry,
    grid: TimeGrid,
    /// `durations[(leaf * n_states + state) * n_slices + slice]`
    durations: Vec<f64>,
}

impl MicroModel {
    /// Build from a trace, slicing its observed time range into `n_slices`
    /// regular periods (the paper uses 30).
    ///
    /// Returns `None` for traces without events (no time extent to slice).
    pub fn from_trace(trace: &Trace, n_slices: usize) -> Option<Self> {
        let (lo, hi) = trace.time_range()?;
        if hi <= lo {
            return None;
        }
        let grid = TimeGrid::new(lo, hi, n_slices);
        Some(Self::from_trace_with_grid(trace, grid))
    }

    /// Build from a trace with an explicit grid (events outside the grid are
    /// clipped). Parallelizes over chunks of intervals.
    pub fn from_trace_with_grid(trace: &Trace, grid: TimeGrid) -> Self {
        let n_leaves = trace.hierarchy.n_leaves();
        let n_states = trace.states.len();
        let n_slices = grid.n_slices();
        let size = n_leaves * n_states * n_slices;

        const CHUNK: usize = 1 << 16;
        let durations = if trace.intervals.len() > 2 * CHUNK {
            trace
                .intervals
                .par_chunks(CHUNK)
                .fold(
                    || vec![0.0f64; size],
                    |mut acc, chunk| {
                        for iv in chunk {
                            accumulate(
                                &mut acc,
                                n_states,
                                n_slices,
                                &grid,
                                iv.resource,
                                iv.state,
                                iv.begin,
                                iv.end,
                            );
                        }
                        acc
                    },
                )
                .reduce(
                    || vec![0.0f64; size],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                )
        } else {
            let mut acc = vec![0.0f64; size];
            for iv in &trace.intervals {
                accumulate(
                    &mut acc,
                    n_states,
                    n_slices,
                    &grid,
                    iv.resource,
                    iv.state,
                    iv.begin,
                    iv.end,
                );
            }
            acc
        };

        Self {
            hierarchy: trace.hierarchy.clone(),
            states: trace.states.clone(),
            grid,
            durations,
        }
    }

    /// Build directly from a dense `[leaf][state][slice]` duration array.
    ///
    /// Used for artificial traces (Fig. 3) and tests.
    pub fn from_dense(
        hierarchy: Hierarchy,
        states: StateRegistry,
        grid: TimeGrid,
        durations: Vec<f64>,
    ) -> Self {
        assert_eq!(
            durations.len(),
            hierarchy.n_leaves() * states.len() * grid.n_slices(),
            "dense data size mismatch"
        );
        assert!(
            durations.iter().all(|&d| d >= 0.0 && d.is_finite()),
            "durations must be finite and non-negative"
        );
        Self {
            hierarchy,
            states,
            grid,
            durations,
        }
    }

    /// Build from per-cell proportions `ρ_x(s,t)` instead of durations
    /// (durations are `ρ · d(t)`). Convenient for paper-style examples where
    /// the figure specifies proportions directly.
    pub fn from_proportions(
        hierarchy: Hierarchy,
        states: StateRegistry,
        grid: TimeGrid,
        rho: Vec<f64>,
    ) -> Self {
        let w = grid.slice_duration();
        assert!(
            rho.iter().all(|&r| (0.0..=1.0 + 1e-9).contains(&r)),
            "proportions must lie in [0, 1]"
        );
        let durations = rho.into_iter().map(|r| r * w).collect();
        Self::from_dense(hierarchy, states, grid, durations)
    }

    /// The spatial hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The state registry.
    #[inline]
    pub fn states(&self) -> &StateRegistry {
        &self.states
    }

    /// The time grid.
    #[inline]
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// `|S|`: number of leaf resources.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.hierarchy.n_leaves()
    }

    /// `|X|`: number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// `|T|`: number of time slices.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.grid.n_slices()
    }

    #[inline]
    fn idx(&self, leaf: usize, state: usize, slice: usize) -> usize {
        (leaf * self.n_states() + state) * self.n_slices() + slice
    }

    /// `d_x(s,t)`: time `s` spent in `x` during slice `t`.
    #[inline]
    pub fn duration(&self, leaf: LeafId, state: StateId, slice: usize) -> f64 {
        self.durations[self.idx(leaf.index(), state.index(), slice)]
    }

    /// `ρ_x(s,t) = d_x(s,t)/d(t)`.
    #[inline]
    pub fn rho(&self, leaf: LeafId, state: StateId, slice: usize) -> f64 {
        self.duration(leaf, state, slice) / self.grid.slice_duration()
    }

    /// Time series `d_x(s, ·)` for one (leaf, state): a slice of length `|T|`.
    #[inline]
    pub fn series(&self, leaf: LeafId, state: StateId) -> &[f64] {
        let base = self.idx(leaf.index(), state.index(), 0);
        &self.durations[base..base + self.n_slices()]
    }

    /// Total recorded time of `s` during slice `t` (all states).
    pub fn total(&self, leaf: LeafId, slice: usize) -> f64 {
        (0..self.n_states())
            .map(|x| self.duration(leaf, StateId(x as u16), slice))
            .sum()
    }

    /// Sum of all recorded durations (diagnostic).
    pub fn grand_total(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Mutable access for synthetic-model construction.
    pub fn duration_mut(&mut self, leaf: LeafId, state: StateId, slice: usize) -> &mut f64 {
        let i = self.idx(leaf.index(), state.index(), slice);
        &mut self.durations[i]
    }

    /// Mutable time series `d_x(s, ·)` for one (leaf, state): the in-place
    /// accumulation target of the live append path.
    #[inline]
    pub fn series_mut(&mut self, leaf: LeafId, state: StateId) -> &mut [f64] {
        let base = self.idx(leaf.index(), state.index(), 0);
        let n = self.n_slices();
        &mut self.durations[base..base + n]
    }

    /// Rebuild this model over a longer grid of the **same slice width**:
    /// every existing `(leaf, state)` series keeps its cells at the same
    /// slice indices and the new tail slices start at zero. The caller
    /// guarantees `grid` extends the current one by whole slices; this
    /// only re-lays the storage (the slice stride changes).
    pub fn regrow(&mut self, grid: TimeGrid) {
        let old = self.n_slices();
        let new = grid.n_slices();
        assert!(new >= old, "regrow cannot shrink the grid");
        let rows = self.n_leaves() * self.n_states();
        let mut durations = vec![0.0f64; rows * new];
        for row in 0..rows {
            durations[row * new..row * new + old]
                .copy_from_slice(&self.durations[row * old..(row + 1) * old]);
        }
        self.grid = grid;
        self.durations = durations;
    }

    /// Drill down (Ocelotl's zoom): extract the sub-model of one hierarchy
    /// subtree over a slice window `[first_slice, last_slice]`.
    ///
    /// The result is a self-contained microscopic model whose hierarchy is
    /// the subtree re-rooted at `node` and whose grid covers exactly the
    /// window — suitable for re-running the aggregation at a finer
    /// resolution on the region an anomaly was detected in.
    pub fn submodel(&self, node: NodeId, first_slice: usize, last_slice: usize) -> MicroModel {
        assert!(first_slice <= last_slice && last_slice < self.n_slices());
        let h = self.hierarchy();

        // Re-rooted hierarchy preserving names/kinds and leaf order.
        let mut b = HierarchyBuilder::new(h.name(node), h.kind(node));
        let mut stack: Vec<(NodeId, NodeId)> = h
            .children(node)
            .iter()
            .rev()
            .map(|&c| (c, b.root()))
            .collect();
        // Depth-first copy: pop gives pre-order because children were
        // pushed reversed.
        let mut copies: Vec<(NodeId, NodeId)> = Vec::new();
        while let Some((orig, parent)) = stack.pop() {
            let copy = b.add_child(parent, h.name(orig), h.kind(orig));
            copies.push((orig, copy));
            for &c in h.children(orig).iter().rev() {
                stack.push((c, copy));
            }
        }
        let hierarchy = b.build().expect("subtree copy is valid");

        let (w0, _) = self.grid.slice_bounds(first_slice);
        let (_, w1) = self.grid.slice_bounds(last_slice);
        let n_slices = last_slice - first_slice + 1;
        let grid = TimeGrid::new(w0, w1, n_slices);

        let leaf_range = h.leaf_range(node);
        let n_leaves = leaf_range.len();
        let n_states = self.n_states();
        let mut durations = vec![0.0f64; n_leaves * n_states * n_slices];
        for (new_leaf, old_leaf) in leaf_range.enumerate() {
            for x in 0..n_states {
                let series = self.series(LeafId(old_leaf as u32), StateId(x as u16));
                let dst = (new_leaf * n_states + x) * n_slices;
                durations[dst..dst + n_slices].copy_from_slice(&series[first_slice..=last_slice]);
            }
        }
        debug_assert_eq!(hierarchy.n_leaves(), n_leaves);
        MicroModel {
            hierarchy,
            states: self.states.clone(),
            grid,
            durations,
        }
    }

    /// Stack two metric layers over the same space × time grid into one
    /// multi-metric model: the state dimensions are concatenated (`other`'s
    /// state names are prefixed with `prefix` to avoid collisions).
    ///
    /// The paper's information criterion is additive over the state
    /// dimension (§III.C), so aggregating a stacked model optimizes the
    /// *joint* trade-off: an area must be homogeneous in **every** layer to
    /// aggregate cheaply. This is how MPI states and a binned hardware
    /// counter can drive one overview together.
    ///
    /// Panics if the hierarchies or grids differ.
    ///
    /// ```
    /// use ocelotl_trace::{Hierarchy, MicroModel, StateRegistry, TimeGrid};
    ///
    /// let h = Hierarchy::flat(2, "p");
    /// let grid = TimeGrid::new(0.0, 4.0, 4);
    /// let states = MicroModel::from_proportions(
    ///     h.clone(), StateRegistry::from_names(["Run"]), grid, vec![1.0; 8]);
    /// let counter = MicroModel::from_proportions(
    ///     h, StateRegistry::from_names(["hot"]), grid, vec![0.25; 8]);
    /// let joint = states.stack(&counter, "hw:");
    /// assert_eq!(joint.n_states(), 2);
    /// assert!(joint.states().get("hw:hot").is_some());
    /// ```
    pub fn stack(&self, other: &MicroModel, prefix: &str) -> MicroModel {
        assert_eq!(
            self.n_leaves(),
            other.n_leaves(),
            "stacked models need identical hierarchies"
        );
        assert_eq!(self.grid, other.grid, "stacked models need identical grids");
        let mut states = self.states.clone();
        let mut other_ids = Vec::with_capacity(other.n_states());
        for (_, name) in other.states.iter() {
            other_ids.push(states.intern(&format!("{prefix}{name}")));
        }
        assert_eq!(
            states.len(),
            self.n_states() + other.n_states(),
            "prefixed state names must not collide"
        );
        let n_states = states.len();
        let n_slices = self.n_slices();
        let mut durations = vec![0.0f64; self.n_leaves() * n_states * n_slices];
        for leaf in 0..self.n_leaves() {
            for x in 0..self.n_states() {
                let dst = (leaf * n_states + x) * n_slices;
                durations[dst..dst + n_slices]
                    .copy_from_slice(self.series(LeafId(leaf as u32), StateId(x as u16)));
            }
            for (x, &sid) in other_ids.iter().enumerate() {
                let dst = (leaf * n_states + sid.index()) * n_slices;
                durations[dst..dst + n_slices]
                    .copy_from_slice(other.series(LeafId(leaf as u32), StateId(x as u16)));
            }
        }
        MicroModel {
            hierarchy: self.hierarchy.clone(),
            states,
            grid: self.grid,
            durations,
        }
    }

    /// Zoom with a finer grid: like [`MicroModel::submodel`] but the caller
    /// provides the original trace to re-slice the window into `n_slices`
    /// fresh periods (full microscopic precision inside the window).
    pub fn zoom_from_trace(
        trace: &Trace,
        node: NodeId,
        t0: Time,
        t1: Time,
        n_slices: usize,
    ) -> MicroModel {
        let h = &trace.hierarchy;
        let leaf_range = h.leaf_range(node);
        let grid = TimeGrid::new(t0, t1, n_slices);
        // Build a filtered trace restricted to the subtree's leaves.
        let full = Self::from_trace_with_grid(trace, grid);
        full.submodel_of_full(node, leaf_range)
    }

    /// Helper for [`MicroModel::zoom_from_trace`]: restrict an
    /// already-resliced model to a subtree (keeping its full grid).
    fn submodel_of_full(&self, node: NodeId, leaf_range: std::ops::Range<usize>) -> MicroModel {
        let sub = self.submodel(node, 0, self.n_slices() - 1);
        debug_assert_eq!(sub.n_leaves(), leaf_range.len());
        sub
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate(
    acc: &mut [f64],
    n_states: usize,
    n_slices: usize,
    grid: &TimeGrid,
    resource: LeafId,
    state: StateId,
    begin: Time,
    end: Time,
) {
    let base = (resource.index() * n_states + state.index()) * n_slices;
    for (slice, overlap) in grid.prorate(begin, end) {
        acc[base + slice] += overlap;
    }
}

/// Streaming accumulator for building a [`MicroModel`] without materializing
/// the event list (used by the format readers: the paper's "microscopic
/// description" stage).
pub struct MicroBuilder {
    model: MicroModel,
}

impl MicroBuilder {
    /// Start a zeroed accumulator for the given dimensions.
    pub fn new(hierarchy: Hierarchy, states: StateRegistry, grid: TimeGrid) -> Self {
        let size = hierarchy.n_leaves() * states.len() * grid.n_slices();
        Self {
            model: MicroModel {
                hierarchy,
                states,
                grid,
                durations: vec![0.0; size],
            },
        }
    }

    /// Add one state interval.
    #[inline]
    pub fn add(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time) {
        let n_states = self.model.n_states();
        let n_slices = self.model.n_slices();
        let grid = self.model.grid;
        accumulate(
            &mut self.model.durations,
            n_states,
            n_slices,
            &grid,
            resource,
            state,
            begin,
            end,
        );
    }

    /// Finish and return the accumulated model.
    pub fn finish(self) -> MicroModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn two_proc_trace() -> Trace {
        let h = Hierarchy::flat(2, "p");
        let mut b = TraceBuilder::new(h);
        let a = b.state("A");
        let c = b.state("B");
        // p0: A over [0,6), B over [6,10)
        b.push_state(LeafId(0), a, 0.0, 6.0);
        b.push_state(LeafId(0), c, 6.0, 10.0);
        // p1: B over [0,10)
        b.push_state(LeafId(1), c, 0.0, 10.0);
        b.build()
    }

    #[test]
    fn durations_prorated_onto_slices() {
        let t = two_proc_trace();
        let m = MicroModel::from_trace(&t, 5).unwrap();
        let a = t.states.get("A").unwrap();
        let bst = t.states.get("B").unwrap();
        // slice width 2.0; p0 in A fully covers slices 0..3
        assert!((m.duration(LeafId(0), a, 0) - 2.0).abs() < 1e-12);
        assert!((m.duration(LeafId(0), a, 2) - 2.0).abs() < 1e-12);
        assert!((m.duration(LeafId(0), a, 3) - 0.0).abs() < 1e-12);
        assert!((m.duration(LeafId(0), bst, 3) - 2.0).abs() < 1e-12);
        // rho
        assert!((m.rho(LeafId(0), a, 0) - 1.0).abs() < 1e-12);
        assert!((m.rho(LeafId(1), bst, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grand_total_matches_event_durations() {
        let t = two_proc_trace();
        let m = MicroModel::from_trace(&t, 7).unwrap();
        let expected: f64 = t.intervals.iter().map(|iv| iv.duration()).sum();
        assert!((m.grand_total() - expected).abs() < 1e-9);
    }

    #[test]
    fn interval_straddling_slice_boundary_splits() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        let s = b.state("S");
        b.push_state(LeafId(0), s, 0.0, 10.0); // extend range to [0,10]
        b.push_state(LeafId(0), s, 4.5, 5.5);
        let t = b.build();
        let m = MicroModel::from_trace(&t, 10).unwrap();
        // second interval contributes 0.5 to slices 4 and 5 (plus full cover from first)
        assert!((m.duration(LeafId(0), s, 4) - 1.5).abs() < 1e-12);
        assert!((m.duration(LeafId(0), s, 5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_builder_matches_batch() {
        let t = two_proc_trace();
        let m1 = MicroModel::from_trace(&t, 4).unwrap();
        let grid = *m1.grid();
        let mut mb = MicroBuilder::new(t.hierarchy.clone(), t.states.clone(), grid);
        for iv in &t.intervals {
            mb.add(iv.resource, iv.state, iv.begin, iv.end);
        }
        let m2 = mb.finish();
        for l in 0..2 {
            for x in 0..2 {
                for s in 0..4 {
                    let d1 = m1.duration(LeafId(l), StateId(x), s);
                    let d2 = m2.duration(LeafId(l), StateId(x), s);
                    assert!((d1 - d2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn from_proportions_scales_by_slice_duration() {
        let h = Hierarchy::flat(1, "p");
        let states = StateRegistry::from_names(["X"]);
        let grid = TimeGrid::new(0.0, 20.0, 4); // d(t) = 5
        let m = MicroModel::from_proportions(h, states, grid, vec![0.5, 1.0, 0.0, 0.25]);
        assert!((m.duration(LeafId(0), StateId(0), 0) - 2.5).abs() < 1e-12);
        assert!((m.rho(LeafId(0), StateId(0), 1) - 1.0).abs() < 1e-12);
        assert!((m.rho(LeafId(0), StateId(0), 3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_gives_none() {
        let t = TraceBuilder::new(Hierarchy::flat(1, "p")).build();
        assert!(MicroModel::from_trace(&t, 10).is_none());
    }

    #[test]
    fn series_has_unit_stride_layout() {
        let t = two_proc_trace();
        let m = MicroModel::from_trace(&t, 5).unwrap();
        let a = t.states.get("A").unwrap();
        let s = m.series(LeafId(0), a);
        assert_eq!(s.len(), 5);
        assert!((s[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn submodel_extracts_subtree_window() {
        use crate::hierarchy::HierarchyBuilder;
        let mut b = HierarchyBuilder::new("root", "root");
        let c0 = b.add_child(b.root(), "c0", "cluster");
        let c1 = b.add_child(b.root(), "c1", "cluster");
        b.add_child(c0, "a", "m");
        b.add_child(c0, "b", "m");
        b.add_child(c1, "c", "m");
        let h = b.build().unwrap();
        let states = StateRegistry::from_names(["x", "y"]);
        let grid = TimeGrid::new(0.0, 10.0, 10);
        let mut data = vec![0.0; 3 * 2 * 10];
        // distinct value per (leaf, state, slice) for traceability
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f64;
        }
        let m = MicroModel::from_dense(h.clone(), states, grid, data);

        let c0 = m.hierarchy().find_path("c0").unwrap();
        let sub = m.submodel(c0, 3, 7);
        assert_eq!(sub.n_leaves(), 2);
        assert_eq!(sub.n_slices(), 5);
        assert_eq!(sub.n_states(), 2);
        assert_eq!(sub.hierarchy().name(sub.hierarchy().root()), "c0");
        assert_eq!(sub.grid().start(), 3.0);
        assert_eq!(sub.grid().end(), 8.0);
        // Values preserved: sub leaf 0 == original leaf 0 ("a").
        for x in 0..2u16 {
            for t in 0..5 {
                assert_eq!(
                    sub.duration(LeafId(0), StateId(x), t),
                    m.duration(LeafId(0), StateId(x), t + 3)
                );
                assert_eq!(
                    sub.duration(LeafId(1), StateId(x), t),
                    m.duration(LeafId(1), StateId(x), t + 3)
                );
            }
        }
        // Leaf names preserved in order.
        assert_eq!(
            sub.hierarchy().name(sub.hierarchy().leaf_node(LeafId(0))),
            "a"
        );
        assert_eq!(
            sub.hierarchy().name(sub.hierarchy().leaf_node(LeafId(1))),
            "b"
        );
    }

    #[test]
    fn submodel_of_leaf_node() {
        let m = crate::synthetic::fig3_model();
        let h = m.hierarchy();
        let leaf_node = h.leaf_node(LeafId(5));
        let sub = m.submodel(leaf_node, 0, 19);
        assert_eq!(sub.n_leaves(), 1);
        for t in 0..20 {
            assert!(
                (sub.rho(LeafId(0), StateId(0), t) - m.rho(LeafId(5), StateId(0), t)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn zoom_from_trace_reslices_window() {
        let t = two_proc_trace();
        let root = t.hierarchy.root();
        let z = MicroModel::zoom_from_trace(&t, root, 2.0, 8.0, 12);
        assert_eq!(z.n_slices(), 12);
        assert_eq!(z.grid().start(), 2.0);
        assert_eq!(z.grid().end(), 8.0);
        // total mass inside the window: p0 A over [2,6) = 4, B over [6,8) = 2,
        // p1 B over [2,8) = 6.
        assert!((z.grand_total() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn stack_concatenates_state_dimensions() {
        let t = two_proc_trace();
        let m = MicroModel::from_trace(&t, 5).unwrap();
        let grid = *m.grid();
        let states = StateRegistry::from_names(["load"]);
        let other = MicroModel::from_dense(m.hierarchy().clone(), states, grid, vec![0.5; 2 * 5]);
        let stacked = m.stack(&other, "hw:");
        assert_eq!(stacked.n_states(), 3);
        assert_eq!(stacked.n_leaves(), 2);
        // Original layers preserved.
        let a = stacked.states().get("A").unwrap();
        assert_eq!(
            stacked.duration(LeafId(0), a, 0),
            m.duration(LeafId(0), m.states().get("A").unwrap(), 0)
        );
        // New layer reachable under its prefixed name.
        let load = stacked.states().get("hw:load").unwrap();
        assert_eq!(stacked.duration(LeafId(1), load, 3), 0.5);
        // Totals add up.
        assert!((stacked.grand_total() - (m.grand_total() + other.grand_total())).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "identical grids")]
    fn stack_rejects_mismatched_grids() {
        let t = two_proc_trace();
        let m1 = MicroModel::from_trace(&t, 5).unwrap();
        let m2 = MicroModel::from_trace(&t, 7).unwrap();
        let _ = m1.stack(&m2, "x:");
    }

    #[test]
    #[should_panic(expected = "collide")]
    fn stack_rejects_name_collisions() {
        let t = two_proc_trace();
        let m = MicroModel::from_trace(&t, 5).unwrap();
        let _ = m.stack(&m, ""); // empty prefix: "A" collides with "A"
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Force the parallel path by synthesizing > 2*CHUNK intervals.
        let h = Hierarchy::flat(4, "p");
        let mut b = TraceBuilder::new(h);
        let s = b.state("S");
        let n = 1 << 18;
        for i in 0..n {
            let r = LeafId((i % 4) as u32);
            let t0 = (i as f64) / n as f64 * 100.0;
            b.push_state(r, s, t0, t0 + 0.001);
        }
        let t = b.build();
        let m = MicroModel::from_trace(&t, 16).unwrap();
        let expected: f64 = t.intervals.iter().map(|iv| iv.duration()).sum();
        // Clipping at the grid edge may drop a hair of the last interval.
        assert!((m.grand_total() - expected).abs() < 1e-6);
    }
}
