//! Variable (sampled-counter) metrics: CPU load, memory, hardware counters.
//!
//! The paper's introduction lists "CPU load, memory utilization or hardware
//! counters" among the event kinds a trace may carry, and the Ocelotl tool
//! family supports such *variables* alongside states. A variable is a
//! piecewise-constant (sample-and-hold) numeric signal per resource: a
//! sample `(t, v)` means the signal takes value `v` from `t` until the next
//! sample on the same `(resource, variable)` pair.
//!
//! Variables do not directly fit the state microscopic model, so they are
//! *binned*: a [`BinSpec`] partitions the value range into intervals, each
//! bin becomes a pseudo-state, and the time a resource's signal spends
//! inside a bin during a slice becomes `d_x(s,t)`. The output of
//! [`VariableTrace::micro_model`] is an ordinary
//! [`MicroModel`](crate::MicroModel), so Algorithm 1 and the whole
//! aggregation pipeline apply unchanged — a CPU-load anomaly shows up as
//! temporal/spatial cuts exactly like an MPI-state anomaly does.
//!
//! ```
//! use ocelotl_trace::{BinSpec, Hierarchy, LeafId, TimeGrid, VariableTraceBuilder};
//!
//! let mut b = VariableTraceBuilder::new(Hierarchy::flat(2, "core"));
//! let load = b.variable("cpu_load");
//! b.push_sample(LeafId(0), load, 0.0, 0.2);   // 20 % load from t = 0
//! b.push_sample(LeafId(0), load, 5.0, 0.9);   // jumps to 90 % at t = 5
//! b.push_sample(LeafId(1), load, 0.0, 0.2);
//! let trace = b.build();
//!
//! let grid = TimeGrid::new(0.0, 10.0, 10);
//! let model = trace.micro_model(load, grid, &BinSpec::uniform(0.0, 1.0, 4));
//! assert_eq!(model.n_states(), 4);            // one pseudo-state per bin
//! // Core 0 spends slice 7 entirely in the top-half bin:
//! let hot = model.states().get("cpu_load∈[0.750,1.000]").unwrap();
//! assert!((model.rho(LeafId(0), hot, 7) - 1.0).abs() < 1e-12);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::event::Time;
use crate::hierarchy::{Hierarchy, LeafId};
use crate::micro::{MicroBuilder, MicroModel};
use crate::slicing::TimeGrid;
use crate::state::StateRegistry;

/// Dense identifier of a variable within a [`VariableRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub u16);

impl VariableId {
    /// Raw dense index for per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Interning table for variable names (mirrors
/// [`StateRegistry`](crate::StateRegistry)).
#[derive(Debug, Clone, Default)]
pub struct VariableRegistry {
    names: Vec<String>,
    index: HashMap<String, VariableId>,
}

impl VariableRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-insert a variable by name.
    pub fn intern(&mut self, name: &str) -> VariableId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = VariableId(
            u16::try_from(self.names.len()).expect("more than 65535 distinct variables"),
        );
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Look up a variable by name without inserting.
    pub fn get(&self, name: &str) -> Option<VariableId> {
        self.index.get(name).copied()
    }

    /// Name of a variable id.
    #[inline]
    pub fn name(&self, id: VariableId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VariableId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VariableId(i as u16), n.as_str()))
    }
}

/// One sample of one variable on one resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarSample {
    /// The resource the sample belongs to.
    pub resource: LeafId,
    /// Which variable was sampled.
    pub variable: VariableId,
    /// Sample timestamp; the value holds from here to the next sample.
    pub time: Time,
    /// Sampled value (finite).
    pub value: f64,
}

/// A trace of sampled variables over a resource hierarchy.
///
/// Samples are stored grouped by `(resource, variable)` and sorted by time
/// within each group, so signal reconstruction is a linear scan.
#[derive(Debug, Clone)]
pub struct VariableTrace {
    /// The platform resource hierarchy (spatial dimension).
    pub hierarchy: Hierarchy,
    /// The interned variable names.
    pub variables: VariableRegistry,
    samples: Vec<VarSample>,
    /// `groups[resource * n_vars + var]` = range into `samples`.
    groups: Vec<std::ops::Range<usize>>,
    time_min: Time,
    time_max: Time,
}

impl VariableTrace {
    /// Observed time extent `[min, max]`; `None` without samples.
    pub fn time_range(&self) -> Option<(Time, Time)> {
        if self.samples.is_empty() {
            None
        } else {
            Some((self.time_min, self.time_max))
        }
    }

    /// Total number of samples.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// The time-sorted samples of `variable` on `resource`.
    pub fn series(&self, resource: LeafId, variable: VariableId) -> &[VarSample] {
        let idx = resource.index() * self.variables.len() + variable.index();
        &self.samples[self.groups[idx].clone()]
    }

    /// Minimum and maximum sampled value of `variable` across all
    /// resources; `None` if the variable has no samples.
    pub fn value_range(&self, variable: VariableId) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for s in &self.samples {
            if s.variable == variable {
                let (lo, hi) = range.get_or_insert((s.value, s.value));
                *lo = lo.min(s.value);
                *hi = hi.max(s.value);
            }
        }
        range
    }

    /// Reduce one variable to a state-shaped microscopic model.
    ///
    /// Each bin of `bins` becomes a pseudo-state named
    /// `"<variable>∈<bin label>"`; `d_x(s,t)` is the time the
    /// sample-and-hold signal of `s` spends inside bin `x` during slice `t`.
    /// Before a resource's first sample the signal is considered unrecorded
    /// (no mass — `Σ_x ρ_x < 1` there, which the measures handle); after the
    /// last sample the value holds until the grid end.
    pub fn micro_model(&self, variable: VariableId, grid: TimeGrid, bins: &BinSpec) -> MicroModel {
        let var_name = self.variables.name(variable);
        let mut binner = VariableBinner::new(self.hierarchy.clone(), var_name, grid, bins.clone());
        for leaf in 0..self.hierarchy.n_leaves() {
            let leaf = LeafId(leaf as u32);
            for s in self.series(leaf, variable) {
                binner.push(leaf, s.time, s.value);
            }
        }
        binner.finish()
    }

    /// Convenience: slice the observed time range into `n_slices` periods
    /// and bin `variable` into `n_bins` uniform bins over its observed value
    /// range. Returns `None` for empty traces or variables without samples.
    pub fn micro_model_auto(
        &self,
        variable: VariableId,
        n_slices: usize,
        n_bins: usize,
    ) -> Option<MicroModel> {
        let (t0, t1) = self.time_range()?;
        if t1 <= t0 {
            return None;
        }
        let (lo, hi) = self.value_range(variable)?;
        let bins = BinSpec::uniform(lo, hi, n_bins);
        let grid = TimeGrid::new(t0, t1, n_slices);
        Some(self.micro_model(variable, grid, &bins))
    }
}

/// Incremental construction of a [`VariableTrace`].
pub struct VariableTraceBuilder {
    hierarchy: Hierarchy,
    variables: VariableRegistry,
    samples: Vec<VarSample>,
    time_min: Time,
    time_max: Time,
}

impl VariableTraceBuilder {
    /// Start building over the given hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self {
            hierarchy,
            variables: VariableRegistry::new(),
            samples: Vec::new(),
            time_min: f64::INFINITY,
            time_max: f64::NEG_INFINITY,
        }
    }

    /// The hierarchy this trace is being built over.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Intern a variable name.
    pub fn variable(&mut self, name: &str) -> VariableId {
        self.variables.intern(name)
    }

    /// Record that `variable` on `resource` took `value` from `time` until
    /// the next sample on the same pair.
    pub fn push_sample(&mut self, resource: LeafId, variable: VariableId, time: Time, value: f64) {
        assert!(
            resource.index() < self.hierarchy.n_leaves(),
            "resource {resource:?} out of range"
        );
        assert!(value.is_finite(), "sample value must be finite");
        assert!(time.is_finite(), "sample time must be finite");
        self.time_min = self.time_min.min(time);
        self.time_max = self.time_max.max(time);
        self.samples.push(VarSample {
            resource,
            variable,
            time,
            value,
        });
    }

    /// Number of samples pushed so far.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Finalize: group samples by `(resource, variable)` and sort each group
    /// by time (stable, so equal timestamps keep push order and the later
    /// push wins during reconstruction).
    pub fn build(self) -> VariableTrace {
        let n_vars = self.variables.len();
        let n_groups = self.hierarchy.n_leaves() * n_vars.max(1);
        let mut samples = self.samples;
        let key = |s: &VarSample| s.resource.index() * n_vars.max(1) + s.variable.index();
        samples.sort_by(|a, b| {
            key(a)
                .cmp(&key(b))
                .then(a.time.partial_cmp(&b.time).expect("finite times"))
        });
        let mut groups = vec![0..0; n_groups];
        let mut i = 0;
        while i < samples.len() {
            let k = key(&samples[i]);
            let start = i;
            while i < samples.len() && key(&samples[i]) == k {
                i += 1;
            }
            groups[k] = start..i;
        }
        VariableTrace {
            hierarchy: self.hierarchy,
            variables: self.variables,
            samples,
            groups,
            time_min: self.time_min,
            time_max: self.time_max,
        }
    }
}

/// Streaming sample-and-hold binner: the variable-metric member of the
/// metric-builder family ([`MicroBuilder`](crate::MicroBuilder) for
/// states, [`ModelSink`](crate::sink::ModelSink) for states/density over
/// an event stream). Samples are pushed one at a time — per resource in
/// non-decreasing time order — and held until the next sample on the same
/// resource (or the grid end at [`VariableBinner::finish`]), without ever
/// storing the sample list. Memory is O(model + |S|).
pub struct VariableBinner {
    builder: MicroBuilder,
    bins: BinSpec,
    grid_end: Time,
    /// Last sample per resource still awaiting its hold-until bound.
    pending: Vec<Option<(Time, f64)>>,
}

impl VariableBinner {
    /// A binner for one variable over `grid`, binning values with `bins`.
    /// Bin `i` becomes the pseudo-state `"<var_name>∈<bin label>"`.
    pub fn new(hierarchy: Hierarchy, var_name: &str, grid: TimeGrid, bins: BinSpec) -> Self {
        let states = StateRegistry::from_names(
            (0..bins.n_bins()).map(|b| format!("{var_name}∈{}", bins.label(b))),
        );
        let n_leaves = hierarchy.n_leaves();
        Self {
            builder: MicroBuilder::new(hierarchy, states, grid),
            bins,
            grid_end: grid.end(),
            pending: vec![None; n_leaves],
        }
    }

    /// Record that `resource` took `value` at `time`. Samples on one
    /// resource must arrive in non-decreasing time order; a duplicate
    /// timestamp replaces the previous sample (the later sample wins).
    pub fn push(&mut self, resource: LeafId, time: Time, value: f64) {
        assert!(time.is_finite() && value.is_finite(), "non-finite sample");
        let slot = &mut self.pending[resource.index()];
        if let Some((t0, v0)) = *slot {
            assert!(
                time >= t0,
                "samples must arrive in time order per resource ({time} after {t0})"
            );
            if time > t0 {
                let bin = self.bins.bin_of(v0);
                self.builder
                    .add(resource, crate::StateId(bin as u16), t0, time);
            }
        }
        *slot = Some((time, value));
    }

    /// Close every resource's trailing sample at the grid end and return
    /// the accumulated model.
    pub fn finish(mut self) -> MicroModel {
        for (leaf, slot) in self.pending.iter().enumerate() {
            if let Some((t0, v0)) = *slot {
                if self.grid_end > t0 {
                    let bin = self.bins.bin_of(v0);
                    self.builder.add(
                        LeafId(leaf as u32),
                        crate::StateId(bin as u16),
                        t0,
                        self.grid_end,
                    );
                }
            }
        }
        self.builder.finish()
    }
}

/// A partition of a value range into labeled bins.
///
/// Bin `i` covers `[edges[i], edges[i+1])`; the last bin is closed on the
/// right. Values outside the range clamp to the first/last bin, so every
/// finite value maps to exactly one bin.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSpec {
    edges: Vec<f64>,
}

impl BinSpec {
    /// `n_bins` uniform bins over `[lo, hi]`; requires `hi > lo` unless
    /// there is exactly one bin (constant signals bin fine with one bin).
    pub fn uniform(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one bin");
        assert!(
            hi > lo || n_bins == 1,
            "degenerate value range needs a single bin"
        );
        let w = if n_bins == 1 {
            1.0
        } else {
            (hi - lo) / n_bins as f64
        };
        let edges = (0..=n_bins).map(|i| lo + w * i as f64).collect();
        Self { edges }
    }

    /// Bins from explicit edges (strictly increasing, at least two).
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[1] > w[0]),
            "edges must be strictly increasing"
        );
        Self { edges }
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// The bin containing `value` (clamped to the outermost bins).
    pub fn bin_of(&self, value: f64) -> usize {
        if value < self.edges[0] {
            return 0;
        }
        let last = self.n_bins() - 1;
        if value >= self.edges[last + 1] {
            return last;
        }
        // Binary search over the (few) edges.
        match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&value).expect("finite edges"))
        {
            Ok(i) => i.min(last),
            Err(i) => i - 1,
        }
    }

    /// Bounds `[lo, hi)` of bin `i`.
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        (self.edges[i], self.edges[i + 1])
    }

    /// Human-readable label of bin `i`, e.g. `"[0.25,0.50)"`.
    pub fn label(&self, i: usize) -> String {
        let (lo, hi) = self.bounds(i);
        let closing = if i + 1 == self.n_bins() { ']' } else { ')' };
        format!("[{lo:.3},{hi:.3}{closing}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateId;

    fn flat(n: usize) -> Hierarchy {
        Hierarchy::flat(n, "core")
    }

    #[test]
    fn registry_interning_mirrors_states() {
        let mut r = VariableRegistry::new();
        let a = r.intern("cpu_load");
        let b = r.intern("mem");
        assert_ne!(a, b);
        assert_eq!(r.intern("cpu_load"), a);
        assert_eq!(r.get("mem"), Some(b));
        assert_eq!(r.get("nope"), None);
        assert_eq!(r.name(a), "cpu_load");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let names: Vec<&str> = r.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["cpu_load", "mem"]);
    }

    #[test]
    fn builder_sorts_out_of_order_samples() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("load");
        b.push_sample(LeafId(0), v, 5.0, 2.0);
        b.push_sample(LeafId(0), v, 1.0, 1.0);
        b.push_sample(LeafId(0), v, 3.0, 3.0);
        let t = b.build();
        let times: Vec<f64> = t.series(LeafId(0), v).iter().map(|s| s.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(t.time_range(), Some((1.0, 5.0)));
        assert_eq!(t.n_samples(), 3);
    }

    #[test]
    fn series_are_grouped_per_resource_and_variable() {
        let mut b = VariableTraceBuilder::new(flat(2));
        let v0 = b.variable("a");
        let v1 = b.variable("b");
        b.push_sample(LeafId(1), v1, 0.0, 10.0);
        b.push_sample(LeafId(0), v0, 0.0, 20.0);
        b.push_sample(LeafId(1), v0, 0.0, 30.0);
        let t = b.build();
        assert_eq!(t.series(LeafId(0), v0).len(), 1);
        assert_eq!(t.series(LeafId(0), v1).len(), 0);
        assert_eq!(t.series(LeafId(1), v0)[0].value, 30.0);
        assert_eq!(t.series(LeafId(1), v1)[0].value, 10.0);
    }

    #[test]
    fn value_range_across_resources() {
        let mut b = VariableTraceBuilder::new(flat(2));
        let v = b.variable("load");
        let other = b.variable("other");
        b.push_sample(LeafId(0), v, 0.0, -1.5);
        b.push_sample(LeafId(1), v, 2.0, 7.0);
        b.push_sample(LeafId(1), other, 0.0, 1000.0);
        let t = b.build();
        assert_eq!(t.value_range(v), Some((-1.5, 7.0)));
        assert_eq!(t.value_range(other), Some((1000.0, 1000.0)));
        assert_eq!(t.value_range(VariableId(9)), None);
    }

    #[test]
    fn uniform_bins_and_clamping() {
        let b = BinSpec::uniform(0.0, 1.0, 4);
        assert_eq!(b.n_bins(), 4);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(0.24), 0);
        assert_eq!(b.bin_of(0.25), 1);
        assert_eq!(b.bin_of(0.999), 3);
        assert_eq!(b.bin_of(1.0), 3); // right edge closed on last bin
        assert_eq!(b.bin_of(-5.0), 0); // clamp below
        assert_eq!(b.bin_of(42.0), 3); // clamp above
    }

    #[test]
    fn explicit_edges_and_labels() {
        let b = BinSpec::from_edges(vec![0.0, 0.5, 2.0]);
        assert_eq!(b.n_bins(), 2);
        assert_eq!(b.bounds(1), (0.5, 2.0));
        assert_eq!(b.label(0), "[0.000,0.500)");
        assert_eq!(b.label(1), "[0.500,2.000]");
        assert_eq!(b.bin_of(0.5), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_edges_panic() {
        BinSpec::from_edges(vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn single_bin_spec_for_constant_signal() {
        let b = BinSpec::uniform(3.0, 3.0, 1);
        assert_eq!(b.n_bins(), 1);
        assert_eq!(b.bin_of(3.0), 0);
        assert_eq!(b.bin_of(-1.0), 0);
    }

    #[test]
    fn micro_model_step_holds_between_samples() {
        // One resource: value 0.1 over [0,5), then 0.9 over [5,10).
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("load");
        b.push_sample(LeafId(0), v, 0.0, 0.1);
        b.push_sample(LeafId(0), v, 5.0, 0.9);
        let t = b.build();
        let grid = TimeGrid::new(0.0, 10.0, 10);
        let bins = BinSpec::uniform(0.0, 1.0, 2);
        let m = t.micro_model(v, grid, &bins);
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_slices(), 10);
        // slices 0..5 entirely in bin 0; 5..10 in bin 1 (holds to grid end)
        for s in 0..5 {
            assert!((m.duration(LeafId(0), StateId(0), s) - 1.0).abs() < 1e-12);
            assert_eq!(m.duration(LeafId(0), StateId(1), s), 0.0);
        }
        for s in 5..10 {
            assert_eq!(m.duration(LeafId(0), StateId(0), s), 0.0);
            assert!((m.duration(LeafId(0), StateId(1), s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn micro_model_no_mass_before_first_sample() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("load");
        b.push_sample(LeafId(0), v, 4.0, 0.5);
        let t = b.build();
        let grid = TimeGrid::new(0.0, 10.0, 10);
        let bins = BinSpec::uniform(0.0, 1.0, 1);
        let m = t.micro_model(v, grid, &bins);
        for s in 0..4 {
            assert_eq!(m.total(LeafId(0), s), 0.0);
        }
        for s in 4..10 {
            assert!((m.total(LeafId(0), s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn micro_model_duplicate_timestamp_later_sample_wins() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("load");
        b.push_sample(LeafId(0), v, 0.0, 0.1);
        b.push_sample(LeafId(0), v, 0.0, 0.9); // overrides at the same instant
        let t = b.build();
        let grid = TimeGrid::new(0.0, 2.0, 2);
        let bins = BinSpec::uniform(0.0, 1.0, 2);
        let m = t.micro_model(v, grid, &bins);
        assert_eq!(m.duration(LeafId(0), StateId(0), 0), 0.0);
        assert!((m.duration(LeafId(0), StateId(1), 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_model_state_names_embed_variable_and_bin() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("cpu");
        b.push_sample(LeafId(0), v, 0.0, 0.5);
        let t = b.build();
        let grid = TimeGrid::new(0.0, 1.0, 1);
        let m = t.micro_model(v, grid, &BinSpec::uniform(0.0, 1.0, 2));
        assert!(m.states().get("cpu∈[0.000,0.500)").is_some());
        assert!(m.states().get("cpu∈[0.500,1.000]").is_some());
    }

    #[test]
    fn micro_model_auto_covers_observed_extent() {
        let mut b = VariableTraceBuilder::new(flat(2));
        let v = b.variable("load");
        b.push_sample(LeafId(0), v, 0.0, 0.0);
        b.push_sample(LeafId(0), v, 8.0, 1.0);
        b.push_sample(LeafId(1), v, 2.0, 0.5);
        let t = b.build();
        let m = t.micro_model_auto(v, 8, 4).unwrap();
        assert_eq!(m.n_slices(), 8);
        assert_eq!(m.n_states(), 4);
        assert_eq!(m.grid().start(), 0.0);
        assert_eq!(m.grid().end(), 8.0);
    }

    #[test]
    fn micro_model_auto_empty_cases() {
        let b = VariableTraceBuilder::new(flat(1));
        let t = b.build();
        assert!(t.micro_model_auto(VariableId(0), 10, 4).is_none());

        // Samples at a single instant: zero extent.
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("x");
        b.push_sample(LeafId(0), v, 1.0, 0.5);
        let t = b.build();
        assert!(t.micro_model_auto(v, 10, 4).is_none());
    }

    #[test]
    fn mass_conservation_from_first_sample_to_grid_end() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("load");
        for (t, val) in [(1.0, 0.2), (3.5, 0.7), (4.25, 0.1), (9.0, 0.99)] {
            b.push_sample(LeafId(0), v, t, val);
        }
        let t = b.build();
        let grid = TimeGrid::new(0.0, 10.0, 7);
        let m = t.micro_model(v, grid, &BinSpec::uniform(0.0, 1.0, 5));
        // Total mass = grid.end - first sample time = 9.0
        assert!((m.grand_total() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_resource_panics() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("x");
        b.push_sample(LeafId(3), v, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_value_panics() {
        let mut b = VariableTraceBuilder::new(flat(1));
        let v = b.variable("x");
        b.push_sample(LeafId(0), v, 0.0, f64::NAN);
    }
}
