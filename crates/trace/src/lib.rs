//! # ocelotl-trace — the trace microscopic model
//!
//! Substrate crate for the CLUSTER 2014 reproduction of *"A Spatiotemporal
//! Data Aggregation Technique for Performance Analysis of Large-scale
//! Execution Traces"* (Dosimont et al.).
//!
//! It formalizes the three trace dimensions of §III.A:
//!
//! - **space** — [`Hierarchy`]: platform resources as the leaves of a rooted
//!   tree (site → cluster → machine → core);
//! - **time** — [`TimeGrid`]: the division of continuous trace time into
//!   `|T|` regular microscopic periods;
//! - **state** — [`StateRegistry`]: the unordered set `X` of resource states.
//!
//! Raw events ([`StateInterval`]) are collected in a [`Trace`] and reduced to
//! the dense [`MicroModel`] holding `d_x(s,t)` for every microscopic
//! spatiotemporal area — the exclusive input of the aggregation algorithms
//! in `ocelotl-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod event;
pub mod hierarchy;
pub mod micro;
pub mod sink;
pub mod slicing;
pub mod state;
pub mod synthetic;
#[allow(clippy::module_inception)]
pub mod trace;
pub mod variable;

pub use density::{event_counts, event_density, event_density_auto, peak_normalize};
pub use event::{PointEvent, PointKind, StateInterval, Time};
pub use hierarchy::{Hierarchy, HierarchyBuilder, LeafId, NodeId};
pub use micro::{MicroBuilder, MicroModel};
pub use sink::{
    fold_interval, EventSink, ModelKind, ModelSink, ModelSinkError, PartialModel, ScanSink,
    StreamHeader, TeeSink, TraceSink,
};
pub use slicing::{hi_res_slices, TimeGrid, HI_RES_CELL_BUDGET, HI_RES_FACTOR, HI_RES_MIN_SLICES};
pub use state::{StateId, StateRegistry};
pub use trace::{Trace, TraceBuilder};
pub use variable::{
    BinSpec, VarSample, VariableBinner, VariableId, VariableRegistry, VariableTrace,
    VariableTraceBuilder,
};
