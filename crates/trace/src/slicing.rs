//! Discretization of continuous trace time into regular slices.
//!
//! The paper divides the raw trace into `|T|` regular time periods and
//! associates events with the periods where they are active (§III.A(2)).
//! [`TimeGrid`] implements that division plus the proration of an interval
//! onto the slices it overlaps.

use crate::event::Time;

/// A regular grid of `n_slices` time periods covering `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    start: Time,
    end: Time,
    n_slices: usize,
}

impl TimeGrid {
    /// Create a grid; requires `end > start` and `n_slices ≥ 1`.
    pub fn new(start: Time, end: Time, n_slices: usize) -> Self {
        assert!(n_slices >= 1, "need at least one slice");
        assert!(
            end > start,
            "grid must have positive extent (start={start}, end={end})"
        );
        Self {
            start,
            end,
            n_slices,
        }
    }

    /// Grid origin.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Grid end.
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// `|T|`: number of microscopic time periods.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.n_slices
    }

    /// `d(t)`: duration of every slice (regular grid).
    #[inline]
    pub fn slice_duration(&self) -> Time {
        (self.end - self.start) / self.n_slices as f64
    }

    /// Bounds `[lo, hi)` of slice `i`.
    #[inline]
    pub fn slice_bounds(&self, i: usize) -> (Time, Time) {
        let w = self.slice_duration();
        let lo = self.start + w * i as f64;
        let hi = if i + 1 == self.n_slices {
            self.end
        } else {
            self.start + w * (i + 1) as f64
        };
        (lo, hi)
    }

    /// Slice containing time `t` (clamped to the grid).
    #[inline]
    pub fn slice_of(&self, t: Time) -> usize {
        if t <= self.start {
            return 0;
        }
        if t >= self.end {
            return self.n_slices - 1;
        }
        let idx = ((t - self.start) / self.slice_duration()) as usize;
        idx.min(self.n_slices - 1)
    }

    /// Overlap duration between `[begin, end)` and slice `i`.
    #[inline]
    pub fn overlap(&self, begin: Time, end: Time, i: usize) -> Time {
        let (lo, hi) = self.slice_bounds(i);
        (end.min(hi) - begin.max(lo)).max(0.0)
    }

    /// Iterate `(slice_index, overlap_duration)` for every slice an interval
    /// touches, visiting only the overlapped slices (O(overlapped) not O(|T|)).
    pub fn prorate(&self, begin: Time, end: Time) -> ProrateIter<'_> {
        let b = begin.max(self.start);
        let e = end.min(self.end);
        let (first, last) = if e <= b {
            (1, 0) // empty
        } else {
            (
                self.slice_of(b),
                self.slice_of(e - 1e-300).max(self.slice_of(b)),
            )
        };
        ProrateIter {
            grid: self,
            begin: b,
            end: e,
            cur: first,
            last,
        }
    }
}

/// Iterator over `(slice, overlap)` pairs; see [`TimeGrid::prorate`].
pub struct ProrateIter<'a> {
    grid: &'a TimeGrid,
    begin: Time,
    end: Time,
    cur: usize,
    last: usize,
}

impl Iterator for ProrateIter<'_> {
    type Item = (usize, Time);

    fn next(&mut self) -> Option<Self::Item> {
        while self.cur <= self.last {
            let i = self.cur;
            self.cur += 1;
            let ov = self.grid.overlap(self.begin, self.end, i);
            if ov > 0.0 {
                return Some((i, ov));
            }
            // Zero-overlap slice at the boundary: skip it but keep scanning.
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bounds_cover_grid_exactly() {
        let g = TimeGrid::new(0.0, 10.0, 4);
        assert_eq!(g.slice_bounds(0), (0.0, 2.5));
        assert_eq!(g.slice_bounds(3), (7.5, 10.0));
        assert!((g.slice_duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_of_clamps() {
        let g = TimeGrid::new(1.0, 2.0, 10);
        assert_eq!(g.slice_of(0.0), 0);
        assert_eq!(g.slice_of(1.0), 0);
        assert_eq!(g.slice_of(1.95), 9);
        assert_eq!(g.slice_of(2.0), 9);
        assert_eq!(g.slice_of(99.0), 9);
    }

    #[test]
    fn prorate_splits_duration_exactly() {
        let g = TimeGrid::new(0.0, 10.0, 5);
        let parts: Vec<(usize, f64)> = g.prorate(1.0, 7.0).collect();
        let total: f64 = parts.iter().map(|&(_, d)| d).sum();
        assert!((total - 6.0).abs() < 1e-12);
        assert_eq!(parts.len(), 4); // slices 0..=3
        assert_eq!(parts[0].0, 0);
        assert!((parts[0].1 - 1.0).abs() < 1e-12);
        assert!((parts[1].1 - 2.0).abs() < 1e-12);
        assert!((parts[3].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prorate_clips_to_grid() {
        let g = TimeGrid::new(0.0, 4.0, 2);
        let parts: Vec<(usize, f64)> = g.prorate(-5.0, 100.0).collect();
        let total: f64 = parts.iter().map(|&(_, d)| d).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn prorate_empty_interval() {
        let g = TimeGrid::new(0.0, 4.0, 2);
        assert_eq!(g.prorate(3.0, 3.0).count(), 0);
        assert_eq!(g.prorate(5.0, 6.0).count(), 0);
        assert_eq!(g.prorate(3.0, 1.0).count(), 0);
    }

    #[test]
    fn prorate_interval_within_single_slice() {
        let g = TimeGrid::new(0.0, 30.0, 30);
        let parts: Vec<(usize, f64)> = g.prorate(5.25, 5.75).collect();
        assert_eq!(parts, vec![(5, 0.5)]);
    }

    #[test]
    fn prorate_interval_on_slice_boundary() {
        let g = TimeGrid::new(0.0, 10.0, 10);
        // [3.0, 4.0) is exactly slice 3.
        let parts: Vec<(usize, f64)> = g.prorate(3.0, 4.0).collect();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 3);
        assert!((parts[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn zero_extent_grid_panics() {
        TimeGrid::new(1.0, 1.0, 3);
    }
}
