//! Discretization of continuous trace time into regular slices.
//!
//! The paper divides the raw trace into `|T|` regular time periods and
//! associates events with the periods where they are active (§III.A(2)).
//! [`TimeGrid`] implements that division plus the proration of an interval
//! onto the slices it overlaps.

use crate::event::Time;

/// Minimum super-resolution slice count of a hi-res microscopic model
/// (see [`hi_res_slices`]).
pub const HI_RES_MIN_SLICES: usize = 4096;

/// Minimum refinement factor of the hi-res grid over the requested
/// resolution (see [`hi_res_slices`]).
pub const HI_RES_FACTOR: usize = 4;

/// Memory budget of the hi-res array, counted in `f64` cells
/// (`|S| · |X| · H ≤ budget`, i.e. the raw array stays ≤ 256 MiB). Wide
/// hierarchies or state-rich traces clamp the refinement instead of
/// blowing the footprint.
pub const HI_RES_CELL_BUDGET: usize = 1 << 25;

/// The super-resolution slice count the ingest pipeline uses for a
/// requested resolution of `n_slices` over `n_leaves` resources with
/// `n_states` metric layers: the smallest `n_slices · 2^k` that reaches
/// `max(`[`HI_RES_MIN_SLICES`]`, `[`HI_RES_FACTOR`]` · n_slices)`,
/// clamped so `n_leaves · n_states · H` stays within
/// [`HI_RES_CELL_BUDGET`] (never below `n_slices` itself — the floor
/// degrades the hi-res model to the requested grid, keeping huge
/// problems memory-safe).
///
/// This is a pure function of its arguments: a fresh ingest at any
/// resolution in the same dyadic family (`n`, `2n`, `4n`, …, and the
/// divisors `n/2ᵏ` that resolve to the same `H`) lands on the **same**
/// hi-res grid, which is what makes warm re-slices bit-identical to cold
/// re-ingests.
pub fn hi_res_slices(n_slices: usize, n_leaves: usize, n_states: usize) -> usize {
    let n = n_slices.max(1);
    let target = HI_RES_MIN_SLICES.max(HI_RES_FACTOR * n);
    let per_slice = (n_leaves * n_states.max(1)).max(1);
    let cap = (HI_RES_CELL_BUDGET / per_slice).max(n);
    let mut h = n;
    while h < target && h * 2 <= cap {
        h *= 2;
    }
    h
}

/// A regular grid of `n_slices` time periods covering `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    start: Time,
    end: Time,
    n_slices: usize,
}

impl TimeGrid {
    /// Create a grid; requires `end > start` and `n_slices ≥ 1`.
    pub fn new(start: Time, end: Time, n_slices: usize) -> Self {
        assert!(n_slices >= 1, "need at least one slice");
        assert!(
            end > start,
            "grid must have positive extent (start={start}, end={end})"
        );
        Self {
            start,
            end,
            n_slices,
        }
    }

    /// Grid origin.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Grid end.
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// `|T|`: number of microscopic time periods.
    #[inline]
    pub fn n_slices(&self) -> usize {
        self.n_slices
    }

    /// `d(t)`: duration of every slice (regular grid).
    #[inline]
    pub fn slice_duration(&self) -> Time {
        (self.end - self.start) / self.n_slices as f64
    }

    /// Bounds `[lo, hi)` of slice `i`.
    #[inline]
    pub fn slice_bounds(&self, i: usize) -> (Time, Time) {
        let w = self.slice_duration();
        let lo = self.start + w * i as f64;
        let hi = if i + 1 == self.n_slices {
            self.end
        } else {
            self.start + w * (i + 1) as f64
        };
        (lo, hi)
    }

    /// Slice containing time `t` (clamped to the grid).
    #[inline]
    pub fn slice_of(&self, t: Time) -> usize {
        if t <= self.start {
            return 0;
        }
        if t >= self.end {
            return self.n_slices - 1;
        }
        let idx = ((t - self.start) / self.slice_duration()) as usize;
        idx.min(self.n_slices - 1)
    }

    /// Overlap duration between `[begin, end)` and slice `i`.
    #[inline]
    pub fn overlap(&self, begin: Time, end: Time, i: usize) -> Time {
        let (lo, hi) = self.slice_bounds(i);
        (end.min(hi) - begin.max(lo)).max(0.0)
    }

    /// Iterate `(slice_index, overlap_duration)` for every slice an interval
    /// touches, visiting only the overlapped slices (O(overlapped) not O(|T|)).
    pub fn prorate(&self, begin: Time, end: Time) -> ProrateIter<'_> {
        let b = begin.max(self.start);
        let e = end.min(self.end);
        let (first, last) = if e <= b {
            (1, 0) // empty
        } else {
            (
                self.slice_of(b),
                self.slice_of(e - 1e-300).max(self.slice_of(b)),
            )
        };
        ProrateIter {
            grid: self,
            begin: b,
            end: e,
            cur: first,
            last,
        }
    }
}

/// Iterator over `(slice, overlap)` pairs; see [`TimeGrid::prorate`].
pub struct ProrateIter<'a> {
    grid: &'a TimeGrid,
    begin: Time,
    end: Time,
    cur: usize,
    last: usize,
}

impl Iterator for ProrateIter<'_> {
    type Item = (usize, Time);

    fn next(&mut self) -> Option<Self::Item> {
        while self.cur <= self.last {
            let i = self.cur;
            self.cur += 1;
            let ov = self.grid.overlap(self.begin, self.end, i);
            if ov > 0.0 {
                return Some((i, ov));
            }
            // Zero-overlap slice at the boundary: skip it but keep scanning.
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bounds_cover_grid_exactly() {
        let g = TimeGrid::new(0.0, 10.0, 4);
        assert_eq!(g.slice_bounds(0), (0.0, 2.5));
        assert_eq!(g.slice_bounds(3), (7.5, 10.0));
        assert!((g.slice_duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_of_clamps() {
        let g = TimeGrid::new(1.0, 2.0, 10);
        assert_eq!(g.slice_of(0.0), 0);
        assert_eq!(g.slice_of(1.0), 0);
        assert_eq!(g.slice_of(1.95), 9);
        assert_eq!(g.slice_of(2.0), 9);
        assert_eq!(g.slice_of(99.0), 9);
    }

    #[test]
    fn prorate_splits_duration_exactly() {
        let g = TimeGrid::new(0.0, 10.0, 5);
        let parts: Vec<(usize, f64)> = g.prorate(1.0, 7.0).collect();
        let total: f64 = parts.iter().map(|&(_, d)| d).sum();
        assert!((total - 6.0).abs() < 1e-12);
        assert_eq!(parts.len(), 4); // slices 0..=3
        assert_eq!(parts[0].0, 0);
        assert!((parts[0].1 - 1.0).abs() < 1e-12);
        assert!((parts[1].1 - 2.0).abs() < 1e-12);
        assert!((parts[3].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prorate_clips_to_grid() {
        let g = TimeGrid::new(0.0, 4.0, 2);
        let parts: Vec<(usize, f64)> = g.prorate(-5.0, 100.0).collect();
        let total: f64 = parts.iter().map(|&(_, d)| d).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn prorate_empty_interval() {
        let g = TimeGrid::new(0.0, 4.0, 2);
        assert_eq!(g.prorate(3.0, 3.0).count(), 0);
        assert_eq!(g.prorate(5.0, 6.0).count(), 0);
        assert_eq!(g.prorate(3.0, 1.0).count(), 0);
    }

    #[test]
    fn prorate_interval_within_single_slice() {
        let g = TimeGrid::new(0.0, 30.0, 30);
        let parts: Vec<(usize, f64)> = g.prorate(5.25, 5.75).collect();
        assert_eq!(parts, vec![(5, 0.5)]);
    }

    #[test]
    fn prorate_interval_on_slice_boundary() {
        let g = TimeGrid::new(0.0, 10.0, 10);
        // [3.0, 4.0) is exactly slice 3.
        let parts: Vec<(usize, f64)> = g.prorate(3.0, 4.0).collect();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 3);
        assert!((parts[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn zero_extent_grid_panics() {
        TimeGrid::new(1.0, 1.0, 3);
    }

    #[test]
    fn hi_res_slices_is_a_dyadic_multiple_above_the_floor() {
        // Small problems: the familiar 30-slice default lands on 7680,
        // and the whole dyadic family {15, 30, 60, …} resolves there too.
        assert_eq!(hi_res_slices(30, 8, 4), 7680);
        assert_eq!(hi_res_slices(60, 8, 4), 7680);
        assert_eq!(hi_res_slices(15, 8, 4), 7680);
        assert_eq!(hi_res_slices(120, 8, 4), 7680);
        // A different base lands elsewhere (50·2⁷ = 6400).
        assert_eq!(hi_res_slices(50, 8, 4), 6400);
        // Above 1024 slices the 4× factor dominates the 4096 floor.
        assert_eq!(hi_res_slices(1500, 8, 4), 6000);
        // The result is always a power-of-two multiple of the request.
        for n in [1usize, 7, 30, 333, 2000] {
            let h = hi_res_slices(n, 4, 3);
            assert_eq!(h % n, 0, "{n}");
            assert!((h / n).is_power_of_two(), "{n} -> {h}");
        }
    }

    #[test]
    fn hi_res_slices_respects_the_cell_budget() {
        // A problem so wide that the budget floors the refinement.
        assert_eq!(hi_res_slices(30, HI_RES_CELL_BUDGET, 1), 30);
        // State-rich traces clamp too: 2000 leaves × 50 states leaves
        // room for ≤ 335 slices per (leaf, state) row.
        let h = hi_res_slices(30, 2000, 50);
        assert!(h * 2000 * 50 <= HI_RES_CELL_BUDGET, "{h}");
        assert!((30..7680).contains(&h) && h.is_multiple_of(30));
        // Partial budgets stop the doubling midway but never below n.
        let h = hi_res_slices(30, HI_RES_CELL_BUDGET / 100, 1);
        assert!((30..7680).contains(&h) && h.is_multiple_of(30));
    }
}
