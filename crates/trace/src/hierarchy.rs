//! Resource hierarchy: the algebraic structure of the spatial dimension.
//!
//! The paper (§III.A) models the platform resources `S = {s1, …, sn}` as the
//! leaves of a rooted tree `H(S)` (site → cluster → machine → core). A
//! *hierarchy-consistent* spatial aggregate is exactly a node of this tree.
//!
//! Leaves are numbered in depth-first order so that every node owns a
//! contiguous leaf range `leaf_start..leaf_end`. This makes `|S_k|` an O(1)
//! lookup and lets per-node time series be accumulated bottom-up in a single
//! post-order pass.

use std::fmt;

/// Index of a node inside a [`Hierarchy`] arena.
///
/// The public field is the raw arena index; constructing an id that is out
/// of range for the hierarchy it is used with will panic at the use site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a *leaf* resource in depth-first order (`0..hierarchy.n_leaves()`).
///
/// This is the `s ∈ S` of the paper; the microscopic model is indexed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafId(pub u32);

impl LeafId {
    /// Raw leaf index (usable to index microscopic-model arrays).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    /// Level label, e.g. `"site"`, `"cluster"`, `"machine"`, `"core"`.
    kind: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Contiguous range of DFS leaf indices dominated by this node.
    leaf_start: u32,
    leaf_end: u32,
    depth: u32,
}

/// A rooted tree over the platform resources.
///
/// Invariants established by [`HierarchyBuilder::build`]:
/// - exactly one root;
/// - every non-leaf dominates ≥ 1 leaf, leaves of a subtree are contiguous in
///   DFS order;
/// - `leaf_of`/`leaf_node` are inverse bijections between leaf indices and
///   leaf nodes.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    root: NodeId,
    /// Leaf nodes in DFS order; `leaves[i]` is the node of `LeafId(i)`.
    leaves: Vec<NodeId>,
    /// For each node id, `Some(LeafId)` if the node is a leaf.
    leaf_of_node: Vec<Option<LeafId>>,
    post_order: Vec<NodeId>,
    max_depth: u32,
}

impl Hierarchy {
    /// Single-level hierarchy: a root with `n` leaf children named `"{prefix}{i}"`.
    pub fn flat(n: usize, prefix: &str) -> Self {
        let mut b = HierarchyBuilder::new("root", "root");
        for i in 0..n {
            b.add_child(b.root(), &format!("{prefix}{i}"), "leaf");
        }
        b.build().expect("flat hierarchy is always valid")
    }

    /// Balanced hierarchy with the given fan-out per level; e.g. `&[3, 4]`
    /// yields a root, 3 internal nodes, and 12 leaves.
    pub fn balanced(fanouts: &[usize]) -> Self {
        let mut b = HierarchyBuilder::new("root", "root");
        let mut frontier = vec![b.root()];
        for (lvl, &f) in fanouts.iter().enumerate() {
            assert!(f > 0, "fan-out must be positive");
            let kind = format!("level{}", lvl + 1);
            let mut next = Vec::with_capacity(frontier.len() * f);
            for &p in &frontier {
                for c in 0..f {
                    next.push(b.add_child(p, &format!("{p}.{c}"), &kind));
                }
            }
            frontier = next;
        }
        b.build().expect("balanced hierarchy is always valid")
    }

    /// The root node (the whole resource set `S`).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (internal + leaves).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a hierarchy has at least a root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves, i.e. `|S|` in the paper.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Display name of a node.
    #[inline]
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Level label of a node (e.g. `"cluster"`, `"machine"`).
    #[inline]
    pub fn kind(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].kind
    }

    /// Parent node, `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of a node, in declaration order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// True if the node has no children (it is a microscopic resource).
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// Distance from the root (root has depth 0).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// Maximum node depth in the tree.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// DFS-contiguous leaf range dominated by `id`.
    #[inline]
    pub fn leaf_range(&self, id: NodeId) -> std::ops::Range<usize> {
        let n = &self.nodes[id.index()];
        n.leaf_start as usize..n.leaf_end as usize
    }

    /// `|S_k|`: number of microscopic resources under `id` (Eq. 1 denominator).
    #[inline]
    pub fn n_leaves_under(&self, id: NodeId) -> usize {
        let n = &self.nodes[id.index()];
        (n.leaf_end - n.leaf_start) as usize
    }

    /// The node of a given leaf index.
    #[inline]
    pub fn leaf_node(&self, leaf: LeafId) -> NodeId {
        self.leaves[leaf.index()]
    }

    /// The leaf index of a node, if it is a leaf.
    #[inline]
    pub fn leaf_of(&self, id: NodeId) -> Option<LeafId> {
        self.leaf_of_node[id.index()]
    }

    /// All node ids in post-order (children before parents). The aggregation
    /// algorithms rely on this order: a node's optimal sub-partitions are
    /// available before its parent is processed.
    #[inline]
    pub fn post_order(&self) -> &[NodeId] {
        &self.post_order
    }

    /// All node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// `/`-separated path from the root to `id` (root name omitted).
    pub fn path(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.parent(c).is_some() {
                parts.push(self.name(c));
            }
            cur = self.parent(c);
        }
        parts.reverse();
        parts.join("/")
    }

    /// Resolve a `/`-separated path (relative to the root) to a node.
    pub fn find_path(&self, path: &str) -> Option<NodeId> {
        let mut cur = self.root;
        if path.is_empty() {
            return Some(cur);
        }
        'seg: for seg in path.split('/') {
            for &c in self.children(cur) {
                if self.name(c) == seg {
                    cur = c;
                    continue 'seg;
                }
            }
            return None;
        }
        Some(cur)
    }

    /// True if `anc` dominates `node` (reflexively).
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let a = &self.nodes[anc.index()];
        let n = &self.nodes[node.index()];
        a.leaf_start <= n.leaf_start && n.leaf_end <= a.leaf_end && a.depth <= n.depth
    }

    /// Children of the root, in order — convenient for cluster-level queries.
    pub fn top_level(&self) -> &[NodeId] {
        self.children(self.root)
    }

    /// Verify structural invariants; used by tests and by `build`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty hierarchy".into());
        }
        let mut seen_leaves = 0u32;
        for id in self.node_ids() {
            let n = &self.nodes[id.index()];
            if n.leaf_start > n.leaf_end {
                return Err(format!("{id}: inverted leaf range"));
            }
            if n.children.is_empty() {
                if n.leaf_end - n.leaf_start != 1 {
                    return Err(format!("{id}: leaf does not own exactly one leaf slot"));
                }
                seen_leaves += 1;
            } else {
                // Children must tile the parent's range contiguously.
                let mut cursor = n.leaf_start;
                for &c in &n.children {
                    let cn = &self.nodes[c.index()];
                    if cn.parent != Some(id) {
                        return Err(format!("{c}: bad parent link"));
                    }
                    if cn.leaf_start != cursor {
                        return Err(format!("{c}: leaf range not contiguous with siblings"));
                    }
                    cursor = cn.leaf_end;
                }
                if cursor != n.leaf_end {
                    return Err(format!("{id}: children do not tile leaf range"));
                }
            }
        }
        if seen_leaves as usize != self.leaves.len() {
            return Err("leaf count mismatch".into());
        }
        let r = &self.nodes[self.root.index()];
        if r.leaf_start != 0 || r.leaf_end as usize != self.leaves.len() {
            return Err("root does not span all leaves".into());
        }
        Ok(())
    }
}

/// Incremental construction of a [`Hierarchy`].
///
/// Nodes may be added in any order; `build` computes DFS leaf numbering,
/// depths, post-order, and validates the result.
#[derive(Debug, Clone)]
pub struct HierarchyBuilder {
    names: Vec<String>,
    kinds: Vec<String>,
    parents: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
}

impl HierarchyBuilder {
    /// Start a hierarchy with a root node.
    pub fn new(root_name: &str, root_kind: &str) -> Self {
        Self {
            names: vec![root_name.to_string()],
            kinds: vec![root_kind.to_string()],
            parents: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// The root node id (always `NodeId(0)` in builder space).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes added so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: the builder starts with a root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // always has a root
    }

    /// Append a child under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, name: &str, kind: &str) -> NodeId {
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.kinds.push(kind.to_string());
        self.parents.push(Some(parent.0));
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        NodeId(id)
    }

    /// Finalize: renumber nodes in DFS order, compute leaf ranges and depths.
    pub fn build(self) -> Result<Hierarchy, String> {
        let n = self.names.len();
        // DFS from root to assign the final arena order (pre-order).
        let mut order = Vec::with_capacity(n);
        let mut new_id = vec![u32::MAX; n];
        let mut stack = vec![0u32];
        while let Some(old) = stack.pop() {
            new_id[old as usize] = order.len() as u32;
            order.push(old);
            // Push children reversed so they pop in declaration order.
            for &c in self.children[old as usize].iter().rev() {
                stack.push(c);
            }
        }
        if order.len() != n {
            return Err("unreachable nodes in hierarchy".into());
        }

        let mut nodes: Vec<Node> = order
            .iter()
            .map(|&old| Node {
                name: self.names[old as usize].clone(),
                kind: self.kinds[old as usize].clone(),
                parent: self.parents[old as usize].map(|p| NodeId(new_id[p as usize])),
                children: self.children[old as usize]
                    .iter()
                    .map(|&c| NodeId(new_id[c as usize]))
                    .collect(),
                leaf_start: 0,
                leaf_end: 0,
                depth: 0,
            })
            .collect();

        // Depths (parents precede children in pre-order).
        for i in 0..n {
            if let Some(p) = nodes[i].parent {
                nodes[i].depth = nodes[p.index()].depth + 1;
            }
        }
        let max_depth = nodes.iter().map(|nd| nd.depth).max().unwrap_or(0);

        // Leaf numbering: pre-order visit; leaves get consecutive indices.
        let mut leaves = Vec::new();
        let mut leaf_of_node = vec![None; n];
        for i in 0..n {
            if nodes[i].children.is_empty() {
                let leaf = LeafId(leaves.len() as u32);
                nodes[i].leaf_start = leaf.0;
                nodes[i].leaf_end = leaf.0 + 1;
                leaf_of_node[i] = Some(leaf);
                leaves.push(NodeId(i as u32));
            }
        }
        // Internal leaf ranges: reverse pre-order = children processed first.
        for i in (0..n).rev() {
            if !nodes[i].children.is_empty() {
                let first = nodes[i].children[0];
                let last = *nodes[i].children.last().unwrap();
                nodes[i].leaf_start = nodes[first.index()].leaf_start;
                nodes[i].leaf_end = nodes[last.index()].leaf_end;
            }
        }

        // Post-order traversal.
        let mut post_order = Vec::with_capacity(n);
        let mut stack: Vec<(NodeId, bool)> = vec![(NodeId(0), false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                post_order.push(id);
            } else {
                stack.push((id, true));
                for &c in nodes[id.index()].children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }

        let h = Hierarchy {
            nodes,
            root: NodeId(0),
            leaves,
            leaf_of_node,
            post_order,
            max_depth,
        };
        h.check_invariants()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_hierarchy_basics() {
        let h = Hierarchy::flat(5, "p");
        assert_eq!(h.n_leaves(), 5);
        assert_eq!(h.len(), 6);
        assert_eq!(h.n_leaves_under(h.root()), 5);
        assert_eq!(h.leaf_range(h.root()), 0..5);
        assert!(h.check_invariants().is_ok());
        assert_eq!(h.max_depth(), 1);
    }

    #[test]
    fn balanced_hierarchy_shape() {
        let h = Hierarchy::balanced(&[3, 4]);
        assert_eq!(h.n_leaves(), 12);
        assert_eq!(h.len(), 1 + 3 + 12);
        assert_eq!(h.top_level().len(), 3);
        for &c in h.top_level() {
            assert_eq!(h.n_leaves_under(c), 4);
        }
        assert_eq!(h.max_depth(), 2);
    }

    #[test]
    fn leaf_numbering_is_dfs_contiguous() {
        let mut b = HierarchyBuilder::new("site", "site");
        let c1 = b.add_child(b.root(), "c1", "cluster");
        let c2 = b.add_child(b.root(), "c2", "cluster");
        b.add_child(c2, "m3", "machine");
        b.add_child(c1, "m1", "machine");
        b.add_child(c1, "m2", "machine");
        let h = b.build().unwrap();
        assert_eq!(h.n_leaves(), 3);
        // c1's machines must occupy leaves 0..2 (declaration order preserved).
        let c1 = h.find_path("c1").unwrap();
        let c2 = h.find_path("c2").unwrap();
        assert_eq!(h.leaf_range(c1), 0..2);
        assert_eq!(h.leaf_range(c2), 2..3);
        assert_eq!(h.name(h.leaf_node(LeafId(0))), "m1");
        assert_eq!(h.name(h.leaf_node(LeafId(1))), "m2");
        assert_eq!(h.name(h.leaf_node(LeafId(2))), "m3");
    }

    #[test]
    fn post_order_children_before_parents() {
        let h = Hierarchy::balanced(&[2, 2]);
        let pos: std::collections::HashMap<NodeId, usize> = h
            .post_order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for id in h.node_ids() {
            for &c in h.children(id) {
                assert!(pos[&c] < pos[&id], "child {c} must precede parent {id}");
            }
        }
        assert_eq!(h.post_order().len(), h.len());
    }

    #[test]
    fn paths_roundtrip() {
        let h = Hierarchy::balanced(&[2, 3]);
        for id in h.node_ids() {
            let p = h.path(id);
            assert_eq!(h.find_path(&p), Some(id), "path {p:?}");
        }
        assert_eq!(h.find_path("nope"), None);
    }

    #[test]
    fn ancestor_queries() {
        let h = Hierarchy::balanced(&[2, 2]);
        let root = h.root();
        for id in h.node_ids() {
            assert!(h.is_ancestor(root, id));
            assert!(h.is_ancestor(id, id));
        }
        let a = h.top_level()[0];
        let b = h.top_level()[1];
        assert!(!h.is_ancestor(a, b));
        assert!(!h.is_ancestor(b, a));
        for &c in h.children(a) {
            assert!(h.is_ancestor(a, c));
            assert!(!h.is_ancestor(b, c));
        }
    }

    #[test]
    fn leaf_node_and_leaf_of_are_inverse() {
        let h = Hierarchy::balanced(&[2, 2, 2]);
        for i in 0..h.n_leaves() {
            let leaf = LeafId(i as u32);
            let node = h.leaf_node(leaf);
            assert_eq!(h.leaf_of(node), Some(leaf));
            assert!(h.is_leaf(node));
        }
        assert_eq!(h.leaf_of(h.root()), None);
    }

    #[test]
    fn single_node_hierarchy() {
        let b = HierarchyBuilder::new("only", "root");
        let h = b.build().unwrap();
        assert_eq!(h.n_leaves(), 1);
        assert!(h.is_leaf(h.root()));
        assert_eq!(h.leaf_range(h.root()), 0..1);
    }

    #[test]
    fn display_and_index() {
        let h = Hierarchy::flat(2, "x");
        let id = h.root();
        assert_eq!(format!("{id}"), "n0");
        assert_eq!(id.index(), 0);
    }
}
