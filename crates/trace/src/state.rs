//! State dimension: the set `X = {x1, …, xl}` of possible resource states.
//!
//! A state is a named, timestamped activity with a begin and an end (e.g. a
//! function call and its return, §III.A(3)). The paper deliberately puts no
//! algebraic structure on `X`; we only intern names to dense ids.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a state within a [`StateRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u16);

impl StateId {
    /// Raw dense index for per-state arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Interning table for state names.
///
/// Ids are dense (`0..len`) so per-state data can live in flat arrays.
#[derive(Debug, Clone, Default)]
pub struct StateRegistry {
    names: Vec<String>,
    index: HashMap<String, StateId>,
}

impl StateRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a registry from a list of names (deduplicating).
    pub fn from_names<I: IntoIterator<Item = impl AsRef<str>>>(names: I) -> Self {
        let mut r = Self::new();
        for n in names {
            r.intern(n.as_ref());
        }
        r
    }

    /// Get-or-insert a state by name.
    pub fn intern(&mut self, name: &str) -> StateId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = StateId(u16::try_from(self.names.len()).expect("more than 65535 distinct states"));
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Look up a state by name without inserting.
    pub fn get(&self, name: &str) -> Option<StateId> {
        self.index.get(name).copied()
    }

    /// Name of a state id.
    #[inline]
    pub fn name(&self, id: StateId) -> &str {
        &self.names[id.index()]
    }

    /// `|X|`: number of distinct states.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no states have been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (StateId(i as u16), n.as_str()))
    }

    /// All state ids in order.
    pub fn ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.names.len() as u16).map(StateId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = StateRegistry::new();
        let a = r.intern("MPI_Send");
        let b = r.intern("MPI_Recv");
        assert_ne!(a, b);
        assert_eq!(r.intern("MPI_Send"), a);
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), "MPI_Send");
    }

    #[test]
    fn get_does_not_insert() {
        let mut r = StateRegistry::new();
        assert_eq!(r.get("x"), None);
        let id = r.intern("x");
        assert_eq!(r.get("x"), Some(id));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_names_dedups() {
        let r = StateRegistry::from_names(["a", "b", "a", "c"]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get("a"), Some(StateId(0)));
        assert_eq!(r.get("c"), Some(StateId(2)));
    }

    #[test]
    fn iter_in_id_order() {
        let r = StateRegistry::from_names(["z", "y", "x"]);
        let names: Vec<&str> = r.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["z", "y", "x"]);
        let ids: Vec<StateId> = r.ids().collect();
        assert_eq!(ids, vec![StateId(0), StateId(1), StateId(2)]);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", StateId(7)), "x7");
    }
}
