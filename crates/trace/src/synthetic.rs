//! Deterministic synthetic microscopic models.
//!
//! Provides the paper's Fig. 3 artificial trace (12 resources × 20 slices ×
//! 2 states), a block-structured generator with known ground truth, and a
//! small deterministic PRNG so no external dependency is needed here.

use crate::hierarchy::Hierarchy;
use crate::micro::MicroModel;
use crate::slicing::TimeGrid;
use crate::state::StateRegistry;

/// SplitMix64: tiny deterministic PRNG for reproducible synthetic data.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The paper's Fig. 3 artificial trace: 12 resources in 3 clusters of 4,
/// 20 microscopic time periods, two states with `ρ₂ = 1 − ρ₁`.
///
/// The spatiotemporal patterns follow the description in §III.D:
/// - slices 0–1: homogeneous in time, heterogeneous in space;
/// - slices 2–4: same, except cluster SA is internally homogeneous;
/// - slices 5–6: homogeneous in time and in space at the cluster level;
/// - slice 7: fully homogeneous;
/// - slices 8–19: SA spatially homogeneous but varying in time, SB constant,
///   SC a mix of per-resource temporal patterns.
pub fn fig3_model() -> MicroModel {
    let hierarchy = fig3_hierarchy();
    let states = StateRegistry::from_names(["state1", "state2"]);
    let n_slices = 20;
    let grid = TimeGrid::new(0.0, n_slices as f64, n_slices);
    let n = hierarchy.n_leaves();

    // ρ₁ per (resource, slice).
    let mut rho1 = vec![0.0f64; n * n_slices];
    let mut set = |s: usize, t: usize, v: f64| rho1[s * n_slices + t] = v;

    for s in 0..12 {
        // Slices 0–1: fully heterogeneous in space, constant in time.
        let v = 0.05 + 0.08 * s as f64; // 0.05 .. 0.93
        set(s, 0, v);
        set(s, 1, v);
        // Slices 2–4: SA homogeneous (0.8); SB/SC heterogeneous.
        let v = if s < 4 {
            0.8
        } else {
            0.10 + 0.09 * (s - 4) as f64
        };
        for t in 2..5 {
            set(s, t, v);
        }
        // Slices 5–6: cluster-homogeneous levels.
        let v = match s / 4 {
            0 => 0.9,
            1 => 0.5,
            _ => 0.1,
        };
        set(s, 5, v);
        set(s, 6, v);
        // Slice 7: fully homogeneous.
        set(s, 7, 0.5);
        // Slices 8–19.
        for t in 8..20 {
            let v = match s {
                // SA: same ramp for every resource (space-homog, time-heterog).
                0..=3 => 0.15 + 0.05 * (t - 8) as f64,
                // SB: constant (homog in both).
                4..=7 => 0.35,
                // SC: per-resource temporal patterns.
                8 | 9 => {
                    if t < 14 {
                        0.2
                    } else {
                        0.8
                    }
                }
                10 => {
                    if t % 2 == 0 {
                        0.25
                    } else {
                        0.75
                    }
                }
                _ => {
                    if t < 11 {
                        0.9
                    } else {
                        0.3
                    }
                }
            };
            set(s, t, v);
        }
    }

    // Expand to the dense [leaf][state][slice] layout with ρ₂ = 1 − ρ₁.
    let mut rho = vec![0.0f64; n * 2 * n_slices];
    for s in 0..n {
        for t in 0..n_slices {
            let v = rho1[s * n_slices + t];
            rho[(s * 2) * n_slices + t] = v;
            rho[(s * 2 + 1) * n_slices + t] = 1.0 - v;
        }
    }
    MicroModel::from_proportions(hierarchy, states, grid, rho)
}

/// The Fig. 3 hierarchy: root S with clusters SA, SB, SC of 4 resources each.
pub fn fig3_hierarchy() -> Hierarchy {
    let mut b = crate::hierarchy::HierarchyBuilder::new("S", "root");
    for (ci, cname) in ["SA", "SB", "SC"].iter().enumerate() {
        let c = b.add_child(b.root(), cname, "cluster");
        for k in 0..4 {
            b.add_child(c, &format!("s{}", ci * 4 + k + 1), "resource");
        }
    }
    b.build().expect("fig3 hierarchy is valid")
}

/// A rectangular homogeneous block: all cells `(s, t)` with
/// `s ∈ leaves`, `t ∈ slices` share the same state proportions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Leaf index range covered by the block.
    pub leaves: std::ops::Range<usize>,
    /// Slice index range covered by the block.
    pub slices: std::ops::Range<usize>,
    /// One proportion per state; must sum to ≤ 1.
    pub rho: Vec<f64>,
}

/// Build a micro model from homogeneous blocks over a given hierarchy.
/// Cells not covered by any block keep all-zero proportions.
/// Later blocks overwrite earlier ones.
pub fn block_model(
    hierarchy: Hierarchy,
    states: StateRegistry,
    n_slices: usize,
    blocks: &[Block],
) -> MicroModel {
    let n = hierarchy.n_leaves();
    let x = states.len();
    let grid = TimeGrid::new(0.0, n_slices as f64, n_slices);
    let mut rho = vec![0.0f64; n * x * n_slices];
    for b in blocks {
        assert_eq!(b.rho.len(), x, "block must give one ρ per state");
        for s in b.leaves.clone() {
            for t in b.slices.clone() {
                for (xi, &r) in b.rho.iter().enumerate() {
                    rho[(s * x + xi) * n_slices + t] = r;
                }
            }
        }
    }
    MicroModel::from_proportions(hierarchy, states, grid, rho)
}

/// Random micro model: balanced hierarchy, uniform random proportions.
/// Deterministic for a given seed.
pub fn random_model(fanouts: &[usize], n_slices: usize, n_states: usize, seed: u64) -> MicroModel {
    let hierarchy = Hierarchy::balanced(fanouts);
    let states =
        StateRegistry::from_names((0..n_states).map(|i| format!("st{i}")).collect::<Vec<_>>());
    let grid = TimeGrid::new(0.0, n_slices as f64, n_slices);
    let n = hierarchy.n_leaves();
    let mut rng = SplitMix64(seed);
    let mut rho = vec![0.0f64; n * n_states * n_slices];
    for s in 0..n {
        for t in 0..n_slices {
            // Random point on the simplex scaled to sum ≤ 1.
            let mut parts: Vec<f64> = (0..n_states).map(|_| rng.next_f64()).collect();
            let sum: f64 = parts.iter().sum();
            if sum > 0.0 {
                let scale = rng.next_f64() / sum; // total occupancy in [0,1)
                for p in &mut parts {
                    *p *= scale;
                }
            }
            for (xi, &p) in parts.iter().enumerate() {
                rho[(s * n_states + xi) * n_slices + t] = p;
            }
        }
    }
    MicroModel::from_proportions(hierarchy, states, grid, rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::LeafId;
    use crate::state::StateId;

    #[test]
    fn fig3_dimensions_match_paper() {
        let m = fig3_model();
        assert_eq!(m.n_leaves(), 12);
        assert_eq!(m.n_slices(), 20);
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.hierarchy().top_level().len(), 3);
    }

    #[test]
    fn fig3_proportions_sum_to_one() {
        let m = fig3_model();
        for s in 0..12 {
            for t in 0..20 {
                let total: f64 = (0..2).map(|x| m.rho(LeafId(s), StateId(x), t)).sum();
                assert!((total - 1.0).abs() < 1e-9, "cell ({s},{t}) sums to {total}");
            }
        }
    }

    #[test]
    fn fig3_region_properties() {
        let m = fig3_model();
        let x0 = StateId(0);
        // Slice 7 fully homogeneous.
        for s in 0..12 {
            assert!((m.rho(LeafId(s), x0, 7) - 0.5).abs() < 1e-9);
        }
        // Slices 0-1 heterogeneous across resources.
        let vals: Vec<f64> = (0..12).map(|s| m.rho(LeafId(s), x0, 0)).collect();
        for w in vals.windows(2) {
            assert!((w[0] - w[1]).abs() > 1e-3);
        }
        // SA homogeneous across space in slices 8..20 but varies in time.
        for t in 8..20 {
            let v = m.rho(LeafId(0), x0, t);
            for s in 1..4 {
                assert!((m.rho(LeafId(s), x0, t) - v).abs() < 1e-9);
            }
        }
        assert!((m.rho(LeafId(0), x0, 8) - m.rho(LeafId(0), x0, 19)).abs() > 0.1);
    }

    #[test]
    fn block_model_places_blocks() {
        let h = Hierarchy::flat(4, "p");
        let st = StateRegistry::from_names(["a", "b"]);
        let m = block_model(
            h,
            st,
            10,
            &[
                Block {
                    leaves: 0..2,
                    slices: 0..5,
                    rho: vec![0.75, 0.25],
                },
                Block {
                    leaves: 2..4,
                    slices: 5..10,
                    rho: vec![0.1, 0.2],
                },
            ],
        );
        assert!((m.rho(LeafId(0), StateId(0), 0) - 0.75).abs() < 1e-12);
        assert!((m.rho(LeafId(1), StateId(1), 4) - 0.25).abs() < 1e-12);
        assert_eq!(m.rho(LeafId(0), StateId(0), 7), 0.0);
        assert!((m.rho(LeafId(3), StateId(1), 9) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn random_model_is_deterministic() {
        let a = random_model(&[2, 3], 8, 3, 42);
        let b = random_model(&[2, 3], 8, 3, 42);
        let c = random_model(&[2, 3], 8, 3, 43);
        assert_eq!(a.n_leaves(), 6);
        let mut same = true;
        let mut diff_seed_same = true;
        for s in 0..6 {
            for x in 0..3 {
                for t in 0..8 {
                    let (l, xi) = (LeafId(s), StateId(x));
                    same &= a.rho(l, xi, t) == b.rho(l, xi, t);
                    diff_seed_same &= a.rho(l, xi, t) == c.rho(l, xi, t);
                }
            }
        }
        assert!(same);
        assert!(!diff_seed_same);
    }

    #[test]
    fn random_model_rho_sums_below_one() {
        let m = random_model(&[4, 4], 12, 4, 7);
        for s in 0..16 {
            for t in 0..12 {
                let total: f64 = (0..4).map(|x| m.rho(LeafId(s), StateId(x), t)).sum();
                assert!(total <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64(1);
        let mut b = SplitMix64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64(2).next_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
