//! In-memory trace container and programmatic builder.
//!
//! A [`Trace`] bundles the three paper dimensions: the hierarchy (space),
//! the recorded state intervals (which discretize into time × state), plus
//! optional point events and free-form metadata.

use crate::event::{PointEvent, StateInterval, Time};
use crate::hierarchy::{Hierarchy, LeafId};
use crate::state::{StateId, StateRegistry};

/// A complete execution trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The platform resource hierarchy (spatial dimension).
    pub hierarchy: Hierarchy,
    /// The interned state names (state dimension).
    pub states: StateRegistry,
    /// All recorded state intervals.
    pub intervals: Vec<StateInterval>,
    /// Point events (message markers etc.), not part of the micro model.
    pub points: Vec<PointEvent>,
    /// Free-form key/value metadata (application, platform, …).
    pub metadata: Vec<(String, String)>,
    time_min: Time,
    time_max: Time,
}

impl Trace {
    /// Observed time extent `[min, max]`; `None` if the trace has no events.
    pub fn time_range(&self) -> Option<(Time, Time)> {
        if self.intervals.is_empty() && self.points.is_empty() {
            None
        } else {
            Some((self.time_min, self.time_max))
        }
    }

    /// Number of event records: 2 per state interval (enter + leave, as a
    /// Score-P/Paje writer would emit) plus 1 per point event. This is the
    /// quantity reported in the paper's Table II "Event number" row.
    pub fn event_count(&self) -> usize {
        self.intervals.len() * 2 + self.points.len()
    }

    /// Metadata value by key, if present.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.metadata
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Check internal consistency (resources and states in range, intervals
    /// non-negative, within reported time range).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.hierarchy.n_leaves();
        let x = self.states.len();
        for (i, iv) in self.intervals.iter().enumerate() {
            if iv.resource.index() >= n {
                return Err(format!("interval {i}: resource out of range"));
            }
            if iv.state.index() >= x {
                return Err(format!("interval {i}: state out of range"));
            }
            if iv.end < iv.begin || iv.end.is_nan() || iv.begin.is_nan() {
                return Err(format!("interval {i}: negative duration"));
            }
        }
        for (i, p) in self.points.iter().enumerate() {
            if p.resource.index() >= n {
                return Err(format!("point {i}: resource out of range"));
            }
        }
        Ok(())
    }
}

/// Incremental construction of a [`Trace`].
pub struct TraceBuilder {
    hierarchy: Hierarchy,
    states: StateRegistry,
    intervals: Vec<StateInterval>,
    points: Vec<PointEvent>,
    metadata: Vec<(String, String)>,
    time_min: Time,
    time_max: Time,
}

impl TraceBuilder {
    /// Start building a trace over the given hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self {
            hierarchy,
            states: StateRegistry::new(),
            intervals: Vec::new(),
            points: Vec::new(),
            metadata: Vec::new(),
            time_min: f64::INFINITY,
            time_max: f64::NEG_INFINITY,
        }
    }

    /// Use a pre-populated state registry (ids will be shared with callers).
    pub fn with_states(mut self, states: StateRegistry) -> Self {
        self.states = states;
        self
    }

    /// The hierarchy this trace is being built over.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Intern a state name.
    pub fn state(&mut self, name: &str) -> StateId {
        self.states.intern(name)
    }

    /// Record that `resource` was in `state` over `[begin, end)`.
    pub fn push_state(&mut self, resource: LeafId, state: StateId, begin: Time, end: Time) {
        assert!(
            end >= begin,
            "negative interval [{begin}, {end}) for {resource:?}"
        );
        assert!(
            resource.index() < self.hierarchy.n_leaves(),
            "resource {resource:?} out of range"
        );
        self.time_min = self.time_min.min(begin);
        self.time_max = self.time_max.max(end);
        self.intervals.push(StateInterval {
            resource,
            state,
            begin,
            end,
        });
    }

    /// Record a point event.
    pub fn push_point(&mut self, ev: PointEvent) {
        self.time_min = self.time_min.min(ev.time);
        self.time_max = self.time_max.max(ev.time);
        self.points.push(ev);
    }

    /// Attach a metadata key/value pair.
    pub fn push_meta(&mut self, key: &str, value: &str) {
        self.metadata.push((key.to_string(), value.to_string()));
    }

    /// Number of intervals pushed so far.
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Finalize the trace.
    pub fn build(self) -> Trace {
        let t = Trace {
            hierarchy: self.hierarchy,
            states: self.states,
            intervals: self.intervals,
            points: self.points,
            metadata: self.metadata,
            time_min: self.time_min,
            time_max: self.time_max,
        };
        debug_assert!(t.check_invariants().is_ok());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PointKind;

    fn tiny() -> Trace {
        let h = Hierarchy::flat(2, "p");
        let mut b = TraceBuilder::new(h);
        let run = b.state("Run");
        let wait = b.state("Wait");
        b.push_state(LeafId(0), run, 0.0, 5.0);
        b.push_state(LeafId(1), wait, 1.0, 6.0);
        b.push_meta("app", "test");
        b.build()
    }

    #[test]
    fn time_range_tracks_events() {
        let t = tiny();
        assert_eq!(t.time_range(), Some((0.0, 6.0)));
    }

    #[test]
    fn event_count_counts_enter_and_leave() {
        let t = tiny();
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn metadata_lookup() {
        let t = tiny();
        assert_eq!(t.meta("app"), Some("test"));
        assert_eq!(t.meta("nope"), None);
    }

    #[test]
    fn empty_trace_has_no_range() {
        let t = TraceBuilder::new(Hierarchy::flat(1, "p")).build();
        assert_eq!(t.time_range(), None);
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn points_extend_time_range() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        b.push_point(PointEvent {
            resource: LeafId(0),
            time: 42.0,
            kind: PointKind::Marker,
        });
        let t = b.build();
        assert_eq!(t.time_range(), Some((42.0, 42.0)));
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn invariants_hold_for_built_trace() {
        assert!(tiny().check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_resource_panics() {
        let h = Hierarchy::flat(1, "p");
        let mut b = TraceBuilder::new(h);
        let s = b.state("x");
        b.push_state(LeafId(5), s, 0.0, 1.0);
    }
}
