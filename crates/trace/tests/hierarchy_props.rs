//! Property tests of the hierarchy arena on arbitrary tree shapes: the
//! spatial dimension's invariants (§III.A) must hold for *any* rooted tree,
//! not just the balanced ones the other tests use.

use ocelotl_trace::{Hierarchy, HierarchyBuilder, LeafId, NodeId};
use proptest::prelude::*;

/// Build a random tree: node `i` (1-based) attaches to a parent chosen
/// among the already-created nodes by `parent_picks[i-1]`.
fn random_tree(parent_picks: &[usize]) -> Hierarchy {
    let mut b = HierarchyBuilder::new("root", "site");
    let mut nodes: Vec<NodeId> = vec![b.root()];
    for (i, &pick) in parent_picks.iter().enumerate() {
        let parent = nodes[pick % nodes.len()];
        let node = b.add_child(parent, &format!("n{i}"), "node");
        nodes.push(node);
    }
    b.build().expect("random tree is a valid hierarchy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_on_arbitrary_trees(picks in prop::collection::vec(0usize..1000, 1..60)) {
        let h = random_tree(&picks);
        prop_assert!(h.check_invariants().is_ok());
        prop_assert_eq!(h.len(), picks.len() + 1);
    }

    /// The leaf ranges of any node's children partition the node's range
    /// (disjoint, covering, in order).
    #[test]
    fn child_leaf_ranges_partition_the_parent(picks in prop::collection::vec(0usize..1000, 1..60)) {
        let h = random_tree(&picks);
        for node in h.node_ids() {
            let children = h.children(node);
            if children.is_empty() {
                prop_assert_eq!(h.leaf_range(node).len(), 1, "leaves own one leaf");
                continue;
            }
            let r = h.leaf_range(node);
            let mut cursor = r.start;
            for &c in children {
                let cr = h.leaf_range(c);
                prop_assert_eq!(cr.start, cursor, "children are DFS-contiguous");
                cursor = cr.end;
            }
            prop_assert_eq!(cursor, r.end, "children cover the parent exactly");
        }
    }

    /// Post-order visits every node exactly once, children before parents.
    #[test]
    fn post_order_is_a_valid_topological_order(picks in prop::collection::vec(0usize..1000, 1..60)) {
        let h = random_tree(&picks);
        let order = h.post_order();
        prop_assert_eq!(order.len(), h.len());
        let mut pos = vec![usize::MAX; h.len()];
        for (i, &n) in order.iter().enumerate() {
            prop_assert_eq!(pos[n.index()], usize::MAX, "node visited twice");
            pos[n.index()] = i;
        }
        for node in h.node_ids() {
            for &c in h.children(node) {
                prop_assert!(
                    pos[c.index()] < pos[node.index()],
                    "child {c:?} after parent {node:?}"
                );
            }
        }
    }

    /// `find_path(path(n)) == n` for every node, and leaf lookups invert.
    #[test]
    fn paths_round_trip(picks in prop::collection::vec(0usize..1000, 1..40)) {
        let h = random_tree(&picks);
        for node in h.node_ids() {
            prop_assert_eq!(h.find_path(&h.path(node)), Some(node));
        }
        for leaf in 0..h.n_leaves() {
            let node = h.leaf_node(LeafId(leaf as u32));
            prop_assert_eq!(h.leaf_of(node), Some(LeafId(leaf as u32)));
            prop_assert!(h.is_leaf(node));
        }
    }

    /// `is_ancestor` agrees with parent-chain walking, and ancestor leaf
    /// ranges contain descendant ranges.
    #[test]
    fn ancestry_is_consistent(picks in prop::collection::vec(0usize..1000, 1..40)) {
        let h = random_tree(&picks);
        for a in h.node_ids() {
            for b in h.node_ids() {
                // Walk b's parent chain looking for a.
                let mut cur = Some(b);
                let mut found = false;
                while let Some(n) = cur {
                    if n == a {
                        found = true;
                        break;
                    }
                    cur = h.parent(n);
                }
                prop_assert_eq!(h.is_ancestor(a, b), found, "a={:?} b={:?}", a, b);
                if found {
                    let (ra, rb) = (h.leaf_range(a), h.leaf_range(b));
                    prop_assert!(ra.start <= rb.start && rb.end <= ra.end);
                }
            }
        }
    }

    /// Depth is parent depth + 1; max_depth is attained by some node.
    #[test]
    fn depths_are_consistent(picks in prop::collection::vec(0usize..1000, 1..60)) {
        let h = random_tree(&picks);
        prop_assert_eq!(h.depth(h.root()), 0);
        let mut max_seen = 0;
        for node in h.node_ids() {
            if let Some(p) = h.parent(node) {
                prop_assert_eq!(h.depth(node), h.depth(p) + 1);
            }
            max_seen = max_seen.max(h.depth(node));
        }
        prop_assert_eq!(max_seen, h.max_depth());
    }

    /// n_leaves_under sums over children; the root sees every leaf.
    #[test]
    fn leaf_counts_are_additive(picks in prop::collection::vec(0usize..1000, 1..60)) {
        let h = random_tree(&picks);
        prop_assert_eq!(h.n_leaves_under(h.root()), h.n_leaves());
        for node in h.node_ids() {
            let children = h.children(node);
            if !children.is_empty() {
                let sum: usize = children.iter().map(|&c| h.n_leaves_under(c)).sum();
                prop_assert_eq!(h.n_leaves_under(node), sum);
            }
        }
    }
}
