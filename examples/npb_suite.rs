//! NPB suite tour: run the four kernel skeletons (CG, LU, MG, EP) on the
//! same small platform and compare their aggregated overviews at the same
//! trade-off — the spatiotemporal signature of each communication pattern.
//!
//! ```text
//! cargo run --release --example npb_suite
//! ```

use ocelotl::core::{aggregate, quality, AggregationInput, DpConfig};
use ocelotl::mpisim::apps::{cg, ep, ft, lu, mg};
use ocelotl::mpisim::{Engine, Network, Nic, Op};
use ocelotl::prelude::*;
use ocelotl::viz::{overview, OverviewOptions};

fn main() {
    let platform = Platform::uniform(4, 4, Nic::Infiniband20G);
    let network = Network::for_platform(&platform);

    let kernels: Vec<(&str, Vec<Vec<Op>>)> = vec![
        (
            "CG (butterfly exchange + machine reductions)",
            cg::build_programs(&platform, &cg::CgConfig::default().scaled(0.05)),
        ),
        (
            "LU (SSOR wavefront)",
            lu::build_programs(&platform, &lu::LuConfig::default().scaled(0.05)),
        ),
        (
            "MG (V-cycle halo exchange)",
            mg::build_programs(
                &platform,
                &mg::MgConfig {
                    cycles: 10,
                    ..mg::MgConfig::default()
                },
            ),
        ),
        (
            "FT (3-D FFT — global transpose per iteration)",
            ft::build_programs(
                &platform,
                &ft::FtConfig {
                    iters: 10,
                    ..ft::FtConfig::default()
                },
            ),
        ),
        (
            "EP (embarrassingly parallel — negative control)",
            ep::build_programs(
                &platform,
                &ep::EpConfig {
                    blocks: 24,
                    ..ep::EpConfig::default()
                },
            ),
        ),
    ];

    for (name, programs) in kernels {
        let (trace, stats) = Engine::new(&platform, &network, 42).run(programs, &[]);
        let model = MicroModel::from_trace(&trace, 30).unwrap();
        let input = AggregationInput::build(&model);
        let p = 0.4;
        // coarse_ties: pure (ρ = 1) compute phases tie on pIC; prefer the
        // coarsest optimum for display.
        let partition = aggregate(&input, p, &DpConfig::coarse_ties()).partition(&input);
        let q = quality(&input, &partition);
        println!(
            "\n=== {name} ===\n    {} events over {:.1} s → {} aggregates at p = {p} (complexity −{:.1} %, loss ratio {:.3})",
            trace.event_count(),
            stats.makespan,
            partition.len(),
            100.0 * q.complexity_reduction,
            q.loss_ratio,
        );
        let ov = overview(
            &input,
            OverviewOptions {
                p,
                time_range: trace.time_range(),
                ..OverviewOptions::default()
            },
        );
        print!("{}", ov.to_ascii(&input, 72, 8));
    }

    println!(
        "\nReading the signatures: EP collapses to a few homogeneous bands \
         (nothing to see); CG shows the per-machine wait/send split; LU's \
         wavefront staggers the machines; MG alternates compute-heavy and \
         exchange-heavy stripes once per V-cycle; FT is wall-to-wall \
         transpose (MPI_Alltoall) bands."
    );
}
