//! Reproduction of the paper's Fig. 4 / §V.B: analyze a 700-process NAS-LU
//! run over three heterogeneous Nancy clusters (Table II case C).
//!
//! ```text
//! cargo run --release --example lu_heterogeneous [scale]
//! ```
//!
//! Expected structure, as in the paper: an init phase, the three clusters
//! separated spatially by the aggregation, the graphite cluster (10 GbE,
//! 16 cores/machine) spatially heterogeneous, and a temporal rupture on
//! griffon at t = 34.5 s caused by machines hidden behind its switches.

use ocelotl::core::AggregationInput;
use ocelotl::mpisim::{scenario, CaseId};
use ocelotl::prelude::*;
use ocelotl::viz::{overview, OverviewOptions};
use std::fs;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.008);
    let sc = scenario(CaseId::C, scale);
    println!(
        "case C: NAS-LU, {} processes on {} (graphene/graphite/griffon)",
        sc.platform.n_ranks, sc.platform.site
    );
    let (trace, stats) = sc.run(7);
    println!(
        "simulated {} events, makespan {:.1} s",
        trace.event_count(),
        stats.makespan
    );

    let model = MicroModel::from_trace(&trace, 30).unwrap();
    let input = AggregationInput::build(&model);
    let h = model.hierarchy().clone();

    let p = 0.35;
    let ov = overview(
        &input,
        OverviewOptions {
            p,
            width: 1100.0,
            height: 560.0,
            min_pixel_height: 2.0,
            time_range: trace.time_range(),
        },
    );
    println!(
        "\noverview at p = {p}: {} aggregates → {} data + {} visual after the pixel budget",
        ov.partition.len(),
        ov.visual.n_data,
        ov.visual.n_visual
    );
    print!("{}", ov.to_ascii(&input, 110, 21));

    fs::create_dir_all("out").unwrap();
    fs::write("out/fig4.svg", ov.to_svg(&input)).unwrap();
    println!("wrote out/fig4.svg");

    // --- structural checks matching the paper's reading of Fig. 4 ---------
    let part = &ov.partition;

    // 1. The three clusters are separated: no aggregate spans the root.
    let spans_root = part.areas().iter().any(|a| a.node == h.root());
    println!(
        "\n1. clusters separated spatially: {}",
        if spans_root {
            "NO (root-level aggregate remains)"
        } else {
            "yes"
        }
    );

    // 2. Graphite is more fragmented (spatially heterogeneous) than
    //    graphene, relative to cluster size.
    let frag = |cluster: NodeId| {
        let areas = part
            .areas()
            .iter()
            .filter(|a| h.is_ancestor(cluster, a.node) && a.node != cluster)
            .count();
        areas as f64 / h.n_leaves_under(cluster) as f64
    };
    let clusters = h.top_level();
    let (graphene, graphite, griffon) = (clusters[0], clusters[1], clusters[2]);
    println!(
        "2. fragmentation (areas per process): graphene {:.2}, graphite {:.2}, griffon {:.2}",
        frag(graphene),
        frag(graphite),
        frag(griffon)
    );

    // 3. Temporal rupture on griffon at 34.5 s.
    let grid = model.grid();
    let (r0, r1) = (grid.slice_of(34.5), grid.slice_of(36.5));
    let hits = part
        .areas()
        .iter()
        .filter(|a| h.is_ancestor(griffon, a.node) && a.first_slice > r0 && a.first_slice <= r1 + 1)
        .count();
    println!(
        "3. griffon aggregates opening a boundary in the 34.5 s window (slices {r0}..={r1}): {hits}"
    );

    // 4. Mode states per phase, as the paper reads them.
    let init_slice = 2; // well inside the ≈17.5 s init at 30 slices over ≈60 s
    let rho_init = input.rho_aggregate_all(h.root(), init_slice, init_slice);
    let mode = ocelotl::viz::mode(&rho_init);
    println!(
        "4. mode during init phase: {} (α = {:.2})",
        mode.state
            .map(|s| model.states().name(s).to_string())
            .unwrap_or_default(),
        mode.alpha
    );
}
