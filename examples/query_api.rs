//! The public query API in one tour: build an `AnalysisSession`, wrap it
//! in a `QueryEngine`, and drive the whole analysis surface through typed
//! `AnalysisRequest`/`AnalysisReply` values — the same protocol the CLI's
//! analysis commands and `ocelotl serve` speak. The JSON lines printed at
//! the end are byte-identical to what a server would answer.
//!
//! Run with: `cargo run --release --example query_api`

use ocelotl::prelude::*;
use ocelotl::query::{AnalysisReply, AnalysisRequest, QueryEngine};

fn main() {
    // A small Table II case-A run, sliced into the paper's 30 periods.
    let scenario = ocelotl::mpisim::scenario(CaseId::A, 0.004);
    let (trace, _stats) = scenario.run(42);
    let model = MicroModel::from_trace(&trace, 30).expect("non-empty trace");
    let fingerprint = ocelotl::format::hash_trace(&trace).expect("fingerprint");

    let session = AnalysisSession::new(
        OwnedSource::new(model, fingerprint),
        SessionConfig {
            n_slices: 30,
            ..SessionConfig::default()
        },
    );
    let mut engine = QueryEngine::new(session);

    // 1. Shape of the analyzed model.
    let AnalysisReply::Describe(d) = engine.execute(&AnalysisRequest::Describe).unwrap() else {
        unreachable!()
    };
    println!(
        "model: {} resources x {} slices x {} states ({} backend)",
        d.shape.n_leaves, d.shape.n_slices, d.shape.n_states, d.backend
    );

    // 2. The optimal partition at p = 0.5, with the §III.D baselines.
    let AnalysisReply::Aggregate(agg) = engine
        .execute(&AnalysisRequest::Aggregate {
            p: 0.5,
            coarse: false,
            compare: true,
            diff_p: None,
        })
        .unwrap()
    else {
        unreachable!()
    };
    println!(
        "p = 0.5: {} aggregates (of {} cells), pIC = {:.4}",
        agg.summary.n_areas, agg.summary.n_cells, agg.summary.pic
    );
    for b in &agg.baselines {
        println!(
            "  {:<28} {:>6} areas  pIC {:>10.4}",
            b.name, b.n_areas, b.pic
        );
    }

    // 3. The significant trade-off levels (the slider stops).
    let AnalysisReply::Significant(sig) = engine
        .execute(&AnalysisRequest::Significant { resolution: 1e-2 })
        .unwrap()
    else {
        unreachable!()
    };
    println!("{} significant levels:", sig.levels.len());
    for l in &sig.levels {
        println!(
            "  p in [{:.3}, {:.3}] -> {} areas ({:.0} % reduction)",
            l.p_low,
            l.p_high,
            l.n_areas,
            100.0 * l.complexity_reduction
        );
    }

    // 4. A drawable overview reply, rendered without any cube access —
    //    exactly what a remote client does with a server answer.
    let AnalysisReply::Overview(ov) = engine
        .execute(&AnalysisRequest::RenderOverview {
            p: 0.5,
            coarse: false,
            min_rows: 2.0 / (480.0 / d.shape.n_leaves as f64),
            level_resolution: None,
        })
        .unwrap()
    else {
        unreachable!()
    };
    println!(
        "overview: {} drawable items ({} data + {} visual)",
        ov.items.len(),
        ov.n_data,
        ov.n_visual
    );
    let ascii = ocelotl::viz::render_reply_ascii(
        &ov,
        &ocelotl::viz::AsciiOptions {
            width: 72,
            height: 12,
        },
    );
    print!("{ascii}");

    // 5. Every reply has one canonical wire form (line-delimited JSON) —
    //    decode(encode(x)) == x, and equal replies give equal bytes.
    let reply = AnalysisReply::Significant(sig);
    let line = ocelotl::format::encode_reply(&Ok(reply.clone()));
    assert_eq!(
        ocelotl::format::decode_reply(&line).unwrap().unwrap(),
        reply
    );
    println!("\nwire form of the significant-levels reply:\n{line}");
}
