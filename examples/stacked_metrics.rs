//! Stacked metrics: drive ONE aggregation with MPI states *and* a binned
//! hardware counter at the same time (`MicroModel::stack`).
//!
//! The paper's criterion is additive over the state dimension (§III.C), so
//! concatenating metric layers optimizes the joint trade-off: an area must
//! be homogeneous in *every* layer to aggregate cheaply. The payoff shown
//! here: an anomaly invisible to the MPI states (a thermally-throttled
//! machine that computes at full occupancy, just hotter) still splits the
//! overview once the temperature layer is stacked in.
//!
//! ```text
//! cargo run --release --example stacked_metrics
//! ```

use ocelotl::core::{aggregate, AggregationInput, DpConfig};
use ocelotl::prelude::*;
use ocelotl::trace::{BinSpec, VariableTraceBuilder};

fn main() {
    let hierarchy = Hierarchy::balanced(&[2, 4, 2]); // 2 clusters × 4 machines × 2 cores
    let h = hierarchy.clone();
    let throttled = h.children(h.top_level()[0])[1];
    let throttled_leaves = h.leaf_range(throttled);

    // 1. MPI states: every core computes steadily for 100 s with a short
    //    synchronization each 10 s — identical everywhere, including on the
    //    throttled machine (occupancy hides the problem).
    let mut tb = TraceBuilder::new(hierarchy.clone());
    let compute = tb.state("Compute");
    let reduce = tb.state("MPI_Allreduce");
    for leaf in 0..h.n_leaves() {
        let mut t = 0.0;
        while t < 100.0 {
            tb.push_state(LeafId(leaf as u32), compute, t, (t + 9.5).min(100.0));
            if t + 9.5 < 100.0 {
                tb.push_state(LeafId(leaf as u32), reduce, t + 9.5, t + 10.0);
            }
            t += 10.0;
        }
    }
    let trace = tb.build();
    // 10-second slices align with the synchronization period, so the MPI
    // layer is temporally homogeneous — any temporal cut in the joint
    // overview must come from the temperature layer.
    let states = MicroModel::from_trace(&trace, 10).unwrap();

    // 2. A temperature sensor sampled each second: ~55 °C everywhere, but
    //    the throttled machine ramps to ~90 °C during [30 s, 80 s).
    let mut vb = VariableTraceBuilder::new(hierarchy);
    let sensor = vb.variable("core_temp");
    for leaf in 0..h.n_leaves() {
        for step in 0..100 {
            let t = step as f64;
            let hot = throttled_leaves.contains(&leaf) && (30.0..80.0).contains(&t);
            let base = if hot { 90.0 } else { 55.0 };
            let noise = ((leaf * 13 + step * 7) % 11) as f64 / 11.0 * 4.0;
            vb.push_sample(LeafId(leaf as u32), sensor, t, base + noise);
        }
    }
    let var_trace = vb.build();
    let temps = var_trace.micro_model(
        sensor,
        *states.grid(),
        &BinSpec::from_edges(vec![40.0, 70.0, 100.0]), // nominal | hot
    );

    // 3. Aggregate each layer alone, then the stack.
    let cfg = DpConfig::coarse_ties();
    let report = |name: &str, model: &MicroModel| {
        let input = AggregationInput::build(model);
        let part = aggregate(&input, 0.45, &cfg).partition(&input);
        let machine_split = part
            .areas()
            .iter()
            .any(|a| h.is_ancestor(throttled, a.node) && a.node != h.root());
        println!(
            "{name:<22} {:>3} aggregates; throttled machine separated: {}",
            part.len(),
            if machine_split { "YES" } else { "no" }
        );
        part
    };

    println!("p = 0.45, 16 cores x 10 slices:\n");
    report("MPI states only", &states);
    report("temperature only", &temps);
    let stacked = states.stack(&temps, "hw:");
    let part = report("states + temperature", &stacked);

    // 4. Where exactly did the joint overview cut time on the hot machine?
    //    Walk the covering aggregates along one of its cores (the tail of
    //    the window may be absorbed into a broader area above the machine,
    //    so filtering by subtree would miss the closing boundary).
    let stacked_input = AggregationInput::build(&stacked);
    let core0 = LeafId(throttled_leaves.start as u32);
    let mut cuts: Vec<usize> = (0..stacked.n_slices())
        .filter_map(|t| ocelotl::core::area_at(&part, &stacked_input, core0, t))
        .map(|a| a.first_slice)
        .filter(|&s| s > 0)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let times: Vec<String> = cuts
        .iter()
        .map(|&s| format!("{:.0} s", s as f64 * stacked.grid().slice_duration()))
        .collect();
    println!(
        "\ntemporal boundaries along the throttled machine's row (stacked): {}",
        times.join(", ")
    );
    println!("(the 30 s / 80 s thermal window appears — the MPI layer alone never finds it)");
}
