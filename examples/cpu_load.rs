//! CPU-load analysis: the paper's introduction lists "CPU load, memory
//! utilization or hardware counters" among traceable event kinds. This
//! example builds a sampled CPU-load signal over a two-cluster platform,
//! bins it into pseudo-states, and runs the same spatiotemporal aggregation
//! used for MPI states — the load anomaly pops out of the overview exactly
//! like the paper's network perturbations.
//!
//! ```text
//! cargo run --release --example cpu_load
//! ```

use ocelotl::prelude::*;
use ocelotl::trace::{BinSpec, VariableTraceBuilder};
use ocelotl::viz::{overview, OverviewOptions};

fn main() {
    // 1. Platform: 2 clusters × 4 machines × 4 cores (32 monitored cores).
    let hierarchy = Hierarchy::balanced(&[2, 4, 4]);

    // 2. A 100-second load signal sampled once per second per core.
    //    Cluster 0 idles around 20 % load, cluster 1 crunches around 80 %;
    //    one machine of cluster 0 is hijacked by a co-located job during
    //    [40 s, 60 s) and jumps to ~95 % — the anomaly to detect.
    let mut b = VariableTraceBuilder::new(hierarchy);
    let v = b.variable("cpu_load");
    let h = b.hierarchy().clone();
    let hijacked = h.children(h.top_level()[0])[2];
    let hijacked_leaves = h.leaf_range(hijacked);
    for leaf in 0..h.n_leaves() {
        // Baselines sit mid-bin so the ±3 % jitter never crosses a band edge:
        // idle cluster ≈ 12–18 %, busy cluster ≈ 62–68 %, hijack ≈ 95 %.
        let base = if leaf < 16 { 0.12 } else { 0.62 };
        for step in 0..100 {
            let t = step as f64;
            let noise = ((leaf * 31 + step * 17) % 13) as f64 / 13.0 * 0.06;
            let value = if hijacked_leaves.contains(&leaf) && (40.0..60.0).contains(&t) {
                0.95
            } else {
                base + noise
            };
            b.push_sample(LeafId(leaf as u32), v, t, value);
        }
    }
    let trace = b.build();
    println!(
        "sampled {} load measurements on {} cores (machine `{}` hijacked 40–60 s)",
        trace.n_samples(),
        h.n_leaves(),
        h.path(hijacked),
    );

    // 3. Bin the signal into four load bands; each band is a pseudo-state,
    //    so the result is an ordinary microscopic model.
    let grid = TimeGrid::new(0.0, 100.0, 25);
    let bins = BinSpec::uniform(0.0, 1.0, 4);
    let model = trace.micro_model(v, grid, &bins);
    println!(
        "microscopic model: {} cores × {} slices × {} load bands",
        model.n_leaves(),
        model.n_slices(),
        model.n_states()
    );

    // 4. Aggregate and render at two strengths. The load signal is nearly
    //    pure per bin (ρ ∈ {0,1}), which makes zero-loss partitions tie on
    //    pIC; `coarse_ties` picks the coarsest optimum (criterion G1).
    let input = AggregationInput::build(&model);
    let cfg = DpConfig::coarse_ties();
    for p in [0.35, 0.8] {
        let partition = aggregate(&input, p, &cfg).partition(&input);
        let q = quality(&input, &partition);
        println!(
            "\n=== p = {p}: {} aggregates (complexity −{:.1} %, loss ratio {:.3}) ===",
            partition.len(),
            100.0 * q.complexity_reduction,
            q.loss_ratio,
        );
        let ov = overview(
            &input,
            OverviewOptions {
                p,
                time_range: Some((0.0, 100.0)),
                ..OverviewOptions::default()
            },
        );
        print!("{}", ov.to_ascii(&input, 72, 10));
    }

    // 5. Where did the aggregation cut time on the hijacked machine?
    let partition = aggregate(&input, 0.35, &cfg).partition(&input);
    let mut boundaries: Vec<usize> = partition
        .areas()
        .iter()
        .filter(|a| h.is_ancestor(hijacked, a.node) && a.first_slice > 0)
        .map(|a| a.first_slice)
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    let times: Vec<String> = boundaries
        .iter()
        .map(|&s| format!("{:.0} s", s as f64 * grid.slice_duration()))
        .collect();
    println!(
        "\ntemporal boundaries on the hijacked machine: {}",
        times.join(", ")
    );
    println!("(the 40 s / 60 s hijack window should appear among them)");
}
