//! Reproduction of the paper's Fig. 3: the artificial 12-resource ×
//! 20-slice trace, aggregated every way the paper shows.
//!
//! ```text
//! cargo run --release --example fig3_artificial
//! ```
//!
//! Prints the pIC comparison between the spatiotemporal optimum (Fig. 3.d)
//! and the product of unidimensional optima (Fig. 3.c), the nested
//! representations across p (Fig. 3.d vs 3.e), and the data/visual
//! aggregate counts of the visual-aggregation pass (Fig. 3.f). Writes SVG
//! renderings to `out/`.

use ocelotl::core::{
    aggregate_default, product_aggregation, significant_partitions, AggregationInput, DpConfig,
    Partition,
};
use ocelotl::trace::synthetic::fig3_model;
use ocelotl::viz::{overview, visually_aggregate, OverviewOptions};
use std::fs;

fn main() {
    let model = fig3_model();
    let input = AggregationInput::build(&model);
    let h = model.hierarchy();
    fs::create_dir_all("out").expect("create out/");

    println!("Fig. 3 artificial trace: |S| = 12 (3 clusters), |T| = 20, |X| = 2\n");

    // --- Fig 3.c vs 3.d: product of 1-D optima vs true 2-D optimum -------
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "p", "pIC(2D)", "pIC(SxT)", "advantage", "2D areas", "SxT areas"
    );
    for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let tree = aggregate_default(&input, p);
        let part2d = tree.partition(&input);
        let prod = product_aggregation(&model, p);
        let pic2d = part2d.pic(&input, p);
        let picp = prod.partition.pic(&input, p);
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>12.4} {:>8} {:>8}",
            p,
            pic2d,
            picp,
            pic2d - picp,
            part2d.len(),
            prod.partition.len()
        );
        assert!(pic2d >= picp - 1e-9, "the 2-D optimum can never lose");
    }

    // --- Fig 3.d / 3.e: two levels of detail ------------------------------
    let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
    println!("\nsignificant aggregation levels (paper shows two: 56 and 15 areas):");
    for e in &entries {
        println!(
            "  p ∈ [{:.3}, {:.3}] → {:>3} areas (loss {:.3}, gain {:.3})",
            e.p_low,
            e.p_high,
            e.partition.len(),
            e.partition.loss(&input),
            e.partition.gain(&input),
        );
    }

    // Pick the levels closest to the paper's two illustrated partitions
    // (Fig. 3.d: 56 areas at p_d; Fig. 3.e: 15 areas at p_e > p_d).
    let closest = |target: usize| {
        entries
            .iter()
            .min_by_key(|e| e.partition.len().abs_diff(target))
            .expect("has levels")
    };
    let detailed = closest(56);
    let coarse = closest(15);
    println!(
        "\nFig. 3.d analogue: {} areas (paper: 56); Fig. 3.e analogue: {} areas (paper: 15)",
        detailed.partition.len(),
        coarse.partition.len()
    );

    // --- Fig 3.f: visual aggregation --------------------------------------
    // Threshold of 2 leaf-rows applied to the detailed partition (as in the
    // paper's illustration of Fig. 3.d → 3.f).
    let va = visually_aggregate(&input, &detailed.partition, 2.0);
    println!(
        "Fig. 3.f analogue: {} data aggregates + {} visual aggregates (paper: 21 + 7)",
        va.n_data, va.n_visual
    );

    // --- renderings --------------------------------------------------------
    let p_detailed = 0.5 * (detailed.p_low + detailed.p_high);
    let p_coarse = 0.5 * (coarse.p_low + coarse.p_high);
    for (name, p) in [("fig3_detailed", p_detailed), ("fig3_coarse", p_coarse)] {
        let ov = overview(
            &input,
            OverviewOptions {
                p,
                width: 800.0,
                height: 360.0,
                time_range: Some((0.0, 20.0)),
                ..OverviewOptions::default()
            },
        );
        let path = format!("out/{name}.svg");
        fs::write(&path, ov.to_svg(&input)).expect("write svg");
        println!("wrote {path} ({} items)", ov.visual.items.len());
    }

    // Microscopic rendering for comparison (Fig. 3.a).
    let micro = Partition::microscopic(h, 20);
    let va_micro = visually_aggregate(&input, &micro, 1.0);
    let svg = ocelotl::viz::render_svg(
        &input,
        &va_micro.items,
        &ocelotl::viz::SvgOptions {
            width: 800.0,
            height: 360.0,
            time_range: Some((0.0, 20.0)),
            ..Default::default()
        },
    );
    fs::write("out/fig3_microscopic.svg", svg).expect("write svg");
    println!("wrote out/fig3_microscopic.svg (240 cells)");
}
