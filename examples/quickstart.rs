//! Quickstart: build a small trace by hand, aggregate it, and print the
//! overview at a few aggregation strengths.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ocelotl::prelude::*;
use ocelotl::viz::{overview, OverviewOptions};

fn main() {
    // 1. A platform of 2 clusters × 4 machines.
    let mut b = HierarchyBuilder::new("site", "site");
    for c in 0..2 {
        let cluster = b.add_child(b.root(), &format!("cluster{c}"), "cluster");
        for m in 0..4 {
            b.add_child(cluster, &format!("m{c}{m}"), "machine");
        }
    }
    let hierarchy = b.build().unwrap();

    // 2. A synthetic workload: cluster0 computes steadily; cluster1 computes
    //    too, but stalls in MPI_Wait during [4 s, 6 s) — an injected anomaly.
    let mut tb = TraceBuilder::new(hierarchy);
    let compute = tb.state("Compute");
    let wait = tb.state("MPI_Wait");
    for leaf in 0..8u32 {
        let mut t = 0.0;
        while t < 10.0 {
            let stalled = leaf >= 4 && (4.0..6.0).contains(&t);
            let state = if stalled { wait } else { compute };
            // Small per-leaf phase shift to keep things non-trivial.
            let step = 0.05 + 0.01 * (leaf as f64 % 3.0);
            tb.push_state(LeafId(leaf), state, t, (t + step).min(10.0));
            t += step;
        }
    }
    let trace = tb.build();
    println!(
        "trace: {} events over {:?}",
        trace.event_count(),
        trace.time_range().unwrap()
    );

    // 3. Microscopic model (the paper uses 30 time slices) + cached inputs.
    let model = MicroModel::from_trace(&trace, 30).unwrap();
    let input = AggregationInput::build(&model);

    // 4. Aggregate at increasing strength and show the overview.
    for p in [0.1, 0.5, 0.9] {
        let tree = aggregate_default(&input, p);
        let partition = tree.partition(&input);
        let q = quality(&input, &partition);
        println!(
            "\n=== p = {p}: {} aggregates (complexity −{:.1} %, loss ratio {:.3}) ===",
            partition.len(),
            100.0 * q.complexity_reduction,
            q.loss_ratio,
        );
        let ov = overview(
            &input,
            OverviewOptions {
                p,
                time_range: trace.time_range(),
                ..OverviewOptions::default()
            },
        );
        print!("{}", ov.to_ascii(&input, 72, 8));
    }

    // 5. The significant p values an analyst can slide through.
    let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
    println!("\nsignificant aggregation levels:");
    for e in &entries {
        println!(
            "  p ∈ [{:.3}, {:.3}] → {} aggregates",
            e.p_low,
            e.p_high,
            e.partition.len()
        );
    }
}
