//! Quickstart: build a small trace by hand, analyze it through an
//! `AnalysisSession`, and print the overview at a few aggregation
//! strengths.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! With `OCELOTL_CACHE_DIR` set, the session persists its artifacts
//! (`.ocube` prefix sums, `.opart` partition table) there, and a second
//! run is warm: zero DP runs, byte-identical output. CI pins exactly that
//! (cold run, warm run, `diff`).

use ocelotl::format::{hash_trace, DiskStore};
use ocelotl::prelude::*;
use ocelotl::viz::{overview_with_partition, OverviewOptions};

fn main() {
    // 1. A platform of 2 clusters × 4 machines.
    let mut b = HierarchyBuilder::new("site", "site");
    for c in 0..2 {
        let cluster = b.add_child(b.root(), &format!("cluster{c}"), "cluster");
        for m in 0..4 {
            b.add_child(cluster, &format!("m{c}{m}"), "machine");
        }
    }
    let hierarchy = b.build().unwrap();

    // 2. A synthetic workload: cluster0 computes steadily; cluster1 computes
    //    too, but stalls in MPI_Wait during [4 s, 6 s) — an injected anomaly.
    let mut tb = TraceBuilder::new(hierarchy);
    let compute = tb.state("Compute");
    let wait = tb.state("MPI_Wait");
    for leaf in 0..8u32 {
        let mut t = 0.0;
        while t < 10.0 {
            let stalled = leaf >= 4 && (4.0..6.0).contains(&t);
            let state = if stalled { wait } else { compute };
            // Small per-leaf phase shift to keep things non-trivial.
            let step = 0.05 + 0.01 * (leaf as f64 % 3.0);
            tb.push_state(LeafId(leaf), state, t, (t + step).min(10.0));
            t += step;
        }
    }
    let trace = tb.build();
    println!(
        "trace: {} events over {:?}",
        trace.event_count(),
        trace.time_range().unwrap()
    );

    // 3. The analysis session over the 30-slice microscopic model (the
    //    paper's |T|). The trace's content hash keys the artifacts, so a
    //    cache dir makes every later run warm — and bit-identical.
    let model = MicroModel::from_trace(&trace, 30).unwrap();
    let fingerprint = hash_trace(&trace).expect("fingerprint");
    let mut session = AnalysisSession::new(
        OwnedSource::new(model, fingerprint),
        SessionConfig {
            n_slices: 30,
            ..SessionConfig::default()
        },
    );
    if let Some(dir) = std::env::var_os("OCELOTL_CACHE_DIR").filter(|d| !d.is_empty()) {
        session = session.with_store(DiskStore::new(dir, "quickstart"));
    }

    // 4. Aggregate at increasing strength and show the overview.
    for p in [0.1, 0.5, 0.9] {
        let partition = session.partition_at(p, false).unwrap();
        let cube = session.cube().unwrap();
        let q = quality(cube, &partition);
        println!(
            "\n=== p = {p}: {} aggregates (complexity −{:.1} %, loss ratio {:.3}) ===",
            partition.len(),
            100.0 * q.complexity_reduction,
            q.loss_ratio,
        );
        let ov = overview_with_partition(
            cube,
            partition,
            OverviewOptions {
                p,
                time_range: trace.time_range(),
                ..OverviewOptions::default()
            },
        );
        print!("{}", ov.to_ascii(cube, 72, 8));
    }

    // 5. The significant p values an analyst can slide through.
    let entries = session.significant(1e-3).unwrap();
    println!("\nsignificant aggregation levels:");
    for e in &entries {
        println!(
            "  p ∈ [{:.3}, {:.3}] → {} aggregates",
            e.p_low,
            e.p_high,
            e.partition.len()
        );
    }
    // Provenance goes to stderr so cold and warm stdout diff clean.
    eprintln!(
        "session: cube {:?}, {} DP runs this process",
        session.cube_source(),
        session.dp_runs()
    );
}
