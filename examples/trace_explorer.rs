//! Trace explorer: load a `.ptf`/`.btf` trace file (or simulate a Table II
//! case) and browse its spatiotemporal overview from the terminal.
//!
//! ```text
//! cargo run --release --example trace_explorer -- --case A --scale 0.05
//! cargo run --release --example trace_explorer -- --file mytrace.btf --p 0.4
//! cargo run --release --example trace_explorer -- --case C --list-levels
//! cargo run --release --example trace_explorer -- --case A --zoom cluster0/machine2 --p 0.3
//! cargo run --release --example trace_explorer -- --case A --report out/report.html
//! ```

use ocelotl::core::{significant_partitions, significant_ps, AggregationInput, DpConfig};
use ocelotl::format::{read_micro, write_trace};
use ocelotl::mpisim::{scenario, CaseId};
use ocelotl::prelude::*;
use ocelotl::viz::{clutter_metrics, overview, OverviewOptions};
use std::path::PathBuf;

struct Args {
    case: CaseId,
    scale: f64,
    file: Option<PathBuf>,
    p: f64,
    slices: usize,
    list_levels: bool,
    save: Option<PathBuf>,
    zoom: Option<String>,
    report: Option<PathBuf>,
    summary: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        case: CaseId::A,
        scale: 0.02,
        file: None,
        p: 0.4,
        slices: 30,
        list_levels: false,
        save: None,
        zoom: None,
        report: None,
        summary: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--case" => {
                args.case = match it.next().as_deref() {
                    Some("A") | Some("a") => CaseId::A,
                    Some("B") | Some("b") => CaseId::B,
                    Some("C") | Some("c") => CaseId::C,
                    Some("D") | Some("d") => CaseId::D,
                    other => panic!("unknown case {other:?} (use A|B|C|D)"),
                }
            }
            "--scale" => args.scale = it.next().unwrap().parse().expect("bad --scale"),
            "--file" => args.file = Some(PathBuf::from(it.next().unwrap())),
            "--p" => args.p = it.next().unwrap().parse().expect("bad --p"),
            "--slices" => args.slices = it.next().unwrap().parse().expect("bad --slices"),
            "--list-levels" => args.list_levels = true,
            "--save" => args.save = Some(PathBuf::from(it.next().unwrap())),
            "--zoom" => args.zoom = Some(it.next().expect("--zoom path")),
            "--report" => args.report = Some(PathBuf::from(it.next().unwrap())),
            "--summary" => args.summary = it.next().unwrap().parse().expect("bad --summary"),
            "--help" | "-h" => {
                println!(
                    "usage: trace_explorer [--case A|B|C|D] [--scale f] [--file trace.(ptf|btf)]\n\
                     [--p f] [--slices n] [--list-levels] [--save out.(ptf|btf)]\n\
                     [--zoom hierarchy/path] [--report out.html] [--summary n]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // Obtain a microscopic model: from a file (streaming, never
    // materializing the event list) or from a fresh simulation.
    let (model, label) = match &args.file {
        Some(path) => {
            let t0 = std::time::Instant::now();
            let model = read_micro(path, args.slices).expect("read trace file");
            println!(
                "read {} → micro model in {:.2?}",
                path.display(),
                t0.elapsed()
            );
            (model, path.display().to_string())
        }
        None => {
            let sc = scenario(args.case, args.scale);
            println!(
                "simulating case {} at scale {} ({} ranks)…",
                sc.case.letter(),
                args.scale,
                sc.platform.n_ranks
            );
            let (trace, stats) = sc.run(42);
            println!(
                "  {} events, makespan {:.1} s",
                trace.event_count(),
                stats.makespan
            );
            // Report what a microscopic Gantt would look like (Fig. 2).
            let clutter = clutter_metrics(&trace, 1920, 1080);
            println!(
                "  Gantt clutter on 1920×1080: {} objects ({:.1} % sub-pixel), \
                 {:.2} px/resource, overdraw mean {:.1} / max {}",
                clutter.n_objects,
                100.0 * clutter.sub_pixel_fraction,
                clutter.pixels_per_resource,
                clutter.mean_overdraw,
                clutter.max_overdraw,
            );
            if let Some(out) = &args.save {
                write_trace(&trace, out).expect("save trace");
                println!("  saved trace to {}", out.display());
            }
            let model = MicroModel::from_trace(&trace, args.slices).unwrap();
            (model, format!("case {}", args.case.letter()))
        }
    };

    // Optional drill-down into a subtree before analysis (Ocelotl's zoom).
    let model = match &args.zoom {
        None => model,
        Some(path) => {
            let node = model
                .hierarchy()
                .find_path(path)
                .unwrap_or_else(|| panic!("--zoom: no node at path {path:?}"));
            let sub = model.submodel(node, 0, model.n_slices() - 1);
            println!("zoomed into {path:?}: |S| = {} resources", sub.n_leaves());
            sub
        }
    };
    println!(
        "microscopic model: |S| = {}, |T| = {}, |X| = {}",
        model.n_leaves(),
        model.n_slices(),
        model.n_states()
    );
    let t0 = std::time::Instant::now();
    let input = AggregationInput::build(&model);
    println!(
        "aggregation inputs built in {:.2?} ({} MiB cached)",
        t0.elapsed(),
        input.memory_bytes() >> 20
    );

    if args.list_levels {
        let t0 = std::time::Instant::now();
        let entries = significant_partitions(&input, &DpConfig::default(), 1e-3);
        println!(
            "significant levels ({} distinct partitions, {:.2?}):",
            entries.len(),
            t0.elapsed()
        );
        for (e, p) in entries.iter().zip(significant_ps(&entries)) {
            println!(
                "  p ∈ [{:.3}, {:.3}] (try --p {:.3}) → {} aggregates",
                e.p_low,
                e.p_high,
                p,
                e.partition.len()
            );
        }
        return;
    }

    let t0 = std::time::Instant::now();
    let ov = overview(
        &input,
        OverviewOptions {
            p: args.p,
            time_range: Some((model.grid().start(), model.grid().end())),
            ..OverviewOptions::default()
        },
    );
    println!(
        "\n{label} at p = {}: {} aggregates ({} data + {} visual) in {:.2?}",
        args.p,
        ov.partition.len(),
        ov.visual.n_data,
        ov.visual.n_visual,
        t0.elapsed()
    );
    print!("{}", ov.to_ascii(&input, 100, 20));

    if args.summary > 0 {
        println!("\nlargest aggregates:");
        print!(
            "{}",
            ocelotl::core::summary_text(&input, &ov.partition, args.summary)
        );
    }

    if let Some(path) = &args.report {
        let html = ocelotl::viz::html_report(
            &input,
            &ocelotl::viz::ReportOptions {
                title: format!("ocelotl report — {label}"),
                time_range: Some((model.grid().start(), model.grid().end())),
                ..Default::default()
            },
        );
        std::fs::write(path, html).expect("write report");
        println!("wrote {}", path.display());
    }
}
