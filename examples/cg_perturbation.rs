//! Reproduction of the paper's Fig. 1 / §V.A: detect a network
//! perturbation in a NAS-CG run (Table II case A) with the spatiotemporal
//! overview.
//!
//! ```text
//! cargo run --release --example cg_perturbation [scale]
//! ```
//!
//! Simulates CG class C on 64 processes (8 machines × 8 cores, Infiniband)
//! with external network contention injected around t = 3 s on machines
//! 2–4, builds the 30-slice microscopic model, aggregates, prints the
//! overview, and lists the processes the anomaly significantly impacts —
//! the paper's workflow, end to end.

use ocelotl::core::{aggregate_default, AggregationInput};
use ocelotl::mpisim::{scenario, CaseId};
use ocelotl::prelude::*;
use ocelotl::viz::{overview, OverviewOptions};
use std::fs;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let sc = scenario(CaseId::A, scale);
    println!(
        "case A: NAS-CG, {} processes on {} ({} events expected at scale {scale})",
        sc.platform.n_ranks,
        sc.platform.site,
        sc.estimated_events()
    );

    let (trace, stats) = sc.run(42);
    println!(
        "simulated {} events, makespan {:.2} s",
        trace.event_count(),
        stats.makespan
    );

    // The paper's pipeline: microscopic description at 30 slices, then
    // aggregation (instantaneous once the inputs are cached).
    let model = MicroModel::from_trace(&trace, 30).unwrap();
    let input = AggregationInput::build(&model);

    let p = 0.3;
    let ov = overview(
        &input,
        OverviewOptions {
            p,
            time_range: trace.time_range(),
            ..OverviewOptions::default()
        },
    );
    println!(
        "\noverview at p = {p}: {} aggregates ({} data + {} visual)",
        ov.partition.len(),
        ov.visual.n_data,
        ov.visual.n_visual
    );
    print!("{}", ov.to_ascii(&input, 100, 16));

    fs::create_dir_all("out").unwrap();
    fs::write("out/fig1.svg", ov.to_svg(&input)).unwrap();
    println!("wrote out/fig1.svg");

    // --- anomaly analysis (the paper reports 26 impacted processes) -------
    let (w0, w1) = (3.0, 3.45);
    let grid = model.grid();
    let s0 = grid.slice_of(w0);
    let s1 = grid.slice_of(w1);
    let send = model.states().get("MPI_Send").unwrap();
    let wait = model.states().get("MPI_Wait").unwrap();

    let mut impacted = Vec::new();
    for leaf in 0..model.n_leaves() {
        let l = LeafId(leaf as u32);
        let mut inw = 0.0;
        let mut out = 0.0;
        let mut outn = 0;
        for t in 0..model.n_slices() {
            let v = model.rho(l, send, t) + model.rho(l, wait, t);
            if (s0..=s1).contains(&t) {
                inw += v;
            } else if grid.slice_bounds(t).0 > 2.2 {
                out += v;
                outn += 1;
            }
        }
        let inw = inw / (s1 - s0 + 1) as f64;
        let out = out / outn.max(1) as f64;
        if inw > 2.0 * out && inw > 0.25 {
            impacted.push((leaf, inw, out));
        }
    }
    println!(
        "\nperturbation window [{w0}, {w1}] s → slices {s0}..={s1}: \
         {} significantly impacted processes (paper: 26)",
        impacted.len()
    );
    for (leaf, inw, out) in impacted.iter().take(10) {
        println!(
            "  rank {leaf:>2}: MPI_Send+MPI_Wait {:.0} % in-window vs {:.0} % baseline",
            inw * 100.0,
            out * 100.0
        );
    }
    if impacted.len() > 10 {
        println!("  … and {} more", impacted.len() - 10);
    }

    // The temporal aggregation confirms: boundaries inside the window.
    let part = aggregate_default(&input, p).partition(&input);
    let h = model.hierarchy();
    let boundary_hits = part
        .areas()
        .iter()
        .filter(|a| a.first_slice > s0 && a.first_slice <= s1 + 1)
        .count();
    println!(
        "aggregates opening a boundary inside the window: {boundary_hits} \
         (disruptions in the temporal aggregation, as in Fig. 1)"
    );
    assert!(h.n_leaves() == 64);
}
